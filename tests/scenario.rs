//! The declarative Scenario layer's integration contract:
//!
//! * **Golden equivalence** — a `shards = 1` scenario realizes the
//!   *bit-identical* `(time, node, kind)` event trace of the legacy flat
//!   `WorldBuilder` deployment, fault plans included, on all four
//!   variants. The scenario layer is a description, not a new code
//!   path.
//! * **Sweep determinism** — the same `SweepGrid` executed with 1 worker
//!   thread and with N worker threads yields identical `GridReport`s
//!   (order and values), for a grid spanning all four variants.
//! * **Typed rejection** — malformed specs come back as `ScenarioError`
//!   values naming the offending field, never as panics, through the
//!   full dispatching runner.

use sofbyz::bft::sim::BftProtocol;
use sofbyz::core::sim::ScProtocol;
use sofbyz::ct::sim::CtProtocol;
use sofbyz::harness::{ClientSpec, FaultSpec, Protocol, ProtocolEvent, ProtocolKind, WorldBuilder};
use sofbyz::proto::ids::ProcessId;
use sofbyz::proto::topology::Variant;
use sofbyz::scenario::{
    self, Axis, ClientLoad, RouterPolicy, Scenario, ScenarioError, ScenarioFault, SweepGrid, Window,
};
use sofbyz::sim::engine::TimedEvent;
use sofbyz::sim::time::{SimDuration, SimTime};

/// The legacy-path reference: the flat builder driven by hand, exactly
/// as the pre-scenario harness tests drive it.
fn legacy_flat<P: Protocol>(
    seed: u64,
    variant: Option<Variant>,
    fault: Option<(ProcessId, FaultSpec<P::Byz>)>,
) -> Vec<TimedEvent<ProtocolEvent>> {
    let mut b = WorldBuilder::<P>::new(1)
        .seed(seed)
        .batching_interval(SimDuration::from_ms(80))
        .client(ClientSpec {
            rate_per_sec: 120.0,
            request_size: 100,
            stop_at: SimTime::from_secs(2),
        });
    if let Some(v) = variant {
        b = b.variant(v);
    }
    if let Some((p, spec)) = fault {
        b = b.fault(p, spec);
    }
    let mut d = b.build();
    d.start();
    d.run_until(SimTime::from_secs(6));
    d.world.drain_events()
}

/// The same experiment as a declarative scenario: clients stop at
/// `run_s = 2`, the world drains until second 6.
fn equivalent_scenario(kind: ProtocolKind, seed: u64) -> Scenario {
    Scenario::new(kind)
        .seed(seed)
        .interval_ms(80)
        .client(ClientLoad::constant(120.0, 100))
        .window(Window {
            warmup_s: 0,
            run_s: 2,
            drain_s: 4,
        })
}

fn assert_identical(
    name: &str,
    flat: &[TimedEvent<ProtocolEvent>],
    scen: &[TimedEvent<ProtocolEvent>],
) {
    assert!(!flat.is_empty(), "{name}: empty legacy trace");
    assert_eq!(flat.len(), scen.len(), "{name}: trace lengths differ");
    for (i, (a, b)) in flat.iter().zip(scen).enumerate() {
        assert!(
            a.time == b.time && a.node == b.node && a.event == b.event,
            "{name}: traces diverge at event {i}: \
             legacy ({:?}, node {}, {:?}) vs scenario ({:?}, node {}, {:?})",
            a.time,
            a.node,
            a.event,
            b.time,
            b.node,
            b.event
        );
    }
}

/// A one-shard `Scenario` lowers onto the very same flat world the
/// legacy builder assembles: full-trace equality on all four variants.
#[test]
fn one_shard_scenario_is_bit_identical_to_legacy_flat_builder() {
    let seed = 17;
    let cases: [(&str, ProtocolKind, Vec<TimedEvent<ProtocolEvent>>); 4] = [
        (
            "SC",
            ProtocolKind::Sc,
            legacy_flat::<ScProtocol>(seed, Some(Variant::Sc), None),
        ),
        (
            "SCR",
            ProtocolKind::Scr,
            legacy_flat::<ScProtocol>(seed, Some(Variant::Scr), None),
        ),
        (
            "BFT",
            ProtocolKind::Bft,
            legacy_flat::<BftProtocol>(seed, None, None),
        ),
        (
            "CT",
            ProtocolKind::Ct,
            legacy_flat::<CtProtocol>(seed, None, None),
        ),
    ];
    for (name, kind, flat) in &cases {
        let (report, trace) =
            scenario::run_traced(&equivalent_scenario(*kind, seed)).expect("valid scenario");
        assert_identical(name, flat, &trace);
        assert!(
            report.committed_requests() > 0,
            "{name}: scenario run committed nothing"
        );
    }
}

/// The equivalence covers the fault plan: a crash declared in the
/// scenario realizes the legacy builder's exact schedule.
#[test]
fn scenario_fault_plan_matches_legacy_flat_builder() {
    let at = SimTime::from_secs(1);
    let flat = legacy_flat::<CtProtocol>(29, None, Some((ProcessId(2), FaultSpec::crash(at))));
    let s = equivalent_scenario(ProtocolKind::Ct, 29).fault(ScenarioFault::crash(ProcessId(2), at));
    let (_, trace) = scenario::run_traced(&s).expect("valid scenario");
    assert_identical("CT+crash", &flat, &trace);
}

/// One `SweepGrid` spanning all four variants: 1 worker and N workers
/// produce the same `GridReport` — same order, labels, seeds and metric
/// values.
#[test]
fn sweep_grid_is_deterministic_across_worker_counts() {
    let grid = SweepGrid::new(
        Scenario::new(ProtocolKind::Sc)
            .interval_ms(80)
            .client(ClientLoad::constant(120.0, 100))
            .window(Window {
                warmup_s: 0,
                run_s: 2,
                drain_s: 3,
            }),
    )
    .axis(Axis::kinds(&ProtocolKind::ALL))
    .seeds(&[11, 12]);

    let sequential = scenario::run_grid(&grid, 1).expect("grid runs sequentially");
    assert_eq!(sequential.points.len(), 8);
    for p in &sequential.points {
        assert!(
            p.report.committed_requests() > 0,
            "point {:?} committed nothing — the comparison would be vacuous",
            p.labels
        );
    }
    for workers in [2, 4, 8] {
        let parallel = scenario::run_grid(&grid, workers).expect("grid runs in parallel");
        assert!(
            sequential.same_results(&parallel),
            "{workers}-worker grid diverged from the sequential run"
        );
    }
}

/// Malformed specs surface as typed errors from the full runner — no
/// panics, and the message names the offending field.
#[test]
fn runner_rejects_malformed_specs_with_typed_errors() {
    // f = 0 would panic inside Topology::new on the legacy path.
    let err = scenario::run(&equivalent_scenario(ProtocolKind::Sc, 1).f(0)).unwrap_err();
    assert!(
        matches!(err, ScenarioError::InvalidResilience { f: 0, .. }),
        "{err:?}"
    );
    assert!(err.to_string().contains("`f`"), "{err}");

    // An empty measurement window.
    let err = scenario::run(&equivalent_scenario(ProtocolKind::Ct, 1).window(Window {
        warmup_s: 2,
        run_s: 2,
        drain_s: 0,
    }))
    .unwrap_err();
    assert!(matches!(err, ScenarioError::EmptyWindow { .. }), "{err:?}");

    // Malformed shard-router ranges (gap between 10 and 12).
    let err = scenario::run(
        &equivalent_scenario(ProtocolKind::Sc, 1)
            .shards(2)
            .router(RouterPolicy::Ranges(vec![(0, 10), (12, u64::MAX)])),
    )
    .unwrap_err();
    assert!(matches!(err, ScenarioError::Router(_)), "{err:?}");
    assert!(err.to_string().contains("`router`"), "{err}");

    // A fault window with until <= from.
    let err = scenario::run(&equivalent_scenario(ProtocolKind::Bft, 1).fault(
        ScenarioFault::mute_until(ProcessId(0), SimTime::from_secs(2), SimTime::from_secs(2)),
    ))
    .unwrap_err();
    assert!(matches!(err, ScenarioError::FaultWindow { .. }), "{err:?}");

    // A grid expansion propagates the failing point's index.
    let grid =
        SweepGrid::new(equivalent_scenario(ProtocolKind::Sc, 1)).axis(Axis::resiliences(&[1, 0]));
    let err = scenario::run_grid(&grid, 2).unwrap_err();
    assert!(
        matches!(err, ScenarioError::GridPoint { index: 1, .. }),
        "{err:?}"
    );
}

/// Lowering a scenario onto the wrong protocol implementation is a
/// typed error too (in release builds as well): the validator's
/// bounds-checks were made against the kind's layout, so a mismatched
/// `run_as` must not reach the builders.
#[test]
fn lowering_onto_the_wrong_protocol_is_rejected() {
    let s = equivalent_scenario(ProtocolKind::Bft, 1);
    let err = s.run_as::<CtProtocol>().unwrap_err();
    assert!(
        matches!(
            err,
            ScenarioError::ProtocolMismatch {
                kind: ProtocolKind::Bft,
                protocol: "CT"
            }
        ),
        "{err:?}"
    );
}

/// Sharded scenarios run through the same spec: the 2-shard world
/// commits on both shards and reports an exact global rollup.
#[test]
fn sharded_scenario_runs_and_rolls_up() {
    let report = scenario::run(
        &equivalent_scenario(ProtocolKind::Ct, 23)
            .shards(2)
            .clients(2, ClientLoad::constant(80.0, 100).per_shard()),
    )
    .expect("valid sharded scenario");
    assert_eq!(report.per_shard.len(), 2);
    for (s, shard) in report.per_shard.iter().enumerate() {
        assert!(shard.committed_requests > 0, "shard {s} idle");
    }
    assert!(report.global.p99_ms.is_some());
    assert!(report.aggregate_throughput > 0.0);
}
