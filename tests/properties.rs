//! Property-based tests (proptest): protocol invariants under randomized
//! parameters, schedules (seeds) and fault plans, plus algebraic laws of
//! the crypto substrate.

use proptest::prelude::*;

use sofbyz::core::analysis;
use sofbyz::core::config::Fault;
use sofbyz::core::sim::{ClientSpec, ScWorldBuilder};
use sofbyz::crypto::bignum::BigUint;
use sofbyz::crypto::provider::{CryptoProvider, Dealer};
use sofbyz::crypto::scheme::SchemeId;
use sofbyz::proto::codec::{Decode, Encode};
use sofbyz::proto::ids::{ClientId, ProcessId, SeqNo};
use sofbyz::proto::request::Request;
use sofbyz::proto::topology::Variant;
use sofbyz::sim::time::{SimDuration, SimTime};

// ---------------------------------------------------------------------
// Bignum laws (vs u128 reference model)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bignum_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = BigUint::from_u64(a).add(&BigUint::from_u64(b));
        let expect = u128::from(a) + u128::from(b);
        prop_assert_eq!(sum.to_bytes_be(), biguint_from_u128(expect).to_bytes_be());
    }

    #[test]
    fn bignum_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        let expect = u128::from(a) * u128::from(b);
        prop_assert_eq!(prod.to_bytes_be(), biguint_from_u128(expect).to_bytes_be());
    }

    #[test]
    fn bignum_div_rem_reconstructs(a in any::<u128>(), b in 1u64..) {
        let dividend = biguint_from_u128(a);
        let divisor = BigUint::from_u64(b);
        let (q, r) = dividend.div_rem(&divisor);
        prop_assert!(r < divisor);
        prop_assert_eq!(q.mul(&divisor).add(&r), dividend);
    }

    #[test]
    fn bignum_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = BigUint::from_bytes_be(&bytes);
        let back = BigUint::from_bytes_be(&v.to_bytes_be());
        prop_assert_eq!(v, back);
    }

    #[test]
    fn bignum_mod_pow_mul_law(a in 2u64..1_000, b in 2u64..1_000, m in 3u64..100_000) {
        // (a*b) mod m == (a mod m * b mod m) mod m via mod_pow exponent 1.
        let m = BigUint::from_u64(m | 1);
        let lhs = BigUint::from_u64(a).mul_mod(&BigUint::from_u64(b), &m);
        let rhs = BigUint::from_u64(a)
            .mod_pow(&BigUint::from_u64(1), &m)
            .mul_mod(&BigUint::from_u64(b).mod_pow(&BigUint::from_u64(1), &m), &m);
        prop_assert_eq!(lhs, rhs);
    }
}

fn biguint_from_u128(v: u128) -> BigUint {
    BigUint::from_bytes_be(&v.to_be_bytes())
}

// ---------------------------------------------------------------------
// Codec and signature properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn request_codec_roundtrips(
        client in any::<u32>(),
        seq in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let r = Request::new(ClientId(client), seq, payload);
        let decoded = Request::from_bytes(&r.to_bytes()).unwrap();
        prop_assert_eq!(decoded, r);
    }

    #[test]
    fn sim_signatures_bind_signer_and_content(
        msg_a in proptest::collection::vec(any::<u8>(), 1..128),
        msg_b in proptest::collection::vec(any::<u8>(), 1..128),
        master in any::<u64>(),
    ) {
        let mut provs = Dealer::sim(SchemeId::Md5Rsa1024, 3, master);
        let sig = provs[0].sign(&msg_a);
        prop_assert!(provs[1].verify(0, &msg_a, &sig));
        // Signer binding.
        prop_assert!(!provs[1].verify(1, &msg_a, &sig));
        // Content binding.
        if msg_a != msg_b {
            prop_assert!(!provs[1].verify(0, &msg_b, &sig));
        }
    }

    #[test]
    fn macs_bind_pair_and_content(
        msg in proptest::collection::vec(any::<u8>(), 1..128),
        master in any::<u64>(),
    ) {
        let mut provs = Dealer::sim(SchemeId::Sha1Dsa1024, 4, master);
        let tag = provs[0].mac(1, &msg);
        prop_assert!(provs[1].verify_mac(0, &msg, &tag));
        // A different pair's key fails.
        prop_assert!(!provs[2].verify_mac(3, &msg, &tag));
    }
}

// ---------------------------------------------------------------------
// Protocol invariants under randomized schedules and fault plans
// ---------------------------------------------------------------------

fn fault_strategy() -> impl Strategy<Value = (ProcessId, Fault)> {
    prop_oneof![
        // Faulty coordinator replica (rank 1 or 2), value domain.
        (1u64..8).prop_map(|s| (ProcessId(0), Fault::CorruptOrderAt(SeqNo(s)))),
        (1u64..8).prop_map(|s| (ProcessId(1), Fault::CorruptOrderAt(SeqNo(s)))),
        // Muted coordinator (time domain).
        (1u64..8).prop_map(|s| (ProcessId(0), Fault::MuteCoordinatorAt(SeqNo(s)))),
        // Byzantine shadow / silent acker.
        Just((ProcessId(5), Fault::RubberStamp)),
        Just((ProcessId(3), Fault::DropAcks)),
        Just((ProcessId(4), Fault::None)),
    ]
}

proptest! {
    // End-to-end simulations are comparatively expensive; keep the case
    // count moderate (each case is a full deterministic run).
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sc_total_order_safe_under_any_single_fault_and_schedule(
        seed in any::<u64>(),
        (who, fault) in fault_strategy(),
        interval_ms in 40u64..200,
    ) {
        let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
            .batching_interval(SimDuration::from_ms(interval_ms))
            .client(ClientSpec {
                rate_per_sec: 150.0,
                request_size: 100,
                stop_at: SimTime::from_secs(2),
            })
            .fault(who, fault)
            .seed(seed)
            .build();
        d.start();
        d.run_until(SimTime::from_secs(6));
        let events = d.world.drain_events();
        // SAFETY is unconditional.
        analysis::check_total_order(&events).map_err(|e| {
            TestCaseError::fail(format!("seed {seed}: {e}"))
        })?;
    }

    #[test]
    fn scr_total_order_safe_under_any_single_fault_and_schedule(
        seed in any::<u64>(),
        (who, fault) in fault_strategy(),
    ) {
        let mut d = ScWorldBuilder::new(2, Variant::Scr, SchemeId::Md5Rsa1024)
            .batching_interval(SimDuration::from_ms(80))
            .client(ClientSpec {
                rate_per_sec: 100.0,
                request_size: 100,
                stop_at: SimTime::from_secs(2),
            })
            .fault(who, fault)
            .seed(seed)
            .build();
        d.start();
        d.run_until(SimTime::from_secs(6));
        let events = d.world.drain_events();
        analysis::check_total_order(&events).map_err(|e| {
            TestCaseError::fail(format!("seed {seed}: {e}"))
        })?;
    }

    #[test]
    fn sc_liveness_without_faults(seed in any::<u64>()) {
        let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
            .batching_interval(SimDuration::from_ms(100))
            .client(ClientSpec {
                rate_per_sec: 80.0,
                request_size: 100,
                stop_at: SimTime::from_secs(2),
            })
            .seed(seed)
            .build();
        d.start();
        d.run_until(SimTime::from_secs(6));
        let events = d.world.drain_events();
        analysis::check_total_order(&events).unwrap();
        let n = d.topology.n();
        let nodes: Vec<usize> = (0..n).collect();
        let prefix = analysis::common_committed_prefix(&events, &nodes);
        prop_assert!(
            prefix.is_some_and(|p| p >= SeqNo(5)),
            "seed {}: committed prefix too short: {:?}",
            seed,
            prefix
        );
    }
}
