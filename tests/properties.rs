//! Property-style tests: protocol invariants under randomized parameters,
//! schedules (seeds) and fault plans, plus algebraic laws of the crypto
//! substrate.
//!
//! The container build has no network access, so instead of proptest these
//! sweep deterministic pseudo-random inputs from the workspace RNG — the
//! same shrink-free exploration, fully reproducible run to run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sofbyz::core::analysis;
use sofbyz::core::config::Fault;
use sofbyz::core::sim::{ClientSpec, ScWorldBuilder};
use sofbyz::crypto::bignum::BigUint;
use sofbyz::crypto::provider::{CryptoProvider, Dealer};
use sofbyz::crypto::scheme::SchemeId;
use sofbyz::proto::codec::{Decode, Encode};
use sofbyz::proto::ids::{ClientId, ProcessId, SeqNo};
use sofbyz::proto::request::Request;
use sofbyz::proto::topology::Variant;
use sofbyz::sim::time::{SimDuration, SimTime};

fn biguint_from_u128(v: u128) -> BigUint {
    BigUint::from_bytes_be(&v.to_be_bytes())
}

// ---------------------------------------------------------------------
// Bignum laws (vs u128 reference model)
// ---------------------------------------------------------------------

#[test]
fn bignum_add_matches_u128() {
    let mut rng = StdRng::seed_from_u64(0xadd);
    for _ in 0..64 {
        let (a, b): (u64, u64) = (rng.gen(), rng.gen());
        let sum = BigUint::from_u64(a).add(&BigUint::from_u64(b));
        let expect = u128::from(a) + u128::from(b);
        assert_eq!(sum.to_bytes_be(), biguint_from_u128(expect).to_bytes_be());
    }
}

#[test]
fn bignum_mul_matches_u128() {
    let mut rng = StdRng::seed_from_u64(0x3a1);
    for _ in 0..64 {
        let (a, b): (u64, u64) = (rng.gen(), rng.gen());
        let prod = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        let expect = u128::from(a) * u128::from(b);
        assert_eq!(prod.to_bytes_be(), biguint_from_u128(expect).to_bytes_be());
    }
}

#[test]
fn bignum_div_rem_reconstructs() {
    let mut rng = StdRng::seed_from_u64(0xd17);
    for _ in 0..64 {
        let a: u128 = rng.gen();
        let b: u64 = rng.gen_range(1u64..);
        let dividend = biguint_from_u128(a);
        let divisor = BigUint::from_u64(b);
        let (q, r) = dividend.div_rem(&divisor);
        assert!(r < divisor);
        assert_eq!(q.mul(&divisor).add(&r), dividend);
    }
}

#[test]
fn bignum_bytes_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xb17e5);
    for _ in 0..64 {
        let len = rng.gen_range(0usize..64);
        let mut bytes = vec![0u8; len];
        rng.fill(&mut bytes);
        let v = BigUint::from_bytes_be(&bytes);
        let back = BigUint::from_bytes_be(&v.to_bytes_be());
        assert_eq!(v, back);
    }
}

#[test]
fn bignum_mod_pow_mul_law() {
    // (a*b) mod m == (a mod m * b mod m) mod m via mod_pow exponent 1.
    let mut rng = StdRng::seed_from_u64(0x90d);
    for _ in 0..64 {
        let a: u64 = rng.gen_range(2u64..1_000);
        let b: u64 = rng.gen_range(2u64..1_000);
        let m: u64 = rng.gen_range(3u64..100_000);
        let m = BigUint::from_u64(m | 1);
        let lhs = BigUint::from_u64(a).mul_mod(&BigUint::from_u64(b), &m);
        let rhs = BigUint::from_u64(a)
            .mod_pow(&BigUint::from_u64(1), &m)
            .mul_mod(&BigUint::from_u64(b).mod_pow(&BigUint::from_u64(1), &m), &m);
        assert_eq!(lhs, rhs);
    }
}

// ---------------------------------------------------------------------
// Codec and signature properties
// ---------------------------------------------------------------------

#[test]
fn request_codec_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xc0dec);
    for _ in 0..32 {
        let client: u32 = rng.gen();
        let seq: u64 = rng.gen();
        let len = rng.gen_range(0usize..512);
        let mut payload = vec![0u8; len];
        rng.fill(&mut payload);
        let r = Request::new(ClientId(client), seq, payload);
        let decoded = Request::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(decoded, r);
    }
}

#[test]
fn sim_signatures_bind_signer_and_content() {
    let mut rng = StdRng::seed_from_u64(0x516);
    for _ in 0..32 {
        let master: u64 = rng.gen();
        let mut msg_a = vec![0u8; rng.gen_range(1usize..128)];
        let mut msg_b = vec![0u8; rng.gen_range(1usize..128)];
        rng.fill(&mut msg_a);
        rng.fill(&mut msg_b);
        let mut provs = Dealer::sim(SchemeId::Md5Rsa1024, 3, master);
        let sig = provs[0].sign(&msg_a);
        assert!(provs[1].verify(0, &msg_a, &sig));
        // Signer binding.
        assert!(!provs[1].verify(1, &msg_a, &sig));
        // Content binding.
        if msg_a != msg_b {
            assert!(!provs[1].verify(0, &msg_b, &sig));
        }
    }
}

#[test]
fn macs_bind_pair_and_content() {
    let mut rng = StdRng::seed_from_u64(0x3ac);
    for _ in 0..32 {
        let master: u64 = rng.gen();
        let mut msg = vec![0u8; rng.gen_range(1usize..128)];
        rng.fill(&mut msg);
        let mut provs = Dealer::sim(SchemeId::Sha1Dsa1024, 4, master);
        let tag = provs[0].mac(1, &msg);
        assert!(provs[1].verify_mac(0, &msg, &tag));
        // A different pair's key fails.
        assert!(!provs[2].verify_mac(3, &msg, &tag));
    }
}

// ---------------------------------------------------------------------
// Protocol invariants under randomized schedules and fault plans
// ---------------------------------------------------------------------

fn random_fault(rng: &mut StdRng) -> (ProcessId, Fault) {
    let s = rng.gen_range(1u64..8);
    match rng.gen_range(0u32..6) {
        // Faulty coordinator replica (rank 1 or 2), value domain.
        0 => (ProcessId(0), Fault::CorruptOrderAt(SeqNo(s))),
        1 => (ProcessId(1), Fault::CorruptOrderAt(SeqNo(s))),
        // Muted coordinator (time domain).
        2 => (ProcessId(0), Fault::MuteCoordinatorAt(SeqNo(s))),
        // Byzantine shadow / silent acker.
        3 => (ProcessId(5), Fault::RubberStamp),
        4 => (ProcessId(3), Fault::DropAcks),
        _ => (ProcessId(4), Fault::None),
    }
}

#[test]
fn sc_total_order_safe_under_any_single_fault_and_schedule() {
    let mut rng = StdRng::seed_from_u64(0x5afe);
    for _ in 0..12 {
        let seed: u64 = rng.gen();
        let (who, fault) = random_fault(&mut rng);
        let interval_ms = rng.gen_range(40u64..200);
        let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
            .batching_interval(SimDuration::from_ms(interval_ms))
            .client(ClientSpec {
                rate_per_sec: 150.0,
                request_size: 100,
                stop_at: SimTime::from_secs(2),
            })
            .fault(who, fault.clone())
            .seed(seed)
            .build();
        d.start();
        d.run_until(SimTime::from_secs(6));
        let events = d.world.drain_events();
        // SAFETY is unconditional.
        analysis::check_total_order(&events)
            .unwrap_or_else(|e| panic!("seed {seed} fault {fault:?}@{who}: {e}"));
    }
}

#[test]
fn scr_total_order_safe_under_any_single_fault_and_schedule() {
    let mut rng = StdRng::seed_from_u64(0x5c2);
    for _ in 0..12 {
        let seed: u64 = rng.gen();
        let (who, fault) = random_fault(&mut rng);
        let mut d = ScWorldBuilder::new(2, Variant::Scr, SchemeId::Md5Rsa1024)
            .batching_interval(SimDuration::from_ms(80))
            .client(ClientSpec {
                rate_per_sec: 100.0,
                request_size: 100,
                stop_at: SimTime::from_secs(2),
            })
            .fault(who, fault.clone())
            .seed(seed)
            .build();
        d.start();
        d.run_until(SimTime::from_secs(6));
        let events = d.world.drain_events();
        analysis::check_total_order(&events)
            .unwrap_or_else(|e| panic!("seed {seed} fault {fault:?}@{who}: {e}"));
    }
}

#[test]
fn sc_liveness_without_faults() {
    let mut rng = StdRng::seed_from_u64(0x11fe);
    for _ in 0..12 {
        let seed: u64 = rng.gen();
        let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
            .batching_interval(SimDuration::from_ms(100))
            .client(ClientSpec {
                rate_per_sec: 80.0,
                request_size: 100,
                stop_at: SimTime::from_secs(2),
            })
            .seed(seed)
            .build();
        d.start();
        d.run_until(SimTime::from_secs(6));
        let events = d.world.drain_events();
        analysis::check_total_order(&events).unwrap();
        let n = d.topology.n();
        let nodes: Vec<usize> = (0..n).collect();
        let prefix = analysis::common_committed_prefix(&events, &nodes);
        assert!(
            prefix.is_some_and(|p| p >= SeqNo(5)),
            "seed {seed}: committed prefix too short: {prefix:?}"
        );
    }
}
