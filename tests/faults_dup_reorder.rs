//! Engine-level message duplication and reordering faults: the two
//! adversarial axes added for the fuzzer, checked here outside it.
//!
//! The contract has three parts. (1) An inactive window is a perfect
//! no-op: the engine draws no RNG for it, so the trace is bit-identical
//! to the fault-free run — which is what keeps every golden trace and
//! `bench_protocols --check` stable. (2) An active window changes the
//! schedule *deterministically*: same scenario, same trace, every time.
//! (3) Every variant stays safe under both faults (the run's built-in
//! total-order check stays on), flat or sharded-parallel.

use sofbyz::harness::ProtocolKind;
use sofbyz::proto::ids::ProcessId;
use sofbyz::scenario::{run_traced, ClientLoad, ProtocolEvent, Scenario, ScenarioFault, Window};
use sofbyz::sim::engine::TimedEvent;
use sofbyz::sim::time::{SimDuration, SimTime};

fn base(kind: ProtocolKind) -> Scenario {
    Scenario::new(kind)
        .seed(33)
        .interval_ms(80)
        .client(ClientLoad::constant(80.0, 100))
        .window(Window {
            warmup_s: 0,
            run_s: 2,
            drain_s: 3,
        })
}

fn triples(events: Vec<TimedEvent<ProtocolEvent>>) -> Vec<(SimTime, usize, ProtocolEvent)> {
    events
        .into_iter()
        .map(|e| (e.time, e.node, e.event))
        .collect()
}

fn trace_of(s: &Scenario) -> Vec<(SimTime, usize, ProtocolEvent)> {
    let (report, events) = run_traced(s).expect("scenario runs");
    assert!(report.committed_requests() > 0, "vacuous run");
    triples(events)
}

/// Windows that never open draw no randomness and change nothing: the
/// trace with both faults scheduled beyond the horizon is bit-identical
/// to the fault-free trace.
#[test]
fn inactive_dup_and_reorder_windows_are_bit_identical_noops() {
    let plain = base(ProtocolKind::Sc);
    let beyond = SimTime::from_secs(100);
    let further = SimTime::from_secs(101);
    let armed = base(ProtocolKind::Sc)
        .fault(ScenarioFault::duplicate_until(
            ProcessId(0),
            beyond,
            further,
        ))
        .fault(ScenarioFault::reorder_until(
            ProcessId(1),
            beyond,
            further,
            SimDuration::from_ms(20),
        ));
    assert_eq!(trace_of(&plain), trace_of(&armed));
}

/// An active duplication window actually perturbs the schedule — and
/// does so deterministically (same scenario, same trace).
#[test]
fn active_duplicate_window_is_deterministic_and_not_a_noop() {
    let armed = base(ProtocolKind::Sc).fault(ScenarioFault::duplicate_until(
        ProcessId(0),
        SimTime::ZERO,
        SimTime::from_secs(2),
    ));
    let t1 = trace_of(&armed);
    assert_eq!(t1, trace_of(&armed), "duplication replay diverged");
    assert_ne!(
        t1,
        trace_of(&base(ProtocolKind::Sc)),
        "an active duplication window should change the schedule"
    );
}

/// Same contract for reordering: deterministic, and not a no-op while
/// the window is open.
#[test]
fn active_reorder_window_is_deterministic_and_not_a_noop() {
    let armed = base(ProtocolKind::Sc).fault(ScenarioFault::reorder_until(
        ProcessId(0),
        SimTime::ZERO,
        SimTime::from_secs(2),
        SimDuration::from_ms(30),
    ));
    let t1 = trace_of(&armed);
    assert_eq!(t1, trace_of(&armed), "reorder replay diverged");
    assert_ne!(
        t1,
        trace_of(&base(ProtocolKind::Sc)),
        "an active reorder window should change the schedule"
    );
}

/// All four variants run, commit, and stay safe under simultaneous
/// duplication and reordering (`run_traced` keeps the panicking
/// total-order check on).
#[test]
fn every_variant_stays_safe_under_dup_and_reorder() {
    for kind in [
        ProtocolKind::Sc,
        ProtocolKind::Scr,
        ProtocolKind::Bft,
        ProtocolKind::Ct,
    ] {
        let s = base(kind)
            .fault(ScenarioFault::duplicate_until(
                ProcessId(1),
                SimTime::ZERO,
                SimTime::from_secs(2),
            ))
            .fault(ScenarioFault::reorder_until(
                ProcessId(2),
                SimTime::from_ms(500),
                SimTime::from_ms(1500),
                SimDuration::from_ms(10),
            ));
        let (report, _) = run_traced(&s).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert!(report.committed_requests() > 0, "{kind}: nothing committed");
    }
}

/// Sharded-parallel bit-identity holds with dup/reorder in the fault
/// plan: shard engines replay the faults identically at any worker
/// count.
#[test]
fn dup_and_reorder_run_bit_identical_in_parallel() {
    let one = base(ProtocolKind::Sc)
        .shards(2)
        .world_workers(1)
        .fault(
            ScenarioFault::duplicate_until(ProcessId(0), SimTime::ZERO, SimTime::from_secs(2))
                .on_shard(1),
        )
        .fault(
            ScenarioFault::reorder_until(
                ProcessId(1),
                SimTime::ZERO,
                SimTime::from_secs(2),
                SimDuration::from_ms(15),
            )
            .on_shard(0),
        );
    let two = one.clone().world_workers(2);
    let (r1, t1) = run_traced(&one).unwrap();
    let (r2, t2) = run_traced(&two).unwrap();
    assert!(r1.committed_requests() > 0);
    assert_eq!(triples(t1), triples(t2), "parallel traces differ");
    assert_eq!(r1, r2, "parallel reports differ");
}
