//! Parallel world-worker determinism: running a multi-shard scenario's
//! shards on N threads realizes the bit-identical global schedule —
//! full trace and `Report` equality against the 1-worker run — for
//! {2, 4, 8}-shard worlds, including a fault-plan run and an aggregated
//! client population. The worker count only decides which thread
//! computes which shard; every schedule is a pure function of the
//! scenario and the shard seeds.

use sofbyz::harness::{analysis, ProtocolEvent, ProtocolKind};
use sofbyz::proto::ids::ProcessId;
use sofbyz::scenario::{run_traced, ClientLoad, Report, Scenario, ScenarioFault, Window};
use sofbyz::sim::engine::TimedEvent;
use sofbyz::sim::time::{SimDuration, SimTime};

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

fn world(kind: ProtocolKind, shards: usize, workers: usize) -> Scenario {
    Scenario::new(kind)
        .seed(29)
        .interval_ms(80)
        .window(Window {
            warmup_s: 1,
            run_s: 4,
            drain_s: 4,
        })
        .shards(shards)
        .clients(2, ClientLoad::constant(60.0, 100))
        .world_workers(workers)
}

/// Trace as comparable triples (`TimedEvent` carries no `PartialEq`).
fn triples(events: Vec<TimedEvent<ProtocolEvent>>) -> Vec<(SimTime, usize, ProtocolEvent)> {
    events
        .into_iter()
        .map(|e| (e.time, e.node, e.event))
        .collect()
}

fn assert_one_equals_n(label: &str, one: Scenario, n_workers: usize) {
    let many = one.clone().world_workers(n_workers);
    let (r1, t1) = run_traced(&one).unwrap_or_else(|e| panic!("{label}: {e}"));
    let (rn, tn) = run_traced(&many).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert!(
        r1.committed_requests() > 0,
        "{label}: nothing committed — the comparison would be vacuous"
    );
    let (t1, tn) = (triples(t1), triples(tn));
    assert_eq!(t1.len(), tn.len(), "{label}: trace lengths differ");
    assert_eq!(t1, tn, "{label}: traces differ");
    let (r1, rn): (Report, Report) = (r1, rn);
    assert_eq!(r1, rn, "{label}: reports differ");
}

#[test]
fn one_vs_n_world_workers_bit_identical_across_shard_counts() {
    for shards in SHARD_COUNTS {
        assert_one_equals_n(
            &format!("SC {shards} shards"),
            world(ProtocolKind::Sc, shards, 1),
            shards,
        );
    }
}

#[test]
fn one_vs_n_world_workers_bit_identical_on_ct() {
    assert_one_equals_n("CT 4 shards", world(ProtocolKind::Ct, 4, 1), 4);
}

/// Oversubscription changes nothing: more workers than shards clamps.
#[test]
fn more_workers_than_shards_is_identical_too() {
    assert_one_equals_n("SC 2 shards, 8 workers", world(ProtocolKind::Sc, 2, 1), 8);
}

/// A fault plan (crash on shard 1) lowers into the per-shard engines
/// and still merges deterministically.
#[test]
fn fault_plan_runs_bit_identical_in_parallel() {
    let s = world(ProtocolKind::Sc, 2, 1)
        .fault(ScenarioFault::crash(ProcessId(1), SimTime::from_secs(2)).on_shard(1));
    assert_one_equals_n("SC 2 shards + crash", s, 2);
}

/// A delay fault (the pre-GST shape) exercises the engine-fault path
/// with a window, not just the crash special case.
#[test]
fn delay_fault_plan_runs_bit_identical_in_parallel() {
    let s = world(ProtocolKind::Sc, 4, 1).fault(
        ScenarioFault::delay_until(
            ProcessId(0),
            SimTime::ZERO,
            SimTime::from_secs(2),
            SimDuration::from_ms(5),
        )
        .on_shard(2),
    );
    assert_one_equals_n("SC 4 shards + delay", s, 4);
}

/// An aggregated Poisson population rides the same parallel path: each
/// shard engine hosts a slice replica walking the same pick stream.
#[test]
fn population_load_runs_bit_identical_in_parallel() {
    let s = world(ProtocolKind::Sc, 2, 1).clients(1, ClientLoad::poisson(0.5, 100).population(500));
    assert_one_equals_n("SC 2 shards, population 500", s, 2);
}

/// The parallel path preserves the sharding invariants: per-request-id
/// exactly-once commitment, in the shard the router assigns — asserted
/// by the shared analysis checkers (the same ones the fuzzer's oracles
/// run).
#[test]
fn parallel_runs_commit_each_request_exactly_once_in_its_routed_shard() {
    let shards = 4;
    let s = world(ProtocolKind::Sc, shards, shards);
    let (report, trace) = run_traced(&s).unwrap();
    assert!(report.committed_requests() > 0);
    let n = s.nodes_per_shard();
    analysis::check_exactly_once(&trace, n).unwrap();
    // With the default hash router, commitment shard == routed shard.
    let router = sofbyz::harness::ShardRouter::hash(shards);
    analysis::check_no_cross_shard_leakage(&trace, n, &router).unwrap();
}
