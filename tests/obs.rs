//! Trace determinism: the structured trace (engine dispatch/deliver
//! records plus derived protocol phase spans) and its Chrome trace-event
//! rendering are **bit-identical** across world-worker counts and across
//! the checked/unchecked runners — on every protocol variant. The span
//! ids are pure functions of `(time, seq, node)` and the records ride
//! the same deterministic merge as the observation log, so nothing about
//! the trace may depend on which thread computed which shard.

use std::collections::BTreeMap;

use sofbyz::harness::ProtocolKind;
use sofbyz::obs::{chrome, json, TraceConfig, TraceKind};
use sofbyz::scenario::{run_observed, run_observed_unchecked, ClientLoad, Scenario, Window};

fn world(kind: ProtocolKind, shards: usize, workers: usize) -> Scenario {
    Scenario::new(kind)
        .seed(29)
        .interval_ms(80)
        .window(Window {
            warmup_s: 1,
            run_s: 3,
            drain_s: 4,
        })
        .shards(shards)
        .clients(2, ClientLoad::constant(60.0, 100))
        .world_workers(workers)
}

#[test]
fn chrome_trace_bytes_identical_across_world_workers_on_all_variants() {
    let cfg = TraceConfig::default();
    for kind in ProtocolKind::ALL {
        let one = run_observed(&world(kind, 2, 1), &cfg)
            .unwrap_or_else(|e| panic!("{kind} ×1 worker: {e}"));
        let four = run_observed(&world(kind, 2, 4), &cfg)
            .unwrap_or_else(|e| panic!("{kind} ×4 workers: {e}"));
        assert!(
            one.report.committed_requests() > 0,
            "{kind}: nothing committed — the comparison would be vacuous"
        );
        assert!(!one.records.is_empty(), "{kind}: no trace records");
        assert_eq!(
            chrome::render(&one.records),
            chrome::render(&four.records),
            "{kind}: chrome trace bytes differ across world-worker counts"
        );
    }
}

#[test]
fn checked_and_unchecked_runners_emit_identical_traces() {
    // On a clean (violation-free) run the safety check is pure
    // observation: disabling it must not perturb a single trace byte.
    let cfg = TraceConfig::default();
    for kind in ProtocolKind::ALL {
        let s = world(kind, 2, 2);
        let checked = run_observed(&s, &cfg).unwrap_or_else(|e| panic!("{kind}: {e}"));
        let unchecked = run_observed_unchecked(&s, &cfg).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(
            chrome::render(&checked.records),
            chrome::render(&unchecked.records),
            "{kind}: checked and unchecked traces differ"
        );
        assert_eq!(
            checked.report, unchecked.report,
            "{kind}: checked and unchecked reports differ"
        );
    }
}

#[test]
fn chrome_trace_parses_and_covers_every_node() {
    let run = run_observed(&world(ProtocolKind::Sc, 2, 1), &TraceConfig::default()).unwrap();
    let text = chrome::render(&run.records);
    let doc = json::parse(&text).expect("emitted chrome trace parses as JSON");

    // Count complete ("X") span events per process (= per node).
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let mut spans_per_node: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in events {
        if ev.get("ph").and_then(|v| v.as_str()) == Some("X") {
            let pid = ev.get("pid").and_then(|v| v.as_f64()).expect("pid") as u64;
            *spans_per_node.entry(pid).or_default() += 1;
        }
    }
    for node in run.records.iter().map(|r| r.node) {
        assert!(
            spans_per_node.get(&(node as u64)).copied().unwrap_or(0) >= 1,
            "node {node} appears in the records but has no span in the trace"
        );
    }
    // Both lanes are populated: engine dispatch spans and derived
    // protocol phase spans.
    assert!(run.records.iter().any(|r| r.kind == TraceKind::Dispatch));
    assert!(run
        .records
        .iter()
        .any(|r| r.kind == TraceKind::Phase && r.name == "commit"));
    // Commit spans carry their causal parent (the proposer's order
    // span), which the renderer turns into flow events.
    assert!(text.contains("\"ph\":\"s\""), "no flow-start events");
    assert!(text.contains("\"ph\":\"f\""), "no flow-finish events");
}

#[test]
fn node_filter_restricts_the_trace_to_global_indices() {
    // Nodes are filtered by *global* index even on the parallel path,
    // where in-shard records are recorded under shard-local indices and
    // restamped during the merge.
    let cfg = TraceConfig {
        nodes: Some(vec![0, 1]),
        ..TraceConfig::default()
    };
    let run = run_observed(&world(ProtocolKind::Sc, 2, 2), &cfg).unwrap();
    assert!(!run.records.is_empty(), "filter left no records");
    assert!(
        run.records.iter().all(|r| r.node <= 1),
        "a record escaped the node filter"
    );
}
