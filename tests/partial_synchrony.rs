//! Partial-synchrony fault scenarios for the BFT and CT baselines
//! (ROADMAP: "Partial-synchrony scenarios everywhere"): pre/post-GST
//! `Delay` and `Mute` windows expressed through the uniform `FaultSpec`
//! plan — no protocol-crate plumbing.
//!
//! The shape follows the paper's assumption 3(b)(i) (Dwork/Lynch/
//! Stockmeyer): before the Global Stabilization Time the network may
//! violate every timeliness estimate (here: the coordinator's uplink
//! carries ~10 batching intervals of extra latency, or a process is
//! silent outright); from GST on, bounds hold. The tests assert the two
//! properties such experiments measure — **liveness resumes after GST**
//! (the post-GST commit rate recovers) and **recovery latency is
//! deterministic for a fixed seed** (the first post-GST commit lands at
//! the same virtual instant in every run).

use sofbyz::bft::sim::BftProtocol;
use sofbyz::core::analysis;
use sofbyz::ct::sim::CtProtocol;
use sofbyz::harness::{ClientSpec, FaultSpec, Protocol, ProtocolEvent, WorldBuilder};
use sofbyz::proto::ids::ProcessId;
use sofbyz::sim::engine::TimedEvent;
use sofbyz::sim::time::{SimDuration, SimTime};

const GST: SimTime = SimTime(3_000_000_000); // 3 s (from_secs is not const)
const HORIZON: u64 = 8;

fn workload(stop_s: u64) -> ClientSpec {
    ClientSpec {
        rate_per_sec: 120.0,
        request_size: 100,
        stop_at: SimTime::from_secs(stop_s),
    }
}

fn run<P: Protocol>(builder: WorldBuilder<P>, until_s: u64) -> Vec<TimedEvent<ProtocolEvent>> {
    let mut d = builder.build();
    d.start();
    d.run_until(SimTime::from_secs(until_s));
    d.world.drain_events()
}

/// Per-batch `(formed_at, first_commit)` pairs (client batches only),
/// keyed by sequence number.
fn batch_commits(events: &[TimedEvent<ProtocolEvent>]) -> Vec<(SimTime, SimTime)> {
    use std::collections::BTreeMap;
    let mut first: BTreeMap<u64, (SimTime, SimTime)> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::Committed {
            o,
            requests,
            formed_at_ns,
            ..
        } = &ev.event
        {
            if *requests == 0 {
                continue;
            }
            let e = first
                .entry(o.0)
                .or_insert((SimTime(*formed_at_ns), ev.time));
            if ev.time < e.1 {
                e.1 = ev.time;
            }
        }
    }
    first.values().copied().collect()
}

/// Commit instants split at GST.
fn commit_times(events: &[TimedEvent<ProtocolEvent>]) -> (Vec<SimTime>, Vec<SimTime>) {
    let mut times: Vec<SimTime> = batch_commits(events).into_iter().map(|(_, t)| t).collect();
    times.sort();
    times.into_iter().partition(|t| *t < GST)
}

/// The pre/post-GST delay scenario for one protocol: the coordinator's
/// uplink carries `extra` added latency until GST, then stabilizes.
fn gst_delay_scenario<P: Protocol>(
    seed: u64,
    extra: SimDuration,
) -> Vec<TimedEvent<ProtocolEvent>> {
    run(
        WorldBuilder::<P>::new(1)
            .seed(seed)
            .batching_interval(SimDuration::from_ms(80))
            .client(workload(6))
            .fault(
                ProcessId(0),
                FaultSpec::delay_until(SimTime::ZERO, GST, extra),
            ),
        HORIZON,
    )
}

/// Asserts the two partial-synchrony properties on a delay-until-GST run
/// and returns the recovery latency (GST → first post-GST commit).
fn assert_gst_recovery(name: &str, events: &[TimedEvent<ProtocolEvent>]) -> SimDuration {
    analysis::check_total_order(events).unwrap_or_else(|e| panic!("{name} pre-GST: {e}"));
    let (_before, after) = commit_times(events);
    assert!(
        !after.is_empty(),
        "{name}: no commits after GST — liveness never resumed"
    );
    // Timeliness recovers: batches formed before GST crawled under the
    // degraded uplink; batches formed after GST commit at the stable
    // network's pace. (A pipelined protocol keeps its *rate* under a
    // pure delay fault — latency is what partial synchrony degrades.)
    let mean_ms = |sel: &dyn Fn(SimTime) -> bool| {
        let lats: Vec<f64> = batch_commits(events)
            .into_iter()
            .filter(|(formed, _)| sel(*formed))
            .map(|(formed, committed)| committed.since(formed).as_ns() as f64 / 1e6)
            .collect();
        assert!(!lats.is_empty(), "{name}: no batches in one GST window");
        lats.iter().sum::<f64>() / lats.len() as f64
    };
    let pre_ms = mean_ms(&|formed| formed < GST);
    let post_ms = mean_ms(&|formed| formed >= GST);
    assert!(
        pre_ms > 4.0 * post_ms,
        "{name}: pre-GST latency {pre_ms:.1} ms vs post-GST {post_ms:.1} ms — \
         the delay window left no mark or never lifted"
    );
    after[0].since(GST)
}

#[test]
fn bft_liveness_resumes_after_gst_and_recovery_is_deterministic() {
    // ~10 batching intervals of extra one-way latency on the primary's
    // uplink: every pre-GST protocol round crawls.
    let extra = SimDuration::from_ms(800);
    let events = gst_delay_scenario::<BftProtocol>(101, extra);
    let recovery = assert_gst_recovery("BFT", &events);
    assert!(
        recovery < SimDuration::from_secs(2),
        "BFT: recovery took {recovery:?}"
    );
    // Determinism: the identical seed reproduces the identical recovery
    // latency — and in fact the identical full trace.
    let again = gst_delay_scenario::<BftProtocol>(101, extra);
    assert_eq!(
        recovery,
        assert_gst_recovery("BFT(rerun)", &again),
        "BFT: recovery latency not deterministic"
    );
    assert_eq!(events.len(), again.len(), "BFT: traces differ across runs");

    // A different seed still recovers (the property is not an artifact
    // of one schedule).
    let other = gst_delay_scenario::<BftProtocol>(102, extra);
    assert_gst_recovery("BFT(seed 102)", &other);
}

#[test]
fn ct_liveness_resumes_after_gst_and_recovery_is_deterministic() {
    let extra = SimDuration::from_ms(800);
    let events = gst_delay_scenario::<CtProtocol>(111, extra);
    let recovery = assert_gst_recovery("CT", &events);
    assert!(
        recovery < SimDuration::from_secs(2),
        "CT: recovery took {recovery:?}"
    );
    let again = gst_delay_scenario::<CtProtocol>(111, extra);
    assert_eq!(
        recovery,
        assert_gst_recovery("CT(rerun)", &again),
        "CT: recovery latency not deterministic"
    );
    assert_eq!(events.len(), again.len(), "CT: traces differ across runs");
}

/// The bounded `Mute` window: a non-coordinator process is silent until
/// GST (the quorum holds without it), then its sends pass again. Safety
/// holds throughout, commits never stop, and the run is deterministic.
#[test]
fn bounded_mute_window_preserves_safety_and_liveness() {
    fn scenario<P: Protocol>(seed: u64, p: ProcessId) -> Vec<TimedEvent<ProtocolEvent>> {
        run(
            WorldBuilder::<P>::new(1)
                .seed(seed)
                .batching_interval(SimDuration::from_ms(80))
                .client(workload(6))
                .fault(p, FaultSpec::mute_until(SimTime::from_ms(500), GST)),
            HORIZON,
        )
    }
    // BFT f=1: backup 3 silent; quorum 2f+1 = 3 survives.
    let bft = scenario::<BftProtocol>(121, ProcessId(3));
    // CT f=1: follower 2 silent; quorum n−f = 2 survives.
    let ct = scenario::<CtProtocol>(122, ProcessId(2));
    for (name, events) in [("BFT", bft), ("CT", ct)] {
        analysis::check_total_order(&events).unwrap_or_else(|e| panic!("{name} muted: {e}"));
        let (before, after) = commit_times(&events);
        assert!(
            !before.is_empty() && !after.is_empty(),
            "{name}: commits stalled around the mute window \
             ({} before GST, {} after)",
            before.len(),
            after.len()
        );
    }
    // Determinism of the windowed-mute schedule.
    let a = scenario::<BftProtocol>(121, ProcessId(3));
    let b = scenario::<BftProtocol>(121, ProcessId(3));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert!(
            x.time == y.time && x.node == y.node && x.event == y.event,
            "windowed mute not deterministic"
        );
    }
}
