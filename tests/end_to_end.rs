//! Cross-crate integration tests: the full stack (crypto → sim → proto →
//! protocols → app) through the public umbrella API.

use sofbyz::app::kv::{KvOp, KvStore};
use sofbyz::app::state_machine::{Executor, StateMachine};
use sofbyz::core::analysis;
use sofbyz::core::config::Fault;
use sofbyz::core::events::ScEvent;
use sofbyz::core::sim::{ClientSpec, ScWorldBuilder};
use sofbyz::crypto::provider::{CryptoProvider, Dealer};
use sofbyz::crypto::scheme::SchemeId;
use sofbyz::proto::codec::Encode;
use sofbyz::proto::ids::{ClientId, ProcessId, SeqNo};
use sofbyz::proto::topology::Variant;
use sofbyz::sim::time::{SimDuration, SimTime};

#[test]
fn all_three_schemes_order_correctly() {
    for scheme in SchemeId::PAPER {
        let mut d = ScWorldBuilder::new(2, Variant::Sc, scheme)
            .batching_interval(SimDuration::from_ms(100))
            .client(ClientSpec {
                rate_per_sec: 50.0,
                request_size: 100,
                stop_at: SimTime::from_secs(2),
            })
            .seed(77)
            .build();
        d.start();
        d.run_until(SimTime::from_secs(6));
        let events = d.world.drain_events();
        analysis::check_total_order(&events).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(
            analysis::order_latencies(&events).len() >= 5,
            "{scheme}: too few commits"
        );
    }
}

#[test]
fn sc_with_real_rsa_signatures_outside_simulator() {
    // The protocol envelope types work with genuine RSA signatures too —
    // the simulator's keyed tags are a substitution only for speed.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut provs = Dealer::real(&mut rng, SchemeId::Md5Rsa1024, 3, Some(512));
    use sofbyz::proto::signed::{DoublySigned, Signed};
    let order = sofbyz::core::messages::OrderPayload {
        c: sofbyz::proto::ids::Rank(1),
        o: SeqNo(1),
        batch: sofbyz::proto::request::BatchRef::default(),
        formed_at_ns: 0,
    };
    let signed = Signed::sign(order, &mut provs[0]);
    let endorsed = DoublySigned::endorse(signed, &mut provs[1]);
    assert!(endorsed.verify(&mut provs[2]));
    let mut forged = endorsed.clone();
    forged.payload.o = SeqNo(2);
    assert!(!forged.verify(&mut provs[2]));
}

#[test]
fn ordered_kv_replicas_converge_under_failover() {
    // Order a KV workload while the coordinator misbehaves mid-run; all
    // replicas must still converge to identical state.
    let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(60))
        .fault(ProcessId(0), Fault::CorruptOrderAt(SeqNo(6)))
        .seed(9)
        .build();
    d.start();
    let n = d.topology.n();
    // Inject structured KV requests.
    let ops: Vec<KvOp> = (0..60)
        .map(|i| KvOp::Put {
            key: format!("k{}", i % 7).into_bytes(),
            value: format!("v{i}").into_bytes(),
        })
        .collect();
    for (i, op) in ops.iter().enumerate() {
        d.run_until(SimTime::from_ms(20 * i as u64));
        let req = sofbyz::proto::request::Request::new(ClientId(0), i as u64 + 1, op.to_bytes());
        for p in 0..n {
            d.world
                .inject(p, 999, sofbyz::core::messages::ScMsg::Request(req.clone()));
        }
    }
    d.run_until(SimTime::from_secs(12));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, ScEvent::Installed { .. })),
        "fail-over must have occurred"
    );

    // Rebuild the committed schedule (identical across nodes by the
    // safety check) and apply to two executors.
    use std::collections::BTreeMap;
    let mut batch_sizes: BTreeMap<SeqNo, usize> = BTreeMap::new();
    for ev in &events {
        if let ScEvent::Committed { o, requests, .. } = &ev.event {
            batch_sizes.entry(*o).or_insert(*requests);
        }
    }
    let mut remaining = ops.iter();
    let mut a = Executor::new(KvStore::new());
    let mut b = Executor::new(KvStore::new());
    for (o, count) in &batch_sizes {
        let batch: Vec<Vec<u8>> = (0..*count)
            .filter_map(|_| remaining.next().map(|op| op.to_bytes()))
            .collect();
        a.apply_batch(*o, batch.clone()).unwrap();
        b.apply_batch(*o, batch).unwrap();
    }
    assert_eq!(
        a.machine().state_digest(),
        b.machine().state_digest(),
        "replicas diverged"
    );
    assert!(a.applied_ops() > 0);
}

#[test]
fn scr_recovers_from_transient_partition_of_pair_link() {
    // SCR under partial synchrony: before GST the pair link is slow
    // enough to trip the heartbeat estimate (a false, time-domain
    // suspicion); after GST the pair recovers (3(b)(i): estimates become
    // accurate eventually).
    use sofbyz::sim::delay::{DelayModel, LinkModel};
    use sofbyz::sim::time::SimDuration as D;
    let slow_then_fast = LinkModel {
        delay: DelayModel::PartialSync {
            before: Box::new(DelayModel::Constant(D::from_ms(400))),
            after: Box::new(DelayModel::Constant(D::from_us(50))),
            gst: SimTime::from_secs(2),
        },
        per_byte_ns: 8,
    };
    let mut d = ScWorldBuilder::new(2, Variant::Scr, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(100))
        .pair_link(slow_then_fast)
        .client(ClientSpec {
            rate_per_sec: 50.0,
            request_size: 100,
            stop_at: SimTime::from_secs(6),
        })
        .seed(21)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(10));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    // False suspicion before GST...
    assert!(
        events.iter().any(|e| matches!(
            e.event,
            ScEvent::FailSignalIssued {
                value_domain: false,
                ..
            }
        )),
        "pre-GST heartbeat misses must trigger a (false) fail-signal"
    );
    // ...and recovery afterwards.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, ScEvent::PairRecovered { .. })),
        "pairs must recover after GST"
    );
}

#[test]
fn provider_costs_flow_into_virtual_time() {
    // A deployment under the expensive RSA-1536 scheme must exhibit
    // higher order latency than RSA-1024, because the provider charges
    // more virtual signing time.
    let run = |scheme| {
        let mut d = ScWorldBuilder::new(1, Variant::Sc, scheme)
            .batching_interval(SimDuration::from_ms(200))
            .client(ClientSpec {
                rate_per_sec: 50.0,
                request_size: 100,
                stop_at: SimTime::from_secs(3),
            })
            .seed(33)
            .build();
        d.start();
        d.run_until(SimTime::from_secs(6));
        let events = d.world.drain_events();
        analysis::mean_latency_ms(&events, SimTime::from_secs(1)).unwrap()
    };
    let cheap = run(SchemeId::Md5Rsa1024);
    let pricey = run(SchemeId::Md5Rsa1536);
    assert!(
        pricey > cheap * 1.5,
        "RSA-1536 ({pricey:.1} ms) must cost well over RSA-1024 ({cheap:.1} ms)"
    );
}

#[test]
fn umbrella_reexports_compose() {
    // Spot-check that the façade exposes the substrates coherently.
    let t = sofbyz::proto::topology::Topology::new(2, Variant::Sc);
    assert_eq!(t.n(), 7);
    let mut kv = KvStore::new();
    let reply = StateMachine::apply(
        &mut kv,
        &KvOp::Put {
            key: b"x".to_vec(),
            value: b"y".to_vec(),
        }
        .to_bytes(),
    );
    assert_eq!(reply, b"OK");
    let mut provs = Dealer::sim(SchemeId::Sha1Dsa1024, 2, 3);
    let sig = provs[0].sign(b"m");
    assert!(provs[1].verify(0, b"m", &sig));
}

// ---------------------------------------------------------------------------
// Live (wall-clock) runtime: serve/call round trips and the
// trace-replay cross-validation invariant.
// ---------------------------------------------------------------------------

use sofbyz::harness::{Knobs, ProtocolKind};
use sofbyz::runtime::{self, spawn_live_kv, LiveTrace, ServeOptions};
use std::net::TcpListener;
use std::time::Duration;

fn live_knobs() -> Knobs {
    Knobs {
        batching_interval: SimDuration::from_ms(15),
        // Wall-clock suspicion windows are tuned for the simulated
        // timeline; a loaded CI host would trip them spuriously.
        time_checks: false,
        ..Knobs::default()
    }
}

#[test]
fn live_serve_call_shutdown_round_trip_on_every_variant() {
    for kind in ProtocolKind::ALL {
        let svc = spawn_live_kv(kind, &live_knobs(), 1.0);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let server = std::thread::spawn(move || {
            runtime::serve(listener, svc, &ServeOptions::default()).expect("serve loop")
        });

        let t = Duration::from_secs(20);
        let put = runtime::call(
            addr,
            &runtime::wire_line("put", &["k".into(), "v1".into()]),
            t,
        )
        .expect("put call");
        assert_eq!(
            runtime::decode_reply(&put).as_deref(),
            Ok(&b"OK"[..]),
            "{kind}: put reply was {put:?}"
        );
        let get =
            runtime::call(addr, &runtime::wire_line("get", &["k".into()]), t).expect("get call");
        assert_eq!(
            runtime::decode_reply(&get).as_deref(),
            Ok(&b"v1"[..]),
            "{kind}: get reply was {get:?}"
        );
        let bad = runtime::call(addr, "frobnicate", t).expect("bad call");
        assert!(
            bad.starts_with("err "),
            "{kind}: bad op must err, got {bad:?}"
        );
        let bye = runtime::call(addr, "shutdown", t).expect("shutdown call");
        assert_eq!(bye, "ok bye", "{kind}");

        let outcome = server.join().expect("server thread");
        assert_eq!(outcome.calls, 4, "{kind}");
        assert_eq!(outcome.run.trace.kind, kind);
        assert_eq!(outcome.run.trace.ops.len(), 2, "{kind}: put + get recorded");
        assert_eq!(
            outcome.run.trace.commit_order.len(),
            2,
            "{kind}: both ops committed before shutdown"
        );
        assert_eq!(outcome.run.executed_ops, 2, "{kind}");
    }
}

#[test]
fn live_trace_cross_validates_against_all_four_simulated_variants() {
    let mut svc = spawn_live_kv(ProtocolKind::Sc, &live_knobs(), 1.0);
    let mut ids = Vec::new();
    for i in 0..8u8 {
        let op = KvOp::Put {
            key: format!("k{i}").into_bytes(),
            value: vec![i],
        };
        ids.push(svc.submit(op.to_bytes()));
        std::thread::sleep(Duration::from_millis(3));
    }
    for id in ids {
        assert!(
            svc.wait_reply(id, Duration::from_secs(20)).is_some(),
            "live op must commit"
        );
    }
    let run = svc.shutdown();
    assert_eq!(run.trace.ops.len(), 8);
    assert_eq!(run.trace.commit_order.len(), 8);

    // The invariant: the recorded workload replayed through the
    // simulator commits identically on all four variants.
    let per_variant = runtime::cross_validate(&run.trace).expect("live/sim commit orders agree");
    assert_eq!(per_variant.len(), 4);
    assert!(per_variant.iter().all(|(_, commits)| *commits == 8));

    // And it is a real check: a reordered trace must be rejected, and it
    // survives the text round trip.
    let mut tampered = LiveTrace::parse(&run.trace.render()).expect("trace text round-trips");
    assert_eq!(tampered, run.trace);
    tampered.commit_order.swap(0, 1);
    assert!(
        runtime::cross_validate(&tampered).is_err(),
        "tampered commit order must fail cross-validation"
    );
}
