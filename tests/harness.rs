//! Cross-protocol harness tests: the identical workload (same client
//! spec, same seed sweep) runs through SC, SCR, BFT and CT via the one
//! generic `WorldBuilder`, and every variant upholds total order — plus
//! one crash-fault and one mute-fault scenario per variant through the
//! uniform `FaultSpec` plan.

use sofbyz::bft::sim::BftProtocol;
use sofbyz::core::analysis;
use sofbyz::core::sim::ScProtocol;
use sofbyz::ct::sim::CtProtocol;
use sofbyz::harness::{
    ClientSpec, FaultSpec, Protocol, ProtocolEvent, ShardedWorldBuilder, WorldBuilder,
};
use sofbyz::proto::ids::ProcessId;
use sofbyz::proto::topology::Variant;
use sofbyz::sim::engine::TimedEvent;
use sofbyz::sim::time::{SimDuration, SimTime};

const SEEDS: [u64; 3] = [11, 12, 13];

/// The identical workload every variant is subjected to.
fn workload(stop_s: u64) -> ClientSpec {
    ClientSpec {
        rate_per_sec: 120.0,
        request_size: 100,
        stop_at: SimTime::from_secs(stop_s),
    }
}

/// Builds, runs and drains one deployment of `P` — the same code for all
/// four variants, which is the point.
fn run<P: Protocol>(builder: WorldBuilder<P>, until_s: u64) -> Vec<TimedEvent<ProtocolEvent>> {
    let mut d = builder.build();
    d.start();
    d.run_until(SimTime::from_secs(until_s));
    d.world.drain_events()
}

fn committed_requests(events: &[TimedEvent<ProtocolEvent>]) -> usize {
    events
        .iter()
        .filter_map(|e| match &e.event {
            ProtocolEvent::Committed { requests, .. } => Some(*requests),
            _ => None,
        })
        .sum()
}

fn commits_after(events: &[TimedEvent<ProtocolEvent>], t: SimTime) -> usize {
    events
        .iter()
        .filter(|e| e.time > t && matches!(e.event, ProtocolEvent::Committed { .. }))
        .count()
}

fn base<P: Protocol>(seed: u64) -> WorldBuilder<P> {
    WorldBuilder::<P>::new(1)
        .seed(seed)
        .batching_interval(SimDuration::from_ms(80))
        .client(workload(2))
}

#[test]
fn identical_workload_totally_ordered_on_all_four_variants() {
    for seed in SEEDS {
        let runs: [(&str, Vec<TimedEvent<ProtocolEvent>>); 4] = [
            ("SC", run(base::<ScProtocol>(seed).variant(Variant::Sc), 6)),
            (
                "SCR",
                run(base::<ScProtocol>(seed).variant(Variant::Scr), 6),
            ),
            ("BFT", run(base::<BftProtocol>(seed), 6)),
            ("CT", run(base::<CtProtocol>(seed), 6)),
        ];
        for (name, events) in &runs {
            analysis::check_total_order(events)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert!(
                committed_requests(events) >= 100,
                "{name} seed {seed}: only {} requests committed",
                committed_requests(events)
            );
        }
    }
}

#[test]
fn poisson_clients_run_on_every_variant() {
    let spec = workload(2);
    let sc = run(
        WorldBuilder::<ScProtocol>::new(1)
            .seed(5)
            .poisson_client(spec.clone()),
        6,
    );
    let bft = run(
        WorldBuilder::<BftProtocol>::new(1)
            .seed(5)
            .poisson_client(spec.clone()),
        6,
    );
    let ct = run(
        WorldBuilder::<CtProtocol>::new(1)
            .seed(5)
            .poisson_client(spec),
        6,
    );
    for (name, events) in [("SC", sc), ("BFT", bft), ("CT", ct)] {
        analysis::check_total_order(&events).unwrap();
        assert!(
            committed_requests(&events) > 0,
            "{name}: Poisson workload never committed"
        );
    }
}

/// Crash a non-coordinator process at 1 s on each variant: safety must
/// hold and commits must continue (the survivor set still holds a
/// quorum in every layout at f = 1).
#[test]
fn crash_fault_tolerated_by_every_variant() {
    let at = SimTime::from_secs(1);
    let after = at;

    // SC f=1: n=4 (replicas 0..3, shadow 3 of replica 0); crash replica 2
    // (not a candidate member) — quorum n−f=3 survives.
    let sc = run(
        base::<ScProtocol>(21).fault(ProcessId(2), FaultSpec::crash(at)),
        8,
    );
    // SCR f=1: n=5; crash the unpaired replica 2.
    let scr = run(
        base::<ScProtocol>(22)
            .variant(Variant::Scr)
            .fault(ProcessId(2), FaultSpec::crash(at)),
        8,
    );
    // BFT f=1: n=4; crash backup 3 — quorum 2f+1=3 survives.
    let bft = run(
        base::<BftProtocol>(23).fault(ProcessId(3), FaultSpec::crash(at)),
        8,
    );
    // CT f=1: n=3; crash follower 2 — quorum n−f=2 survives.
    let ct = run(
        base::<CtProtocol>(24).fault(ProcessId(2), FaultSpec::crash(at)),
        8,
    );

    for (name, events) in [("SC", sc), ("SCR", scr), ("BFT", bft), ("CT", ct)] {
        analysis::check_total_order(&events).unwrap_or_else(|e| panic!("{name} under crash: {e}"));
        assert!(
            commits_after(&events, after) > 0,
            "{name}: no commits after the crash"
        );
    }
}

/// Mute (silent-but-alive) the same processes instead: the fault-parity
/// case the per-protocol builders previously could not express at all
/// for BFT and CT.
#[test]
fn mute_fault_tolerated_by_every_variant() {
    let from = SimTime::from_secs(1);
    let after = from;

    let sc = run(
        base::<ScProtocol>(31).fault(ProcessId(2), FaultSpec::mute(from)),
        8,
    );
    let bft = run(
        base::<BftProtocol>(33).fault(ProcessId(3), FaultSpec::mute(from)),
        8,
    );
    let ct = run(
        base::<CtProtocol>(34).fault(ProcessId(2), FaultSpec::mute(from)),
        8,
    );

    for (name, events) in [("SC", sc), ("BFT", bft), ("CT", ct)] {
        analysis::check_total_order(&events).unwrap_or_else(|e| panic!("{name} under mute: {e}"));
        assert!(
            commits_after(&events, after) > 0,
            "{name}: no commits after the mute"
        );
    }
}

/// Encodes one protocol observation as a stable small integer (used by
/// the golden-trace hash; new variants must extend, never renumber).
fn event_code(e: &ProtocolEvent) -> u64 {
    match e {
        ProtocolEvent::OrderProposed { o, batch_len, .. } => {
            1 << 56 | o.0 << 24 | *batch_len as u64
        }
        ProtocolEvent::Committed { o, requests, .. } => 2 << 56 | o.0 << 24 | *requests as u64,
        ProtocolEvent::FailSignalIssued { pair, .. } => 3 << 56 | pair.0 as u64,
        ProtocolEvent::StartCertIssued { c, .. } => 4 << 56 | c.0 as u64,
        ProtocolEvent::Installed { c } => 5 << 56 | c.0 as u64,
        ProtocolEvent::ViewChanged { v } => 6 << 56 | v.0,
        ProtocolEvent::UnwillingSent { v } => 7 << 56 | v.0,
        ProtocolEvent::PairRecovered { pair } => 8 << 56 | pair.0 as u64,
        ProtocolEvent::CheckpointStable { o } => 9 << 56 | o.0,
    }
}

/// FNV-1a over the `(time, node, kind)` sequence of a run.
fn trace_hash(events: &[TimedEvent<ProtocolEvent>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in events {
        mix(e.time.as_ns());
        mix(e.node as u64);
        mix(event_code(&e.event));
    }
    h
}

/// Golden event-trace determinism: for a fixed seed, every variant's full
/// `(time, node, kind)` observation sequence is pinned. The constants
/// were captured from the pre-timer-wheel scheduler; the reworked engine
/// must realize the identical schedule bit for bit.
#[test]
fn golden_traces_pinned_on_all_four_variants() {
    let runs: [(&str, u64, Vec<TimedEvent<ProtocolEvent>>); 4] = [
        (
            "SC",
            0xcf21_6aec_ee6d_c287,
            run(base::<ScProtocol>(17).variant(Variant::Sc), 4),
        ),
        (
            "SCR",
            0xc9b7_fb62_788c_b410,
            run(base::<ScProtocol>(17).variant(Variant::Scr), 4),
        ),
        (
            "BFT",
            0xd163_52eb_0e71_cd2c,
            run(base::<BftProtocol>(17), 4),
        ),
        ("CT", 0xcb8f_e52a_03dd_6e21, run(base::<CtProtocol>(17), 4)),
    ];
    for (name, want, events) in &runs {
        assert!(!events.is_empty(), "{name}: empty trace");
        assert_eq!(
            trace_hash(events),
            *want,
            "{name}: golden trace diverged (seed 17)"
        );
    }
}

/// A 1-shard sharded world realizes the *bit-identical* `(time, node,
/// kind)` event trace of the flat `WorldBuilder` world: with one group
/// at base 0 every index translation is the identity, the assembly
/// order matches, and shard 0 keeps the base seed — so growing the
/// harness a layer upward is schedule-neutral. Full-trace equality (not
/// just a hash) on all four variants, with the same workload/seed as the
/// pinned golden traces above.
#[test]
fn one_shard_sharded_world_is_bit_identical_to_flat() {
    fn sharded_base<P: Protocol>(seed: u64) -> ShardedWorldBuilder<P> {
        ShardedWorldBuilder::<P>::new(1, 1)
            .seed(seed)
            .batching_interval(SimDuration::from_ms(80))
            .client(workload(2))
    }
    fn run_sharded<P: Protocol>(
        builder: ShardedWorldBuilder<P>,
        until_s: u64,
    ) -> Vec<TimedEvent<ProtocolEvent>> {
        let mut d = builder.build();
        d.start();
        d.run_until(SimTime::from_secs(until_s));
        d.world.drain_events()
    }
    fn assert_identical(
        name: &str,
        flat: Vec<TimedEvent<ProtocolEvent>>,
        sharded: Vec<TimedEvent<ProtocolEvent>>,
    ) {
        assert!(!flat.is_empty(), "{name}: empty flat trace");
        assert_eq!(flat.len(), sharded.len(), "{name}: trace lengths differ");
        for (i, (a, b)) in flat.iter().zip(&sharded).enumerate() {
            assert!(
                a.time == b.time && a.node == b.node && a.event == b.event,
                "{name}: traces diverge at event {i}: \
                 flat ({:?}, node {}, {:?}) vs sharded ({:?}, node {}, {:?})",
                a.time,
                a.node,
                a.event,
                b.time,
                b.node,
                b.event
            );
        }
    }

    assert_identical(
        "SC",
        run(base::<ScProtocol>(17).variant(Variant::Sc), 4),
        run_sharded(sharded_base::<ScProtocol>(17).variant(Variant::Sc), 4),
    );
    assert_identical(
        "SCR",
        run(base::<ScProtocol>(17).variant(Variant::Scr), 4),
        run_sharded(sharded_base::<ScProtocol>(17).variant(Variant::Scr), 4),
    );
    assert_identical(
        "BFT",
        run(base::<BftProtocol>(17), 4),
        run_sharded(sharded_base::<BftProtocol>(17), 4),
    );
    assert_identical(
        "CT",
        run(base::<CtProtocol>(17), 4),
        run_sharded(sharded_base::<CtProtocol>(17), 4),
    );
}

/// The equivalence extends to the uniform fault plan: a crash installed
/// through the sharded builder's `(shard, process)` addressing realizes
/// the flat builder's exact schedule at one shard.
#[test]
fn one_shard_sharded_fault_plan_matches_flat() {
    let at = SimTime::from_secs(1);
    let flat = run(
        base::<CtProtocol>(29).fault(ProcessId(2), FaultSpec::crash(at)),
        6,
    );
    let mut d = ShardedWorldBuilder::<CtProtocol>::new(1, 1)
        .seed(29)
        .batching_interval(SimDuration::from_ms(80))
        .client(workload(2))
        .fault(0, ProcessId(2), FaultSpec::crash(at))
        .build();
    d.start();
    d.run_until(SimTime::from_secs(6));
    let sharded = d.world.drain_events();
    assert_eq!(flat.len(), sharded.len(), "fault-plan traces differ");
    for (a, b) in flat.iter().zip(&sharded) {
        assert!(
            a.time == b.time && a.node == b.node && a.event == b.event,
            "fault-plan traces diverge"
        );
    }
}

/// Scheduler- and arena-traffic budget on the benchmark's operating
/// point (f = 2, 100 ms batching, three 100 req/s clients), checked for
/// every variant: with ProcessNext elision and the timer wheel, the
/// binary heap carries little more than one event — the delivery itself
/// — per processed callback, and the generation-indexed event arena's
/// high-water mark stays bounded (slots recycle instead of the slab
/// growing with run length).
fn budget_point<P: Protocol>(variant: Option<Variant>) -> (f64, usize, u64) {
    let stop = SimTime::from_secs(3);
    let mut builder = WorldBuilder::<P>::new(2)
        .seed(7)
        .batching_interval(SimDuration::from_ms(100))
        .time_checks(false);
    if let Some(v) = variant {
        builder = builder.variant(v);
    }
    for _ in 0..3 {
        builder = builder.client(ClientSpec {
            rate_per_sec: 100.0,
            request_size: 100,
            stop_at: stop,
        });
    }
    let mut d = builder.build();
    d.start();
    d.run_until(SimTime::from_secs(4));
    assert!(
        d.world.processed() > 1_000,
        "run too small to be meaningful"
    );
    // The horizon cuts the run mid-flight (heartbeats never stop), so a
    // handful of live arena slots is legitimate; a leak would leave one
    // per delivered message.
    assert!(
        d.world.arena_live() < 64,
        "events leaked in the arena ({} live)",
        d.world.arena_live()
    );
    (
        d.world.heap_pushes_per_callback(),
        d.world.arena_high_water(),
        d.world.processed(),
    )
}

#[test]
fn heap_and_arena_traffic_stay_under_budget_on_every_variant() {
    let sc = budget_point::<ScProtocol>(None);
    let scr = budget_point::<ScProtocol>(Some(Variant::Scr));
    let bft = budget_point::<BftProtocol>(None);
    let ct = budget_point::<CtProtocol>(None);
    for (name, (ratio, high_water, processed)) in
        [("SC", sc), ("SCR", scr), ("BFT", bft), ("CT", ct)]
    {
        assert!(
            ratio < 1.1,
            "{name}: heap pushes per callback {ratio:.3} ≥ 1.1"
        );
        // In-flight events at any instant are a property of the
        // operating point (rates × latency), not of how long the run
        // lasts; a generous constant bound catches slab leaks without
        // pinning the exact number.
        assert!(
            (high_water as u64) < processed / 10,
            "{name}: arena high water {high_water} out of proportion \
             to {processed} callbacks"
        );
        assert!(
            high_water < 4_096,
            "{name}: arena high water {high_water} unbounded"
        );
    }
}

/// A delayed (degraded-uplink) process must never break safety either.
#[test]
fn delay_fault_preserves_safety_on_every_variant() {
    let from = SimTime::from_secs(1);
    let extra = SimDuration::from_ms(40);
    let sc = run(
        base::<ScProtocol>(41).fault(ProcessId(2), FaultSpec::delay(from, extra)),
        8,
    );
    let bft = run(
        base::<BftProtocol>(43).fault(ProcessId(3), FaultSpec::delay(from, extra)),
        8,
    );
    let ct = run(
        base::<CtProtocol>(44).fault(ProcessId(2), FaultSpec::delay(from, extra)),
        8,
    );
    for (name, events) in [("SC", sc), ("BFT", bft), ("CT", ct)] {
        analysis::check_total_order(&events).unwrap_or_else(|e| panic!("{name} under delay: {e}"));
        assert!(committed_requests(&events) > 0, "{name}: nothing committed");
    }
}
