//! The `sofb` CLI contract: bad input is a typed, line-numbered error —
//! never a panic, never a zero exit — and the dry-run/check/list
//! surfaces behave as documented.

use sofbyz::cli::{execute, CliError};
use sofbyz::spec::report;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn dry_run_of_bad_specs_reports_line_numbered_errors() {
    let path = repo_path("specs/bad/unknown_key.scn");
    let err = execute(&args(&["run", &path, "--dry-run"])).unwrap_err();
    let msg = err.to_string();
    assert!(
        matches!(err, CliError::Spec { ref error, .. } if error.line == 9),
        "{msg}"
    );
    assert!(msg.contains("line 9"), "{msg}");
    assert!(msg.contains("colour"), "{msg}");

    let path = repo_path("specs/bad/inverted_fault_window.scn");
    let err = execute(&args(&["run", &path, "--dry-run"])).unwrap_err();
    let msg = err.to_string();
    assert!(
        matches!(err, CliError::Spec { ref error, .. } if error.line == 15),
        "{msg}"
    );
    assert!(msg.contains("must exceed"), "{msg}");
}

#[test]
fn dry_run_prints_every_point_label() {
    let path = repo_path("specs/saturation.scn");
    let out = execute(&args(&["run", &path, "--dry-run", "--smoke"])).unwrap();
    assert!(out.contains("points: 8 (smoke)"), "{out}");
    assert!(out.contains("axes: f × kind × clients × rate"), "{out}");
    assert!(out.contains("f=2 kind=SC clients=1 rate=120"), "{out}");
    assert!(out.contains("f=2 kind=CT clients=3 rate=120"), "{out}");

    // Full-size expansion of the same spec: 108 points.
    let out = execute(&args(&["run", &path, "--dry-run"])).unwrap();
    assert!(out.contains("points: 108"), "{out}");
}

#[test]
fn missing_file_and_usage_defects_are_typed() {
    let err = execute(&args(&["run", "specs/does_not_exist.scn"])).unwrap_err();
    assert!(matches!(err, CliError::Io { .. }), "{err}");

    let err = execute(&args(&["run"])).unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");

    let err = execute(&args(&["run", "x.scn", "--workers", "zero"])).unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");

    // Zero threads is rejected at parse time for both worker pools —
    // before the spec file is even opened (x.scn does not exist).
    for flag in ["--workers", "--world-workers"] {
        let err = execute(&args(&["run", "x.scn", flag, "0"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{flag} 0: {err}");
    }
    let err = execute(&args(&["run", "x.scn", "--world-workers", "zero"])).unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");
    let err = execute(&args(&["run", "x.scn", "--world-workers"])).unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");

    // --out replaces the file --check would verify against: rejected
    // rather than silently dropping one of them.
    let err = execute(&args(&[
        "run", "x.scn", "--out", "a.json", "--check", "b.json",
    ]))
    .unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");

    let err = execute(&args(&["frobnicate"])).unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err}");

    // No command at all prints usage successfully.
    let out = execute(&[]).unwrap();
    assert!(out.contains("USAGE"), "{out}");
}

#[test]
fn list_validates_the_committed_spec_directory() {
    let out = execute(&args(&["list", &repo_path("specs")])).unwrap();
    for name in [
        "bench_protocols.scn",
        "bench_protocols_sharded.scn",
        "f3_sweep.scn",
        "fig4.scn",
        "fig5.scn",
        "fig6.scn",
        "gst_sensitivity.scn",
        "million_clients.scn",
        "msg_counts.scn",
        "saturation.scn",
        "shard_sweep.scn",
        "fuzz_base.scn",
    ] {
        assert!(out.contains(name), "missing {name} in:\n{out}");
    }
    // The listing recurses, so the committed fuzz repros are validated
    // too (shown relative to the listed directory).
    assert!(out.contains("repros/"), "{out}");
    // The deliberately broken fixtures live in `bad/`, which the
    // recursion skips — they belong to the rejection tests…
    assert!(!out.contains("unknown_key.scn"), "{out}");

    // …but a listing of the bad directory itself fails typed.
    let err = execute(&args(&["list", &repo_path("specs/bad")])).unwrap_err();
    assert!(
        matches!(err, CliError::InvalidSpecs { count: 2, .. }),
        "{err}"
    );
    let msg = err.to_string();
    assert!(msg.contains("line 9"), "{msg}");
    assert!(msg.contains("line 15"), "{msg}");
}

#[test]
fn report_check_accepts_identity_and_rejects_drift() {
    // A tiny grid run end to end through the emitter: the rendered
    // report must check against itself, and a perturbed metric must be
    // rejected with the drifted key named.
    let spec_text = "[scenario]\n\
                     kind = CT\n\
                     f = 1\n\
                     scheme = no-crypto\n\
                     [window]\n\
                     warmup_s = 0\n\
                     run_s = 2\n\
                     drain_s = 2\n\
                     [client]\n\
                     rate = 50\n";
    let spec = sofbyz::spec::Spec::parse(spec_text).unwrap();
    let grid = spec.grid(false).unwrap();
    let report = sofbyz::scenario::run_grid(&grid, 1).unwrap();
    let meta = report::ReportMeta {
        spec: "inline.scn",
        title: None,
        smoke: false,
    };
    let rendered = report::render(&report, meta);
    assert!(report::check(&rendered, &rendered).is_ok());

    // Wall time is machine-dependent and must be excluded.
    let rewalled = rendered.replace("\"wall_ms\": ", "\"wall_ms\": 9");
    assert!(report::check(&rendered, &rewalled).is_ok());

    let drifted = rendered.replacen("\"msgs_per_batch\": ", "\"msgs_per_batch\": 9", 1);
    let err = report::check(&rendered, &drifted).unwrap_err();
    assert!(err.contains("msgs_per_batch"), "{err}");

    // Structural drift (a label change) is also a failure.
    let relabeled = rendered.replacen("\"seed\": 42", "\"seed\": 43", 1);
    let err = report::check(&rendered, &relabeled).unwrap_err();
    assert!(err.contains("seed"), "{err}");
}

#[test]
fn serve_and_call_usage_defects_are_typed() {
    for bad in [
        vec!["serve"],
        vec!["serve", "x.scn", "--for-ms", "0"],
        vec!["serve", "x.scn", "--time-scale", "nope"],
        vec!["serve", "x.scn", "--bogus"],
        vec!["call"],
        vec!["call", "127.0.0.1:1"],
        vec!["call", "not-an-addr", "get", "k"],
    ] {
        let err = execute(&args(&bad)).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{bad:?}: {err}");
    }
    // A call against nothing listening is an Io error (exit 1), not a panic.
    let err = execute(&args(&["call", "127.0.0.1:9", "get", "k"])).unwrap_err();
    assert!(matches!(err, CliError::Io { .. }), "{err}");
}

#[test]
fn serve_rejects_sharded_and_faulted_specs() {
    let dir = std::env::temp_dir();
    let sharded = dir.join("sofb_cli_test_sharded.scn");
    std::fs::write(&sharded, "[scenario]\nkind = SC\nf = 1\nshards = 2\n").unwrap();
    let err = execute(&args(&["serve", sharded.to_str().unwrap()])).unwrap_err();
    assert!(matches!(err, CliError::Live { .. }), "{err}");
    assert!(err.to_string().contains("shards"), "{err}");

    let faulted = dir.join("sofb_cli_test_faulted.scn");
    std::fs::write(
        &faulted,
        "[scenario]\nkind = SC\nf = 1\n[fault]\nprocess = 0\nkind = corrupt_order\nseq = 4\n",
    )
    .unwrap();
    let err = execute(&args(&["serve", faulted.to_str().unwrap()])).unwrap_err();
    assert!(matches!(err, CliError::Live { .. }), "{err}");
    assert!(err.to_string().contains("fault"), "{err}");
}

#[test]
fn usage_text_documents_the_live_commands() {
    let out = execute(&args(&["help"])).unwrap();
    for needle in [
        "sofb serve",
        "sofb call",
        "--cross-validate",
        "--time-scale",
    ] {
        assert!(out.contains(needle), "usage text missing `{needle}`");
    }
}

#[test]
fn fuzz_usage_defects_are_typed() {
    for bad in [
        vec!["fuzz"],
        vec!["fuzz", "x.scn", "--runs", "0"],
        vec!["fuzz", "x.scn", "--runs", "many"],
        vec!["fuzz", "x.scn", "--runs"],
        vec!["fuzz", "x.scn", "--seed", "nope"],
        vec!["fuzz", "x.scn", "--oracle", "bogus"],
        vec!["fuzz", "x.scn", "--oracle", "commit_cap:x"],
        vec!["fuzz", "x.scn", "--oracle"],
        vec!["fuzz", "x.scn", "--out-dir"],
        vec!["fuzz", "x.scn", "--bogus"],
        vec!["fuzz", "x.scn", "extra.scn"],
        // A replay re-runs exactly what the repro pins; campaign flags
        // alongside it would silently mean nothing.
        vec!["fuzz", "x.scn", "--replay", "--runs", "4"],
        vec!["fuzz", "x.scn", "--replay", "--oracle", "total_order"],
    ] {
        let err = execute(&args(&bad)).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{bad:?}: {err}");
    }
    // Flags parse before files open: a typed Io error, never a panic.
    let err = execute(&args(&["fuzz", "specs/does_not_exist.scn", "--replay"])).unwrap_err();
    assert!(matches!(err, CliError::Io { .. }), "{err}");
}

#[test]
fn fuzz_replay_rejects_specs_without_a_pinned_verdict() {
    // Any ordinary spec parses but pins no [meta] verdict — replaying
    // it has nothing to assert, and says so as a typed error.
    let path = repo_path("specs/fuzz_base.scn");
    let err = execute(&args(&["fuzz", &path, "--replay"])).unwrap_err();
    assert!(matches!(err, CliError::Replay { .. }), "{err}");
    assert!(err.to_string().contains("verdict"), "{err}");
}

#[test]
fn fuzz_replay_reproduces_the_committed_repros() {
    let dir = repo_path("specs/repros");
    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).expect("specs/repros exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "scn") {
            continue;
        }
        let out = execute(&args(&["fuzz", path.to_str().unwrap(), "--replay"]))
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(out.contains("reproduced"), "{out}");
        replayed += 1;
    }
    assert!(replayed >= 1, "no committed repros found under {dir}");
}
