//! Sharded-world correctness: seeded sweeps over {2, 4, 8} ordering
//! groups × all four protocol variants through the one
//! `ShardedWorldBuilder` code path, asserting the three sharding
//! invariants —
//!
//! 1. **per-shard total order** (each group is a safe total-order
//!    instance of its protocol),
//! 2. **no cross-shard request leakage** (every request commits only in
//!    the shard the router assigned it to), and
//! 3. **exactly-once delivery per request id** (no request is ordered
//!    twice, in one shard or across shards) —
//!
//! plus the headline scaling property the sharded layer exists for.

use sofbyz::bft::sim::BftProtocol;
use sofbyz::core::analysis;
use sofbyz::core::sim::ScProtocol;
use sofbyz::ct::sim::CtProtocol;
use sofbyz::harness::{
    ClientSpec, Protocol, ProtocolEvent, ShardRouter, ShardedDeployment, ShardedWorldBuilder,
};
use sofbyz::proto::topology::Variant;
use sofbyz::sim::engine::TimedEvent;
use sofbyz::sim::time::{SimDuration, SimTime};

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

/// The identical workload every sharded variant is subjected to: one
/// client whose *total* offered load is spread over the shards by the
/// hash router.
fn workload(stop_s: u64) -> ClientSpec {
    ClientSpec {
        rate_per_sec: 120.0,
        request_size: 100,
        stop_at: SimTime::from_secs(stop_s),
    }
}

fn base<P: Protocol>(shards: usize, seed: u64) -> ShardedWorldBuilder<P> {
    ShardedWorldBuilder::<P>::new(shards, 1)
        .seed(seed)
        .batching_interval(SimDuration::from_ms(80))
        .client(workload(2))
}

/// Builds, runs and drains one sharded deployment of `P`, returning the
/// deployment (for shard geometry and the router) plus its events.
fn run<P: Protocol>(
    builder: ShardedWorldBuilder<P>,
    until_s: u64,
) -> (ShardedDeployment<P>, Vec<TimedEvent<ProtocolEvent>>) {
    let mut d = builder.build();
    d.start();
    d.run_until(SimTime::from_secs(until_s));
    let events = d.world.drain_events();
    (d, events)
}

/// Checks the three sharding invariants on one run.
fn check_invariants<P: Protocol>(
    name: &str,
    shards: usize,
    d: &ShardedDeployment<P>,
    events: &[TimedEvent<ProtocolEvent>],
) {
    assert_eq!(d.shard_count(), shards, "{name}");
    let parts = d.partition_events(events);

    // (1) Per-shard total order, and every shard made progress.
    let mut total_committed = 0usize;
    for (s, shard_events) in parts.iter().enumerate() {
        analysis::check_total_order(shard_events)
            .unwrap_or_else(|e| panic!("{name} {shards} shards: shard {s}: {e}"));
        let committed: usize = shard_events
            .iter()
            .filter_map(|e| match &e.event {
                ProtocolEvent::Committed { requests, .. } => Some(*requests),
                _ => None,
            })
            .sum();
        assert!(
            committed > 0,
            "{name} {shards} shards: shard {s} committed nothing"
        );
        total_committed += committed;
    }
    assert!(
        total_committed >= 100,
        "{name} {shards} shards: only {total_committed} commits"
    );

    // (2) + (3) The shared analysis checkers (the same ones the fuzzer's
    // oracles run): exactly-once commitment per request id, and every
    // commit in the shard the router assigned.
    let n = d.shard_range(0).len();
    analysis::check_exactly_once(events, n)
        .unwrap_or_else(|e| panic!("{name} {shards} shards: {e}"));
    analysis::check_no_cross_shard_leakage(events, n, d.router())
        .unwrap_or_else(|e| panic!("{name} {shards} shards: {e}"));
    let ordered = events.iter().any(|ev| {
        matches!(&ev.event, ProtocolEvent::Committed { request_ids, .. } if !request_ids.is_empty())
    });
    assert!(ordered, "{name}: no requests ordered at all");
}

#[test]
fn sc_sharded_invariants_hold() {
    for (i, shards) in SHARD_COUNTS.into_iter().enumerate() {
        let seed = 51 + i as u64;
        let (d, events) = run(base::<ScProtocol>(shards, seed).variant(Variant::Sc), 6);
        check_invariants("SC", shards, &d, &events);
    }
}

#[test]
fn scr_sharded_invariants_hold() {
    for (i, shards) in SHARD_COUNTS.into_iter().enumerate() {
        let seed = 61 + i as u64;
        let (d, events) = run(base::<ScProtocol>(shards, seed).variant(Variant::Scr), 6);
        check_invariants("SCR", shards, &d, &events);
    }
}

#[test]
fn bft_sharded_invariants_hold() {
    for (i, shards) in SHARD_COUNTS.into_iter().enumerate() {
        let seed = 71 + i as u64;
        let (d, events) = run(base::<BftProtocol>(shards, seed), 6);
        check_invariants("BFT", shards, &d, &events);
    }
}

#[test]
fn ct_sharded_invariants_hold() {
    for (i, shards) in SHARD_COUNTS.into_iter().enumerate() {
        let seed = 81 + i as u64;
        let (d, events) = run(base::<CtProtocol>(shards, seed), 6);
        check_invariants("CT", shards, &d, &events);
    }
}

/// The explicit-range policy routes and isolates exactly like the hash
/// policy (same invariants, different key→shard map).
#[test]
fn range_router_isolates_shards_too() {
    let shards = 4;
    let (d, events) = run(
        base::<CtProtocol>(shards, 91).router(ShardRouter::even_ranges(shards)),
        6,
    );
    check_invariants("CT/ranges", shards, &d, &events);
}

/// Sharded worlds are deterministic end to end: two identical builds
/// realize the identical `(time, node)` observation sequence.
#[test]
fn sharded_world_is_deterministic() {
    let trace = |seed| {
        let (_, events) = run(base::<ScProtocol>(4, seed), 5);
        events
            .into_iter()
            .map(|e| (e.time, e.node, e.event))
            .collect::<Vec<_>>()
    };
    assert_eq!(trace(13), trace(13));
    assert_ne!(trace(13), trace(14));
}

/// Per-shard node-counter aggregation: every shard burned CPU, and the
/// per-shard aggregates sum to the process-wide totals.
#[test]
fn shard_stats_aggregate_per_group() {
    let (d, _) = run(base::<CtProtocol>(4, 23), 5);
    let mut callbacks = 0;
    for s in 0..d.shard_count() {
        let stats = d.shard_stats(s);
        assert!(stats.callbacks > 0, "shard {s} never ran");
        assert!(stats.busy_ns > 0, "shard {s} burned no CPU");
        callbacks += stats.callbacks;
    }
    let process_total: u64 = (0..d.shard_count())
        .flat_map(|s| d.shard_range(s))
        .map(|n| d.world.node_stats(n).callbacks)
        .sum();
    assert_eq!(callbacks, process_total);
}
