//! Population-vs-actors equivalence: a `ClientPopulation` of N clients
//! must be observationally interchangeable with N individual
//! `ClientActor`s.
//!
//! Under constant arrivals the population's schedule is *exactly* the
//! union of N per-client combs, so a seed-matched run commits the
//! identical per-request-id set with the identical latency histogram on
//! all four protocol variants. Under Poisson arrivals equivalence is
//! distributional (superposition: N·Poisson(λ) ≡ Poisson(N·λ) — pinned
//! statistically in the actor's unit tests); here the world-level run
//! must still deliver the offered aggregate load.

use std::collections::BTreeSet;

use sofbyz::harness::{ProtocolEvent, ProtocolKind};
use sofbyz::proto::request::RequestId;
use sofbyz::scenario::{run, run_traced, ClientLoad, Scenario, Window};
use sofbyz::sim::engine::TimedEvent;

const WINDOW: Window = Window {
    warmup_s: 1,
    run_s: 4,
    drain_s: 5,
};

/// 30 req/s: the tick interval truncates to 33,333,333 ns, so client
/// emissions never land on the protocols' millisecond timer grid and
/// the schedule comparison is free of same-instant ordering ties.
const RATE: f64 = 30.0;
const N: usize = 8;

/// Every request id committed anywhere in the trace.
fn commit_set(trace: &[TimedEvent<ProtocolEvent>]) -> BTreeSet<RequestId> {
    let mut set = BTreeSet::new();
    for ev in trace {
        if let ProtocolEvent::Committed { request_ids, .. } = &ev.event {
            set.extend(request_ids.iter().copied());
        }
    }
    set
}

#[test]
fn population_of_8_matches_8_individual_actors_on_all_variants() {
    for kind in ProtocolKind::ALL {
        let individual = Scenario::new(kind)
            .seed(17)
            .window(WINDOW)
            .clients(N, ClientLoad::constant(RATE, 100));
        let population = Scenario::new(kind)
            .seed(17)
            .window(WINDOW)
            .client(ClientLoad::constant(RATE, 100).population(N));

        let (ri, ti) = run_traced(&individual).unwrap_or_else(|e| panic!("{kind}: {e}"));
        let (rp, tp) = run_traced(&population).unwrap_or_else(|e| panic!("{kind}: {e}"));

        // Same per-request-id commit set…
        let (ci, cp) = (commit_set(&ti), commit_set(&tp));
        assert!(!ci.is_empty(), "{kind}: individual run committed nothing");
        assert_eq!(ci, cp, "{kind}: commit sets differ");

        // …same latency histogram (censored distribution, per shard and
        // global) and the derived throughput/message metrics. Only the
        // engine counters may differ — N actors dispatch more timer
        // callbacks than one population.
        assert_eq!(ri.global, rp.global, "{kind}: global latency differs");
        assert_eq!(ri.per_shard, rp.per_shard, "{kind}: per-shard differs");
        assert_eq!(
            ri.throughput_per_process, rp.throughput_per_process,
            "{kind}: throughput differs"
        );
        assert_eq!(
            ri.aggregate_throughput, rp.aggregate_throughput,
            "{kind}: aggregate throughput differs"
        );
        assert_eq!(
            ri.msgs_per_batch, rp.msgs_per_batch,
            "{kind}: msgs/batch differs"
        );
        assert_eq!(ri.failover_ms, rp.failover_ms, "{kind}: failover differs");
    }
}

/// The full schedules coincide, not just the summaries: the population
/// emits the identical union comb, so the realized observation log is
/// bit-identical (engine counters aside).
#[test]
fn population_schedule_is_bit_identical_under_constant_arrivals() {
    let base = |s: Scenario| s.seed(23).window(WINDOW);
    let individual =
        base(Scenario::new(ProtocolKind::Sc)).clients(N, ClientLoad::constant(RATE, 100));
    let population =
        base(Scenario::new(ProtocolKind::Sc)).client(ClientLoad::constant(RATE, 100).population(N));
    let (_, ti) = run_traced(&individual).unwrap();
    let (_, tp) = run_traced(&population).unwrap();
    let key = |t: &[TimedEvent<ProtocolEvent>]| {
        t.iter()
            .map(|e| (e.time, e.node, e.event.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&ti), key(&tp));
}

/// A Poisson population delivers its aggregate offered load N·λ at the
/// world level (superposition in rate, end to end through commitment).
#[test]
fn poisson_population_delivers_aggregate_load() {
    let population = 200;
    let s = Scenario::new(ProtocolKind::Ct)
        .seed(31)
        .interval_ms(80)
        .window(Window {
            warmup_s: 1,
            run_s: 9,
            drain_s: 5,
        })
        .client(ClientLoad::poisson(0.3, 100).population(population));
    let report = run(&s).unwrap();
    let offered = s.offered_requests();
    assert_eq!(offered, 0.3 * population as f64 * 9.0);
    let committed = report.committed_requests() as f64;
    let ratio = committed / offered;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "committed {committed} of {offered} offered ({ratio:.2})"
    );
}
