//! End-to-end proof of the fuzz → shrink → emit → replay pipeline.
//!
//! The protocols are safe, so the real oracles find nothing (also
//! asserted here, and by the CI smoke run). To prove the *pipeline*
//! works, the `commit_cap:N` oracle deliberately weakens "safe" to
//! "never commits past sequence N" — which plain offered load violates.
//! Under it, the fuzzer must find a violation, delta-debug it to a
//! minimal scenario, emit a `.scn` repro that re-parses to the identical
//! scenario, and reproduce the violation bit-identically from the
//! emitted text. The committed repros under `specs/repros/` are held to
//! the same standard forever.

use sofbyz::fuzz::{fuzz, replay, FuzzOptions, Oracle};
use sofbyz::scenario::run_traced_unchecked;
use sofbyz::spec::{Spec, Verdict};

fn base_spec() -> Spec {
    let text = std::fs::read_to_string("specs/fuzz_base.scn").expect("specs/fuzz_base.scn");
    Spec::parse(&text).expect("the shipped fuzz base parses")
}

fn weakened() -> FuzzOptions {
    FuzzOptions {
        runs: 8,
        seed: 1,
        oracles: vec![Oracle::CommitCap(5)],
        max_violations: 1,
    }
}

/// The tentpole acceptance test: a weakened oracle makes the fuzzer
/// find a violation, the shrinker minimizes it, the emitter serializes
/// it, and the emitted spec re-parses and reproduces the violation
/// bit-identically.
#[test]
fn weakened_oracle_drives_find_shrink_emit_and_bit_identical_replay() {
    let spec = base_spec();
    let summary = fuzz(&spec.base, &weakened()).expect("fuzz campaign runs");
    assert_eq!(
        summary.violations.len(),
        1,
        "commit_cap:5 must trip on the very first mutants"
    );
    let v = &summary.violations[0];
    assert_eq!(v.oracle, Oracle::CommitCap(5));

    // Shrinking worked: the offered load violates the cap on its own,
    // so every mutated fault must have been delta-debugged away, and
    // the load pared down from the base's 60 req/s.
    assert!(
        v.scenario.faults.is_empty(),
        "shrink left irrelevant faults: {:?}",
        v.scenario.faults
    );
    assert!(
        v.scenario.clients[0].rate_per_sec < spec.base.clients[0].rate_per_sec,
        "shrink never reduced the client load"
    );

    // Emit → re-parse: the repro is the scenario, byte-for-byte and
    // field-for-field.
    let text = v.repro_text().expect("minimal scenarios are emittable");
    let reparsed = Spec::parse(&text).expect("emitted repro re-parses");
    assert_eq!(reparsed.base, v.scenario);
    assert_eq!(reparsed.oracle.as_deref(), Some("commit_cap:5"));
    assert_eq!(reparsed.verdict, Some(Verdict::Violation));

    // Replay from the emitted text reproduces the violation — with the
    // identical error, twice (the repro is deterministic, not flaky).
    let confirmation = replay(&reparsed).expect("repro replays its pinned verdict");
    assert!(
        confirmation.contains(&v.error),
        "replay `{confirmation}` does not carry the found violation `{}`",
        v.error
    );
    let run_twice = || {
        let (_, events) = run_traced_unchecked(&reparsed.base).unwrap();
        v.oracle
            .check(&reparsed.base, &events)
            .expect_err("the repro must still violate its oracle")
    };
    assert_eq!(run_twice(), run_twice());
    assert_eq!(run_twice(), v.error);
}

/// One campaign seed is one campaign: repeating the identical options
/// reproduces the identical minimal repro, down to the emitted bytes.
#[test]
fn fuzz_campaigns_are_deterministic() {
    let spec = base_spec();
    let one = fuzz(&spec.base, &weakened()).unwrap();
    let two = fuzz(&spec.base, &weakened()).unwrap();
    assert_eq!(one.executed, two.executed);
    assert_eq!(one.violations.len(), two.violations.len());
    let (a, b) = (&one.violations[0], &two.violations[0]);
    assert_eq!(a.run, b.run);
    assert_eq!(a.error, b.error);
    assert_eq!(a.repro_text().unwrap(), b.repro_text().unwrap());
    assert_eq!(a.repro_file_name().unwrap(), b.repro_file_name().unwrap());
}

/// The real oracles hold on every mutant of the healthy base: the
/// protocols are safe, so a default-oracle campaign finds nothing.
/// (CI runs the same thing through `sofb fuzz specs/fuzz_base.scn
/// --smoke`.)
#[test]
fn default_oracles_find_nothing_on_the_healthy_base() {
    let spec = base_spec();
    let opts = FuzzOptions {
        runs: 4,
        seed: 1,
        oracles: Vec::new(),
        max_violations: 1,
    };
    let summary = fuzz(&spec.base, &opts).unwrap();
    assert!(summary.executed >= 1);
    assert!(
        summary.violations.is_empty(),
        "safety violation on a healthy protocol: {:?}",
        summary
            .violations
            .iter()
            .map(|v| format!("{}: {}", v.oracle, v.error))
            .collect::<Vec<_>>()
    );
}

/// Every committed repro under `specs/repros/` still reproduces its
/// pinned verdict — the shrunk artifacts stay honest forever.
#[test]
fn committed_repros_replay_their_pinned_verdicts() {
    let mut checked = 0;
    for entry in std::fs::read_dir("specs/repros").expect("specs/repros exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "scn") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = Spec::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let confirmation = replay(&spec).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(confirmation.contains("reproduced"), "{confirmation}");
        checked += 1;
    }
    assert!(checked >= 1, "no committed repros found under specs/repros");
}
