//! Quickstart: order client requests with the SC protocol and inspect
//! latency, throughput and safety.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sofbyz::core::analysis;
use sofbyz::core::sim::{ClientSpec, ScWorldBuilder};
use sofbyz::crypto::scheme::SchemeId;
use sofbyz::proto::topology::Variant;
use sofbyz::sim::time::{SimDuration, SimTime};

fn main() {
    // f = 2: five service replicas, two of them paired with shadows
    // (n = 3f+1 = 7 order processes), MD5 digests + RSA-1024 signatures.
    let mut deployment = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(100))
        .client(ClientSpec {
            rate_per_sec: 100.0,
            request_size: 100,
            stop_at: SimTime::from_secs(5),
        })
        .seed(1)
        .build();

    deployment.start();
    deployment.run_until(SimTime::from_secs(8));
    let events = deployment.world.drain_events();

    analysis::check_total_order(&events).expect("total order must hold");

    let latencies = analysis::order_latencies(&events);
    let mean =
        analysis::mean_latency_ms(&events, SimTime::from_secs(1)).expect("batches committed");
    let throughput =
        analysis::throughput_per_process(&events, SimTime::from_secs(1), SimTime::from_secs(8));

    println!("Streets of Byzantium — SC protocol quickstart");
    println!("  processes            : {}", deployment.topology.n());
    println!("  batches committed    : {}", latencies.len());
    println!("  mean order latency   : {mean:.2} ms");
    println!("  throughput/process   : {throughput:.1} requests/s");
    println!("  safety               : total order verified across all nodes");
}
