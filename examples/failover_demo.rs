//! Fail-over demo: inject a value-domain fault into the rank-1
//! coordinator replica and watch the signal-on-crash machinery hand
//! control to the rank-2 pair.
//!
//! ```sh
//! cargo run --release --example failover_demo
//! ```

use sofbyz::core::analysis;
use sofbyz::core::config::Fault;
use sofbyz::core::events::ScEvent;
use sofbyz::core::sim::{ClientSpec, ScWorldBuilder};
use sofbyz::crypto::scheme::SchemeId;
use sofbyz::proto::ids::{ProcessId, SeqNo};
use sofbyz::proto::topology::Variant;
use sofbyz::sim::time::{SimDuration, SimTime};

fn main() {
    let mut deployment = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(100))
        // Process 0 (the rank-1 coordinator replica) will corrupt the
        // digest of its 5th order — a value-domain Byzantine fault.
        .fault(ProcessId(0), Fault::CorruptOrderAt(SeqNo(5)))
        // Offered load below batch capacity so the post-fail-over backlog
        // drains; the shadow's delay estimate then stays comfortably met.
        .order_timeout(sofbyz::sim::time::SimDuration::from_ms(2_000))
        .client(ClientSpec {
            rate_per_sec: 70.0,
            request_size: 100,
            stop_at: SimTime::from_secs(5),
        })
        .seed(2)
        .build();

    deployment.start();
    deployment.run_until(SimTime::from_secs(8));
    let events = deployment.world.drain_events();

    analysis::check_total_order(&events).expect("safety holds across the fail-over");

    println!("Streets of Byzantium — fail-over timeline\n");
    for ev in &events {
        match &ev.event {
            ScEvent::FailSignalIssued { pair, value_domain } => println!(
                "  {:>10}  node {} fail-signals pair {pair} ({})",
                ev.time.to_string(),
                ev.node,
                if *value_domain {
                    "value-domain"
                } else {
                    "time-domain"
                }
            ),
            ScEvent::StartCertIssued { c, start_o } => println!(
                "  {:>10}  node {} issues Start certificate for {c} (start_o = {start_o})",
                ev.time.to_string(),
                ev.node
            ),
            ScEvent::Installed { c } => println!(
                "  {:>10}  node {} installs coordinator {c}",
                ev.time.to_string(),
                ev.node
            ),
            _ => {}
        }
    }
    let failover = analysis::failover_latency_ms(&events).expect("fail-over measured");
    let commits = analysis::order_latencies(&events).len();
    println!("\n  fail-over latency : {failover:.2} ms (fail-signal → Start certificate)");
    println!("  batches committed : {commits} (ordering continued under rank 2)");
}
