//! Replicated key-value service: run a KV workload through the SC order
//! protocol, execute the committed batches on independent replicas, and
//! verify the replicas converge to the same state digest.
//!
//! This is the end-to-end state-machine-replication story of §2: order
//! first, execute deterministically, compare states.
//!
//! ```sh
//! cargo run --release --example kv_replication
//! ```

use std::collections::{BTreeMap, HashMap};

use sofbyz::app::kv::KvStore;
use sofbyz::app::state_machine::{Executor, StateMachine};
use sofbyz::app::workload::{KvMix, KvWorkload};
use sofbyz::core::analysis;
use sofbyz::core::events::ScEvent;
use sofbyz::core::messages::ScMsg;
use sofbyz::core::sim::ScWorldBuilder;
use sofbyz::crypto::scheme::SchemeId;
use sofbyz::proto::ids::{ClientId, SeqNo};
use sofbyz::proto::request::{Digest, Request, RequestId};
use sofbyz::proto::topology::Variant;
use sofbyz::sim::time::{SimDuration, SimTime};

fn main() {
    // Generate a deterministic KV workload up front.
    let mut gen = KvWorkload::new(
        ClientId(0),
        KvMix {
            read_ratio: 0.3,
            key_space: 50,
            value_size: 32,
        },
        7,
    );
    let requests: Vec<Request> = (0..200).map(|_| gen.next_request()).collect();
    let by_id: HashMap<RequestId, Request> = requests.iter().map(|r| (r.id, r.clone())).collect();

    // Order the requests with the SC protocol (f = 1, n = 4).
    let mut deployment = ScWorldBuilder::new(1, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .seed(3)
        .build();
    deployment.start();
    // Inject the pre-generated requests directly (no synthetic client).
    let n = deployment.topology.n();
    for (i, req) in requests.iter().enumerate() {
        deployment.run_until(SimTime::from_ms(5 * i as u64));
        for p in 0..n {
            deployment
                .world
                .inject(p, 1_000, ScMsg::Request(req.clone()));
        }
    }
    deployment.run_until(SimTime::from_secs(10));
    let events = deployment.world.drain_events();
    analysis::check_total_order(&events).expect("total order holds");

    // Extract the committed schedule (first commit per sequence number)
    // and replay it on two independent KV replicas.
    let mut schedule: BTreeMap<SeqNo, Vec<RequestId>> = BTreeMap::new();
    let mut batch_digests: BTreeMap<SeqNo, Digest> = BTreeMap::new();
    for ev in &events {
        if let ScEvent::Committed { o, digest, .. } = &ev.event {
            batch_digests.insert(*o, *digest);
        }
    }
    // Recover batch membership from any replica's committed log events by
    // matching the order events (the ordering layer exposes request ids
    // through the commit's batch in the protocol; here we reuse the
    // workload's deterministic mapping by re-deriving from the order of
    // commits at node 0).
    let mut per_node_commits: BTreeMap<SeqNo, usize> = BTreeMap::new();
    for ev in &events {
        if let ScEvent::Committed { o, requests, .. } = &ev.event {
            per_node_commits.entry(*o).or_insert(*requests);
        }
    }
    // The simulator's protocol already guarantees identical digests per
    // seq; reconstruct batches by asking the deployment's first process.
    // (For the example we simply replay requests in commit order.)
    let mut ordered_ids: Vec<RequestId> = Vec::new();
    {
        // Requests were batched FIFO by the coordinator; replay them in
        // committed-sequence order using the per-batch counts.
        let mut remaining: Vec<RequestId> = requests.iter().map(|r| r.id).collect();
        for (o, count) in &per_node_commits {
            let take = (*count).min(remaining.len());
            let batch: Vec<RequestId> = remaining.drain(..take).collect();
            schedule.insert(*o, batch.clone());
            ordered_ids.extend(batch);
        }
    }

    let mut replica_a = Executor::new(KvStore::new());
    let mut replica_b = Executor::new(KvStore::new());
    for (o, batch) in &schedule {
        let ops: Vec<Vec<u8>> = batch.iter().map(|id| by_id[id].payload.to_vec()).collect();
        replica_a.apply_batch(*o, ops.clone()).expect("in order");
        replica_b.apply_batch(*o, ops).expect("in order");
    }

    let da = replica_a.machine().state_digest();
    let db = replica_b.machine().state_digest();
    assert_eq!(da, db, "replicas must converge");

    println!("Streets of Byzantium — replicated KV service");
    println!("  requests generated : {}", requests.len());
    println!("  batches committed  : {}", schedule.len());
    println!("  ops applied        : {}", replica_a.applied_ops());
    println!("  keys stored        : {}", replica_a.machine().len());
    println!(
        "  state digest       : {} (identical on both replicas)",
        da.iter()
            .take(8)
            .map(|b| format!("{b:02x}"))
            .collect::<String>()
    );
}
