//! The declarative Scenario API: run the identical workload on all four
//! protocol variants from one spec, then inject the same crash fault
//! into each and watch every variant keep ordering.
//!
//! ```sh
//! cargo run --release --example unified_harness
//! ```

use sofbyz::harness::ProtocolKind;
use sofbyz::proto::ids::ProcessId;
use sofbyz::scenario::{ClientLoad, RunScenario, Scenario, ScenarioFault, Window};
use sofbyz::sim::time::SimTime;

/// The identical experiment for every variant: one spec, with only the
/// kind (and, under fault, the crashed follower's id) varying.
fn scenario(kind: ProtocolKind, faulty: Option<ProcessId>) -> Scenario {
    let mut s = Scenario::new(kind)
        .seed(1)
        .interval_ms(100)
        .client(ClientLoad::constant(100.0, 100))
        .window(Window {
            warmup_s: 0,
            run_s: 3,
            drain_s: 5,
        });
    if let Some(p) = faulty {
        s = s.fault(ScenarioFault::crash(p, SimTime::from_secs(1)));
    }
    s
}

/// A non-coordinator process of each layout at f = 1 (the survivor set
/// still holds a quorum).
fn crash_target(kind: ProtocolKind) -> ProcessId {
    match kind {
        ProtocolKind::Bft => ProcessId(3),
        _ => ProcessId(2),
    }
}

fn main() {
    println!("Declarative scenarios — identical workload, four protocol variants\n");
    println!(
        "{:>6} {:>10} {:>22} {:>18}",
        "proto", "fault", "committed requests", "mean latency (ms)"
    );

    for faulty in [false, true] {
        for kind in ProtocolKind::ALL {
            let report = scenario(kind, faulty.then(|| crash_target(kind)))
                .run()
                .expect("a valid scenario runs on any variant");
            println!(
                "{:>6} {:>10} {:>22} {:>18}",
                kind.to_string(),
                if faulty { "crash@1s" } else { "none" },
                report.committed_requests(),
                report
                    .global
                    .mean_ms
                    .map_or("-".into(), |m| format!("{m:.2}")),
            );
        }
        println!();
    }
    println!("total order verified on every run (crashed follower included)");
}
