//! The unified harness: run the identical workload on all four protocol
//! variants through one generic builder, then inject the same crash
//! fault into each and watch every variant keep ordering.
//!
//! ```sh
//! cargo run --release --example unified_harness
//! ```

use sofbyz::bft::sim::BftProtocol;
use sofbyz::core::analysis;
use sofbyz::core::sim::ScProtocol;
use sofbyz::ct::sim::CtProtocol;
use sofbyz::harness::{ClientSpec, FaultSpec, Protocol, ProtocolEvent, WorldBuilder};
use sofbyz::proto::ids::ProcessId;
use sofbyz::proto::topology::Variant;
use sofbyz::sim::engine::TimedEvent;
use sofbyz::sim::time::{SimDuration, SimTime};

fn workload() -> ClientSpec {
    ClientSpec {
        rate_per_sec: 100.0,
        request_size: 100,
        stop_at: SimTime::from_secs(3),
    }
}

/// One generic run — the same code drives every variant.
fn measure<P: Protocol>(
    name: &str,
    builder: WorldBuilder<P>,
    faulty: Option<ProcessId>,
) -> (String, usize, Option<f64>) {
    let mut builder = builder
        .seed(1)
        .batching_interval(SimDuration::from_ms(100))
        .client(workload());
    if let Some(p) = faulty {
        builder = builder.fault(p, FaultSpec::crash(SimTime::from_secs(1)));
    }
    let mut d = builder.build();
    d.start();
    d.run_until(SimTime::from_secs(8));
    let events: Vec<TimedEvent<ProtocolEvent>> = d.world.drain_events();
    analysis::check_total_order(&events).expect("total order");
    let committed: usize = events
        .iter()
        .filter_map(|e| match &e.event {
            ProtocolEvent::Committed { requests, .. } => Some(*requests),
            _ => None,
        })
        .sum();
    let mean = analysis::mean_latency_ms(&events, SimTime::from_ms(500));
    (name.to_string(), committed, mean)
}

fn main() {
    println!("Unified harness — identical workload, four protocol variants\n");
    println!(
        "{:>6} {:>10} {:>22} {:>18}",
        "proto", "fault", "committed requests", "mean latency (ms)"
    );

    for faulty in [None, Some(())] {
        let rows = [
            measure(
                "SC",
                WorldBuilder::<ScProtocol>::new(1).variant(Variant::Sc),
                faulty.map(|_| ProcessId(2)),
            ),
            measure(
                "SCR",
                WorldBuilder::<ScProtocol>::new(1).variant(Variant::Scr),
                faulty.map(|_| ProcessId(2)),
            ),
            measure(
                "BFT",
                WorldBuilder::<BftProtocol>::new(1),
                faulty.map(|_| ProcessId(3)),
            ),
            measure(
                "CT",
                WorldBuilder::<CtProtocol>::new(1),
                faulty.map(|_| ProcessId(2)),
            ),
        ];
        for (name, committed, mean) in rows {
            println!(
                "{:>6} {:>10} {:>22} {:>18}",
                name,
                if faulty.is_some() { "crash@1s" } else { "none" },
                committed,
                mean.map_or("-".into(), |m| format!("{m:.2}")),
            );
        }
        println!();
    }
    println!("total order verified on every run (crashed follower included)");
}
