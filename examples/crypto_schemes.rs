//! Crypto-technique comparison: exercise the real (from-scratch) RSA and
//! DSA implementations for each of the paper's three combinations, and
//! print the calibrated virtual-time cost table the simulator charges.
//!
//! The paper's §5 observation — "signature verification is much faster in
//! the RSA scheme compared to DSA ... DSA is generally not suited for
//! Byzantine order protocols" — is visible in both columns.
//!
//! ```sh
//! cargo run --release --example crypto_schemes
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sofbyz::crypto::provider::{CryptoProvider, Dealer};
use sofbyz::crypto::scheme::SchemeId;
use sofbyz::crypto::timing::SchemeTiming;

fn main() {
    println!("Streets of Byzantium — crypto techniques (§5 matrix)\n");
    println!(
        "{:<16} {:>13} {:>13} {:>14} {:>14}",
        "scheme", "real sign", "real verify", "model sign", "model verify"
    );

    let mut rng = StdRng::seed_from_u64(1);
    for scheme in SchemeId::PAPER {
        // Real implementation with reduced key sizes (full-size keys work
        // too but debug-friendly sizes keep the example snappy).
        let bits = match scheme {
            SchemeId::Sha1Dsa1024 => Some(384),
            _ => Some(512),
        };
        let mut provs = Dealer::real(&mut rng, scheme, 2, bits);
        let msg = vec![0x42u8; 256];

        let t0 = Instant::now();
        let iters = 20;
        let mut sig = Vec::new();
        for _ in 0..iters {
            sig = provs[0].sign(&msg);
        }
        let sign_us = t0.elapsed().as_micros() as f64 / f64::from(iters);

        let t0 = Instant::now();
        for _ in 0..iters {
            assert!(provs[1].verify(0, &msg, &sig));
        }
        let verify_us = t0.elapsed().as_micros() as f64 / f64::from(iters);

        let model = SchemeTiming::calibrated(scheme);
        println!(
            "{:<16} {:>10.1} us {:>10.1} us {:>11.1} ms {:>11.1} ms",
            scheme.to_string(),
            sign_us,
            verify_us,
            model.sign_ns as f64 / 1e6,
            model.verify_ns as f64 / 1e6,
        );
    }

    println!("\nNotes:");
    println!("  * 'real' columns: this library's own bignum RSA/DSA (reduced keys).");
    println!("  * 'model' columns: calibrated 2006 P4 + JDK 1.5 costs charged by the");
    println!("    simulator (what the figure regenerators use).");
    println!("  * In both, RSA verify ≪ DSA verify while sign costs are comparable —");
    println!("    the asymmetry behind Figure 4(c)'s widened SC/BFT gap.");
}
