//! The high-level service API: a replicated key-value store where you
//! submit operations and collect totally-ordered replies — the paper's §2
//! state-machine-replication story, end to end, including a Byzantine
//! fail-over in the middle of the workload.
//!
//! ```sh
//! cargo run --release --example replicated_service
//! ```

use sofbyz::app::kv::{KvOp, KvStore};
use sofbyz::core::sim::ScProtocol;
use sofbyz::harness::{FaultSpec, Protocol, WorldBuilder};
use sofbyz::proto::codec::Encode;
use sofbyz::proto::ids::{ProcessId, SeqNo};
use sofbyz::service::ReplicatedService;
use sofbyz::sim::time::SimDuration;

fn main() {
    // f = 2 SC deployment whose rank-1 coordinator will corrupt its 4th
    // batch; the service layer never notices beyond a latency blip.
    // (Swap `ScProtocol` for `BftProtocol`/`CtProtocol` — the façade is
    // generic over the variant.)
    let fault = ScProtocol::value_fault(SeqNo(4)).expect("SC scripts value faults");
    let builder = WorldBuilder::<ScProtocol>::new(2)
        .batching_interval(SimDuration::from_ms(50))
        .fault(ProcessId(0), FaultSpec::Byzantine(fault))
        .seed(11);
    let mut bank = ReplicatedService::new(builder, KvStore::new);

    // Open three accounts, then transfer between them.
    for (acct, amount) in [("alice", "100"), ("bob", "50"), ("carol", "0")] {
        bank.submit(
            KvOp::Put {
                key: acct.into(),
                value: amount.into(),
            }
            .to_bytes(),
        );
        bank.run_for(SimDuration::from_ms(60));
    }
    // A compare-and-swap models a guarded transfer.
    let cas = bank.submit(
        KvOp::Cas {
            key: "alice".into(),
            expect: "100".into(),
            new: "70".into(),
        }
        .to_bytes(),
    );
    bank.run_for(SimDuration::from_ms(60));
    let credit = bank.submit(
        KvOp::Put {
            key: "carol".into(),
            value: "30".into(),
        }
        .to_bytes(),
    );

    // Keep the workload going through the injected fault.
    for i in 0..30 {
        bank.submit(
            KvOp::Put {
                key: format!("audit-{i}").into_bytes(),
                value: format!("entry {i}").into_bytes(),
            }
            .to_bytes(),
        );
        bank.run_for(SimDuration::from_ms(40));
    }
    bank.run_for(SimDuration::from_secs(4));

    let replies = bank.poll_replies().clone();
    println!("Streets of Byzantium — replicated service (with mid-run fail-over)");
    println!(
        "  ops executed (each exactly once) : {}",
        bank.executed_ops()
    );
    println!(
        "  CAS transfer reply               : {:?}",
        replies.get(&cas).map(|r| r == &[1u8])
    );
    println!(
        "  credit acknowledged              : {}",
        replies.contains_key(&credit)
    );
    println!(
        "  alice = {:?}, carol = {:?}",
        bank.machine()
            .get(b"alice")
            .map(|v| String::from_utf8_lossy(v).into_owned()),
        bank.machine()
            .get(b"carol")
            .map(|v| String::from_utf8_lossy(v).into_owned()),
    );
    println!(
        "  replica state digest             : {} (audited identical on all {} replicas)",
        bank.state_digest()[..8]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect::<String>(),
        5,
    );
}
