//! The adversarial schedule fuzzer behind `sofb fuzz`.
//!
//! The paper's claim is safety of the four ordering variants under
//! hostile schedules; this module stops hand-writing those schedules.
//! [`fuzz`] takes any base scenario and mutates it along every
//! adversarial axis the testbed can express — crash/mute/delay windows,
//! Byzantine order corruption (via `Protocol::Byz`), partition-shaped
//! simultaneous mutes, the engine's message duplication and reordering
//! faults, client load, and the world seed — runs each mutant without
//! the harness's panicking safety net
//! ([`crate::scenario::run_traced_unchecked`]),
//! and applies the cross-protocol safety [`Oracle`]s to every trace.
//!
//! On a violation, a deterministic delta-debugging [`shrink`] pass
//! minimizes the fault plan, client load, measurement window and seed
//! while the same oracle keeps failing, and the minimal scenario is
//! serialized as a committable `.scn` repro (via
//! [`sofb_spec::emit_spec`]) whose `[meta]` pins the oracle and the
//! `violation` verdict. [`replay`] is the other half of that contract:
//! re-run a pinned spec and assert its verdict still holds — the CI
//! gate over `specs/repros/`.
//!
//! Everything here is deterministic: the mutation stream is a splitmix64
//! function of the fuzz seed and run index, the shrinker is greedy and
//! ordered, and emission is byte-stable — the same invocation always
//! produces the same repro bytes.

use std::fmt;

use sofb_harness::analysis;
use sofb_harness::scenario::{ClientLoad, Scenario, ScenarioError, ScenarioFault};
use sofb_harness::{ProtocolEvent, ProtocolKind};
use sofb_proto::ids::{ProcessId, SeqNo};
use sofb_sim::engine::TimedEvent;
use sofb_sim::time::{SimDuration, SimTime};
use sofb_spec::{emit_spec, EmitError, Spec, Verdict};

use crate::scenario::run_traced_unchecked;

/// A named safety invariant checked against every fuzz run's trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Oracle {
    /// Per-shard total order: no divergent or repeated commit at any
    /// sequence number ([`analysis::check_total_order`]).
    TotalOrder,
    /// Every request commits at exactly one `(shard, sequence)`
    /// ([`analysis::check_exactly_once`]).
    ExactlyOnce,
    /// Every commit lands on the shard the router assigns
    /// ([`analysis::check_no_cross_shard_leakage`]).
    NoLeakage,
    /// Test-only weakened oracle: fails when any commit's sequence
    /// number exceeds the cap. Safe protocols violate it under plain
    /// load, which makes the whole find → shrink → emit → replay
    /// pipeline exercisable (and CI-checkable) without a protocol bug.
    CommitCap(u64),
}

impl Oracle {
    /// The default oracle set: the paper's cross-protocol safety
    /// invariants.
    pub fn defaults() -> Vec<Oracle> {
        vec![Oracle::TotalOrder, Oracle::ExactlyOnce, Oracle::NoLeakage]
    }

    /// Parses an oracle name (`total_order`, `exactly_once`,
    /// `no_leakage`, `commit_cap:N`).
    pub fn parse(name: &str) -> Option<Oracle> {
        match name {
            "total_order" => Some(Oracle::TotalOrder),
            "exactly_once" => Some(Oracle::ExactlyOnce),
            "no_leakage" => Some(Oracle::NoLeakage),
            _ => name
                .strip_prefix("commit_cap:")?
                .parse()
                .ok()
                .map(Oracle::CommitCap),
        }
    }

    /// Checks the invariant over one run's trace. `Err` carries the
    /// violation description.
    pub fn check(
        &self,
        scenario: &Scenario,
        events: &[TimedEvent<ProtocolEvent>],
    ) -> Result<(), String> {
        let n = scenario.nodes_per_shard();
        match self {
            Oracle::TotalOrder => {
                // Safety is a per-shard property: each ordering group
                // runs its own sequence space.
                for s in 0..scenario.shards {
                    let shard: Vec<TimedEvent<ProtocolEvent>> = events
                        .iter()
                        .filter(|ev| ev.node / n == s)
                        .cloned()
                        .collect();
                    analysis::check_total_order(&shard).map_err(|e| format!("shard {s}: {e}"))?;
                }
                Ok(())
            }
            Oracle::ExactlyOnce => analysis::check_exactly_once(events, n),
            Oracle::NoLeakage => {
                let router = scenario
                    .router
                    .build(scenario.shards)
                    .map_err(|e| e.to_string())?;
                analysis::check_no_cross_shard_leakage(events, n, &router)
            }
            Oracle::CommitCap(cap) => {
                for ev in events {
                    if let ProtocolEvent::Committed { o, .. } = &ev.event {
                        if o.0 > *cap {
                            return Err(format!(
                                "commit at {o:?} exceeds cap {cap} (node {})",
                                ev.node
                            ));
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Oracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Oracle::TotalOrder => write!(f, "total_order"),
            Oracle::ExactlyOnce => write!(f, "exactly_once"),
            Oracle::NoLeakage => write!(f, "no_leakage"),
            Oracle::CommitCap(cap) => write!(f, "commit_cap:{cap}"),
        }
    }
}

/// Budget and oracle selection for one [`fuzz`] campaign.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// How many mutants to generate and run.
    pub runs: usize,
    /// The campaign seed: the entire mutation stream is a function of
    /// it, so one seed reproduces one campaign exactly.
    pub seed: u64,
    /// The oracles applied to every run (empty: [`Oracle::defaults`]).
    pub oracles: Vec<Oracle>,
    /// Stop after this many shrunk violations (0: never stop early).
    pub max_violations: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            runs: 64,
            seed: 1,
            oracles: Vec::new(),
            max_violations: 1,
        }
    }
}

/// One shrunk, reproducible oracle violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The oracle that failed.
    pub oracle: Oracle,
    /// The violation description from the *minimized* scenario's run.
    pub error: String,
    /// The delta-debugged minimal failing scenario.
    pub scenario: Scenario,
    /// The zero-based index of the fuzz run that found it.
    pub run: usize,
}

impl Violation {
    /// Serializes the violation as committable `.scn` repro text with
    /// the oracle and `violation` verdict pinned in `[meta]`.
    pub fn repro_text(&self) -> Result<String, EmitError> {
        emit_spec(
            &format!("fuzz repro: {} violation (run {})", self.oracle, self.run),
            &self.oracle.to_string(),
            Verdict::Violation,
            &self.scenario,
        )
    }

    /// A deterministic repro file name: the oracle plus a hash of the
    /// minimized scenario's repro text.
    pub fn repro_file_name(&self) -> Result<String, EmitError> {
        let text = self.repro_text()?;
        // FNV-1a: tiny, stable, and plenty for a file-name fingerprint.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let oracle = self.oracle.to_string().replace(':', "_");
        Ok(format!("repro_{oracle}_{h:016x}.scn"))
    }
}

/// A finished fuzz campaign.
#[derive(Clone, Debug, Default)]
pub struct FuzzSummary {
    /// Mutants actually executed.
    pub executed: usize,
    /// The shrunk violations, in discovery order.
    pub violations: Vec<Violation>,
}

/// The deterministic mutation stream: splitmix64 keyed by campaign seed
/// and run index. Self-contained so fuzz campaigns never perturb (or
/// depend on) the engine's own RNG draws.
struct Rng(u64);

impl Rng {
    fn for_run(seed: u64, run: u64) -> Rng {
        let mut r = Rng(seed ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        r.next();
        r
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

/// A fault window inside the scenario's offered-load phase, in whole
/// milliseconds (the emitter's grammar is ms-aligned).
fn window_ms(rng: &mut Rng, end_ms: u64) -> (u64, u64) {
    let from = rng.below(end_ms);
    let until = from + 1 + rng.below(end_ms.saturating_sub(from).max(1));
    (from, until)
}

/// Builds one mutant: the base scenario plus a fresh world seed and 1–3
/// adversarial mutations. Every mutation stays inside the grammar the
/// repro emitter can express (ms-aligned windows, no link/CPU edits).
fn mutate(base: &Scenario, rng: &mut Rng) -> Scenario {
    let mut s = base.clone();
    s.knobs.seed = rng.next();
    let n = s.nodes_per_shard() as u64;
    let shards = s.shards as u64;
    let end_ms = (s.window.warmup_s + s.window.run_s) * 1000;
    let mutations = 1 + rng.below(3);
    for _ in 0..mutations {
        let process = ProcessId(rng.below(n) as u32);
        let shard = rng.below(shards) as usize;
        match rng.below(8) {
            0 => {
                let at = SimTime::from_ms(rng.below(end_ms));
                s.faults
                    .push(ScenarioFault::crash(process, at).on_shard(shard));
            }
            1 => {
                let (from, until) = window_ms(rng, end_ms);
                s.faults.push(
                    ScenarioFault::mute_until(
                        process,
                        SimTime::from_ms(from),
                        SimTime::from_ms(until),
                    )
                    .on_shard(shard),
                );
            }
            2 => {
                let (from, until) = window_ms(rng, end_ms);
                let extra = SimDuration::from_ms(1 + rng.below(500));
                s.faults.push(
                    ScenarioFault::delay_until(
                        process,
                        SimTime::from_ms(from),
                        SimTime::from_ms(until),
                        extra,
                    )
                    .on_shard(shard),
                );
            }
            3 => {
                let (from, until) = window_ms(rng, end_ms);
                s.faults.push(
                    ScenarioFault::duplicate_until(
                        process,
                        SimTime::from_ms(from),
                        SimTime::from_ms(until),
                    )
                    .on_shard(shard),
                );
            }
            4 => {
                let (from, until) = window_ms(rng, end_ms);
                let jitter = SimDuration::from_ms(1 + rng.below(100));
                s.faults.push(
                    ScenarioFault::reorder_until(
                        process,
                        SimTime::from_ms(from),
                        SimTime::from_ms(until),
                        jitter,
                    )
                    .on_shard(shard),
                );
            }
            5 if matches!(s.kind, ProtocolKind::Sc | ProtocolKind::Scr) => {
                // The Byzantine script: value-domain corruption, lowered
                // onto `Protocol::Byz` by the scenario runner.
                let o = SeqNo(1 + rng.below(32));
                s.faults
                    .push(ScenarioFault::corrupt_order_at(process, o).on_shard(shard));
            }
            5 | 6 => {
                // Partition shape: a minority of f processes of one
                // group go simultaneously silent for one shared window.
                let (from, until) = window_ms(rng, end_ms);
                let start = rng.below(n);
                for i in 0..u64::from(s.knobs.f) {
                    let p = ProcessId(((start + i) % n) as u32);
                    s.faults.push(
                        ScenarioFault::mute_until(
                            p,
                            SimTime::from_ms(from),
                            SimTime::from_ms(until),
                        )
                        .on_shard(shard),
                    );
                }
            }
            _ => {
                // Client-load mutation: perturb one client, or add one.
                if s.clients.is_empty() || rng.below(4) == 0 {
                    s.clients
                        .push(ClientLoad::constant((10 + rng.below(200)) as f64, 100));
                } else {
                    let i = rng.below(s.clients.len() as u64) as usize;
                    if rng.below(2) == 0 {
                        s.clients[i].rate_per_sec = (10 + rng.below(400)) as f64;
                    } else {
                        s.clients[i].population = 1 + rng.below(4) as usize;
                    }
                }
            }
        }
    }
    s
}

/// Runs the scenario without the panicking safety net and returns the
/// chosen oracle's violation, if any. Invalid or unrunnable candidates
/// count as non-failing (the shrinker must never widen into them).
fn failure(scenario: &Scenario, oracle: &Oracle) -> Option<String> {
    if scenario.validate().is_err() {
        return None;
    }
    match run_traced_unchecked(scenario) {
        Ok((_, events)) => oracle.check(scenario, &events).err(),
        Err(_) => None,
    }
}

/// Greedy deterministic delta debugging: repeatedly tries the ordered
/// reduction passes (drop faults, drop clients, halve load, shrink the
/// window, tighten fault windows, small seeds) and keeps any step after
/// which `oracle` still fails, until a full sweep makes no progress.
/// Returns the minimal scenario and its violation description.
pub fn shrink(start: &Scenario, oracle: &Oracle) -> (Scenario, String) {
    let mut cur = start.clone();
    let mut err = failure(&cur, oracle).expect("shrink starts from a failing scenario");
    let accept = |cur: &mut Scenario, err: &mut String, cand: Scenario| -> bool {
        match failure(&cand, oracle) {
            Some(e) => {
                *cur = cand;
                *err = e;
                true
            }
            None => false,
        }
    };
    loop {
        let mut progressed = false;

        // Drop whole faults, front to back.
        let mut i = 0;
        while i < cur.faults.len() {
            let mut cand = cur.clone();
            cand.faults.remove(i);
            if accept(&mut cur, &mut err, cand) {
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Drop whole clients.
        let mut i = 0;
        while i < cur.clients.len() {
            let mut cand = cur.clone();
            cand.clients.remove(i);
            if accept(&mut cur, &mut err, cand) {
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Halve each client's rate and population toward 1.
        for i in 0..cur.clients.len() {
            loop {
                let halved = (cur.clients[i].rate_per_sec / 2.0).floor().max(1.0);
                if halved >= cur.clients[i].rate_per_sec {
                    break;
                }
                let mut cand = cur.clone();
                cand.clients[i].rate_per_sec = halved;
                if accept(&mut cur, &mut err, cand) {
                    progressed = true;
                } else {
                    break;
                }
            }
            loop {
                let halved = (cur.clients[i].population / 2).max(1);
                if halved >= cur.clients[i].population {
                    break;
                }
                let mut cand = cur.clone();
                cand.clients[i].population = halved;
                if accept(&mut cur, &mut err, cand) {
                    progressed = true;
                } else {
                    break;
                }
            }
        }

        // Shrink the measurement window: run toward warmup + 1, drain
        // toward 0.
        loop {
            let span = cur.window.run_s - cur.window.warmup_s;
            if span <= 1 {
                break;
            }
            let mut cand = cur.clone();
            cand.window.run_s = cur.window.warmup_s + (span / 2).max(1);
            if accept(&mut cur, &mut err, cand) {
                progressed = true;
            } else {
                break;
            }
        }
        loop {
            if cur.window.drain_s == 0 {
                break;
            }
            let mut cand = cur.clone();
            cand.window.drain_s = cur.window.drain_s / 2;
            if accept(&mut cur, &mut err, cand) {
                progressed = true;
            } else {
                break;
            }
        }

        // Tighten each fault window: pull `until` toward `from`, and
        // crash instants toward 0 (ms-aligned, like the grammar).
        for i in 0..cur.faults.len() {
            loop {
                use sofb_harness::scenario::ScenarioFaultKind as K;
                let kind = cur.faults[i].kind;
                let cand_kind = match kind {
                    K::Crash { at } if at.as_ns() >= 2_000_000 => {
                        let ms = at.as_ns() / 1_000_000;
                        Some(K::Crash {
                            at: SimTime::from_ms(ms / 2),
                        })
                    }
                    K::Mute {
                        from,
                        until: Some(u),
                    } if shrunken_until(from, u).is_some() => Some(K::Mute {
                        from,
                        until: shrunken_until(from, u),
                    }),
                    K::Delay {
                        from,
                        until: Some(u),
                        extra,
                    } if shrunken_until(from, u).is_some() => Some(K::Delay {
                        from,
                        until: shrunken_until(from, u),
                        extra,
                    }),
                    K::Duplicate {
                        from,
                        until: Some(u),
                    } if shrunken_until(from, u).is_some() => Some(K::Duplicate {
                        from,
                        until: shrunken_until(from, u),
                    }),
                    K::Reorder {
                        from,
                        until: Some(u),
                        jitter,
                    } if shrunken_until(from, u).is_some() => Some(K::Reorder {
                        from,
                        until: shrunken_until(from, u),
                        jitter,
                    }),
                    _ => None,
                };
                let Some(cand_kind) = cand_kind else { break };
                let mut cand = cur.clone();
                cand.faults[i].kind = cand_kind;
                if accept(&mut cur, &mut err, cand) {
                    progressed = true;
                } else {
                    break;
                }
            }
        }

        // Prefer a small, human-auditable world seed. Only strictly
        // smaller seeds are candidates: every pass in this loop must be
        // monotone or the fixpoint sweep would ping-pong forever.
        for seed in 0..4u64 {
            if seed >= cur.knobs.seed {
                break;
            }
            let mut cand = cur.clone();
            cand.knobs.seed = seed;
            if accept(&mut cur, &mut err, cand) {
                progressed = true;
                break;
            }
        }

        if !progressed {
            break;
        }
    }
    (cur, err)
}

/// The midpoint of `[from, until)` in whole milliseconds, if it still
/// leaves a non-empty window.
fn shrunken_until(from: SimTime, until: SimTime) -> Option<SimTime> {
    let from_ms = from.as_ns() / 1_000_000;
    let until_ms = until.as_ns() / 1_000_000;
    let mid = from_ms + (until_ms - from_ms) / 2;
    (mid > from_ms).then(|| SimTime::from_ms(mid))
}

/// Runs one fuzz campaign over mutants of `base`. Each violation is
/// shrunk before it is reported; the summary's scenarios are minimal
/// failing cases ready for [`Violation::repro_text`].
pub fn fuzz(base: &Scenario, opts: &FuzzOptions) -> Result<FuzzSummary, ScenarioError> {
    let oracles = if opts.oracles.is_empty() {
        Oracle::defaults()
    } else {
        opts.oracles.clone()
    };
    let mut summary = FuzzSummary::default();
    for run in 0..opts.runs {
        let mut rng = Rng::for_run(opts.seed, run as u64);
        let mutant = mutate(base, &mut rng);
        if mutant.validate().is_err() {
            // The mutator aims to stay in the valid envelope; anything
            // that escapes it is skipped, not fatal.
            continue;
        }
        let (_, events) = run_traced_unchecked(&mutant)?;
        summary.executed += 1;
        for oracle in &oracles {
            if oracle.check(&mutant, &events).is_err() {
                let (scenario, error) = shrink(&mutant, oracle);
                summary.violations.push(Violation {
                    oracle: oracle.clone(),
                    error,
                    scenario,
                    run,
                });
                break;
            }
        }
        if opts.max_violations > 0 && summary.violations.len() >= opts.max_violations {
            break;
        }
    }
    Ok(summary)
}

/// A failed [`replay`]: the pinned spec did not do what its `[meta]`
/// verdict says.
#[derive(Clone, Debug)]
pub enum ReplayError {
    /// The spec pins no `[meta] verdict`, so there is nothing to assert.
    NoVerdict,
    /// The spec names an oracle [`Oracle::parse`] does not know.
    UnknownOracle(String),
    /// The pinned scenario no longer validates or runs.
    Scenario(ScenarioError),
    /// The run's outcome contradicts the pinned verdict.
    Mismatch {
        /// The verdict the spec pins.
        expected: Verdict,
        /// What actually happened (violation list, or "all oracles
        /// passed").
        detail: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::NoVerdict => {
                write!(f, "spec pins no `[meta] verdict`; nothing to assert")
            }
            ReplayError::UnknownOracle(name) => write!(
                f,
                "unknown oracle `{name}` (expected total_order, exactly_once, \
                 no_leakage, or commit_cap:N)"
            ),
            ReplayError::Scenario(e) => write!(f, "{e}"),
            ReplayError::Mismatch { expected, detail } => {
                write!(f, "pinned verdict `{expected}` not reproduced: {detail}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Re-runs a pinned spec's base scenario once and asserts its `[meta]`
/// verdict: a `violation` spec must fail its named oracle again, a
/// `pass` spec must satisfy every checked oracle. Returns the verdict's
/// human-readable confirmation. This is what `sofb fuzz --replay` and
/// the CI gate over `specs/repros/` run.
pub fn replay(spec: &Spec) -> Result<String, ReplayError> {
    let verdict = spec.verdict.ok_or(ReplayError::NoVerdict)?;
    let oracles = match &spec.oracle {
        Some(name) => {
            vec![Oracle::parse(name).ok_or_else(|| ReplayError::UnknownOracle(name.clone()))?]
        }
        None => Oracle::defaults(),
    };
    let (_, events) = run_traced_unchecked(&spec.base).map_err(ReplayError::Scenario)?;
    let failures: Vec<String> = oracles
        .iter()
        .filter_map(|o| {
            o.check(&spec.base, &events)
                .err()
                .map(|e| format!("{o}: {e}"))
        })
        .collect();
    match (verdict, failures.is_empty()) {
        (Verdict::Pass, true) => Ok(format!(
            "verdict `pass` reproduced: {} oracle(s) hold",
            oracles.len()
        )),
        (Verdict::Violation, false) => Ok(format!(
            "verdict `violation` reproduced: {}",
            failures.join("; ")
        )),
        (expected, _) => Err(ReplayError::Mismatch {
            expected,
            detail: if failures.is_empty() {
                "all oracles passed".to_string()
            } else {
                failures.join("; ")
            },
        }),
    }
}
