//! `sofb` — run data-driven scenario specs. See `sofbyz::cli`.

use std::process::exit;

use sofbyz::cli::{self, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::execute(&args) {
        Ok(out) => print!("{out}"),
        Err(e @ CliError::Usage(_)) => {
            eprintln!("error: {e}");
            exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            // --check drift and spec/scenario defects exit 1, like the
            // bench_protocols gate.
            exit(1);
        }
    }
}
