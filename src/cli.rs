//! The `sofb` command line: run data-driven scenario specs.
//!
//! ```sh
//! sofb run specs/saturation.scn --smoke       # run the CI-sized grid, JSON to stdout
//! sofb run specs/fig6.scn --out FIG6.json     # run and write the grid report
//! sofb run specs/fig6.scn --check FIG6.json   # regenerate and diff at 1e-9
//! sofb run specs/fig6.scn --dry-run           # parse + validate + expand only
//! sofb trace specs/fig6.scn --out trace.json  # Perfetto-loadable span trace
//! sofb list specs                             # validate and summarize a spec directory
//! ```
//!
//! The logic lives here (not in `src/bin/sofb.rs`) so the error paths
//! are unit-testable: every failure — unreadable file, spec defect,
//! scenario defect, drifted check — is a typed [`CliError`] whose
//! `Display` names the file and (for spec defects) the line, and the
//! binary exits non-zero with that message. Nothing in this module
//! panics on bad input.
//!
//! This command lives in the umbrella crate because running a spec
//! needs the `ProtocolKind` → `Protocol` dispatch, which only the
//! umbrella sees (the protocol crates sit above `sofb-harness` and
//! `sofb-spec`).

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

use sofb_obs::{chrome, json, summary, write_atomic, TraceConfig};
use sofb_spec::report::{self, ReportMeta};
use sofb_spec::{Spec, SpecError};

use crate::fuzz::{self, FuzzOptions, Oracle};
use crate::runtime;
use crate::scenario::{default_workers, run_grid, run_observed, ScenarioError};

/// A failed `sofb` invocation. The binary prints the `Display` form and
/// exits non-zero (2 for usage errors, 1 for everything else).
#[derive(Clone, Debug)]
pub enum CliError {
    /// The arguments do not form a valid invocation.
    Usage(String),
    /// A file or directory could not be read or written.
    Io {
        /// The path that failed.
        path: String,
        /// The operating system's complaint.
        error: String,
    },
    /// The spec file is malformed (line-numbered).
    Spec {
        /// The spec file.
        path: String,
        /// The line-numbered defect.
        error: SpecError,
    },
    /// The spec parsed but lowers onto an invalid scenario, or the run
    /// itself failed (field-named).
    Scenario {
        /// The spec file.
        path: String,
        /// The field-named defect.
        error: ScenarioError,
    },
    /// `--check` found drift beyond the 1e-9 tolerance.
    CheckFailed {
        /// The committed report compared against.
        path: String,
        /// The drift list.
        detail: String,
    },
    /// `sofb list` found invalid specs.
    InvalidSpecs {
        /// How many files failed.
        count: usize,
        /// One `path: error` line per failure.
        detail: String,
    },
    /// A live (`serve`/`call`) invocation failed: an unservable spec, a
    /// rejected wire command, or a cross-validation mismatch.
    Live {
        /// What was being attempted (spec path or node address).
        context: String,
        /// What went wrong.
        detail: String,
    },
    /// `sofb fuzz` found oracle violations (each one shrunk and written
    /// as a repro spec before this is returned).
    FuzzViolations {
        /// How many shrunk violations were found.
        count: usize,
        /// One `oracle: error (repro path)` line per violation.
        detail: String,
    },
    /// `sofb fuzz --replay` could not reproduce a repro spec's pinned
    /// verdict.
    Replay {
        /// The repro spec.
        path: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Io { path, error } => write!(f, "{path}: {error}"),
            CliError::Spec { path, error } => write!(f, "{path}: {error}"),
            CliError::Scenario { path, error } => write!(f, "{path}: {error}"),
            CliError::CheckFailed { path, detail } => {
                write!(f, "check FAILED against {path}:\n{detail}")
            }
            CliError::InvalidSpecs { count, detail } => {
                write!(f, "{count} invalid spec(s):\n{detail}")
            }
            CliError::Live { context, detail } => write!(f, "{context}: {detail}"),
            CliError::FuzzViolations { count, detail } => {
                write!(f, "fuzz found {count} violation(s):\n{detail}")
            }
            CliError::Replay { path, detail } => write!(f, "{path}: {detail}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Spec { error, .. } => Some(error),
            CliError::Scenario { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// The usage text `sofb` prints on argument errors and `sofb help`.
pub const USAGE: &str = "\
sofb — run data-driven scenario specs (.scn)

USAGE:
    sofb run <spec.scn> [--smoke] [--dry-run] [--workers N] [--world-workers N]
                        [--out FILE] [--check FILE] [--profile]
    sofb trace <spec.scn> [--out FILE] [--format chrome|summary]
                          [--world-workers N]
    sofb serve <spec.scn> [--addr A] [--for-ms N] [--time-scale X]
                          [--trace FILE] [--cross-validate] [--profile]
    sofb call <addr> <op> [args…]
    sofb fuzz <base.scn> [--runs N] [--seed S] [--smoke] [--oracle NAME]
                         [--out-dir DIR]
    sofb fuzz --replay <repro.scn>
    sofb list [dir]          (default dir: specs; recurses, skipping bad/)
    sofb help

run flags:
    --smoke        apply the spec's [smoke] reduction (CI-sized grid)
    --dry-run      parse, validate and expand only; print the point labels
    --workers N    grid worker threads (default: min(cores, 4); results identical)
    --world-workers N
                   per-world shard threads for multi-shard points (results
                   identical; overrides the spec's `world_workers`)
    --out FILE     write the grid-report JSON to FILE instead of stdout
                   (written atomically: temp file + rename)
    --check FILE   regenerate and compare against FILE at 1e-9 (wall excluded)
                   (--out and --check are mutually exclusive)
    --profile      print each point's engine metrics snapshot to stderr

trace — run the spec's base scenario once with structured tracing on
(engine dispatch/deliver/fault records plus derived protocol phase
spans) and emit the trace; the spec's [trace] section, if any, supplies
the node/phase/sample filters:
    --out FILE     write the trace to FILE (atomically) instead of stdout
    --format F     chrome (default): Chrome trace-event JSON, loadable in
                   Perfetto — one process per node, spans nested by
                   causality, instant events for faults;
                   summary: an aligned per-phase count/busy-time table
    --world-workers N
                   shard worker threads; the emitted trace is bit-identical
                   at any count

serve — run the spec's protocol on wall-clock threads, serving the KV
store over TCP (single-shard, fault-free specs only; [client] load is
replaced by real calls):
    --addr A           listen address (default: 127.0.0.1:4780)
    --for-ms N         serve for N ms, then shut down (default: until a
                       `sofb call <addr> shutdown`)
    --time-scale X     stretch protocol timer delays by X (default: 1.0)
    --trace FILE       write the recorded live trace (sofb-live-trace/v1;
                       written atomically)
    --cross-validate   after shutdown, replay the recorded trace through
                       the simulator on all four variants and fail unless
                       every commit order matches the live run
    --profile          sample wall-clock timings (node drive callbacks,
                       wire-command handling, commit application) and
                       print the metrics snapshot at shutdown

call — one request against a serving node; plain-text arguments are
hex-encoded on the wire:
    sofb call 127.0.0.1:4780 put alice 100
    ops: put K V | get K | del K | cas K EXPECT NEW | digest | shutdown

fuzz — mutate the spec's base scenario along every adversarial axis
(crash/mute/delay windows, Byzantine order corruption, partition-shaped
mutes, message duplication/reordering, client load, seed), check the
safety oracles on every run, and shrink + emit any violation as a repro
spec:
    --runs N       mutants to generate and run (default: 64)
    --seed S       campaign seed; one seed reproduces one campaign
                   exactly (default: 1)
    --smoke        CI-sized budget (caps --runs at 8)
    --oracle NAME  check one oracle instead of the default three
                   (total_order, exactly_once, no_leakage, commit_cap:N)
    --out-dir DIR  where shrunk repros are written (default: specs/repros)
    --replay       re-run the repro spec once and assert its pinned
                   [meta] verdict (excludes every other flag)";

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Io {
        path: path.to_string(),
        error: e.to_string(),
    })
}

/// One parsed `sofb run` invocation.
struct RunArgs {
    spec_path: String,
    smoke: bool,
    dry_run: bool,
    workers: usize,
    world_workers: Option<usize>,
    out: Option<String>,
    check: Option<String>,
    profile: bool,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, CliError> {
    let mut run = RunArgs {
        spec_path: String::new(),
        smoke: false,
        dry_run: false,
        workers: default_workers(),
        world_workers: None,
        out: None,
        check: None,
        profile: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => run.smoke = true,
            "--dry-run" => run.dry_run = true,
            "--workers" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage_err("--workers needs a value"))?;
                run.workers = v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    usage_err(format!("--workers: `{v}` is not a positive integer"))
                })?;
            }
            "--world-workers" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage_err("--world-workers needs a value"))?;
                run.world_workers =
                    Some(v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        usage_err(format!("--world-workers: `{v}` is not a positive integer"))
                    })?);
            }
            "--out" => {
                run.out = Some(
                    it.next()
                        .ok_or_else(|| usage_err("--out needs a file path"))?
                        .clone(),
                );
            }
            "--check" => {
                run.check = Some(
                    it.next()
                        .ok_or_else(|| usage_err("--check needs a file path"))?
                        .clone(),
                );
            }
            "--profile" => run.profile = true,
            flag if flag.starts_with('-') => {
                return Err(usage_err(format!("unknown flag `{flag}`")));
            }
            path if run.spec_path.is_empty() => run.spec_path = path.to_string(),
            extra => return Err(usage_err(format!("unexpected extra argument `{extra}`"))),
        }
    }
    if run.spec_path.is_empty() {
        return Err(usage_err("sofb run needs a spec file"));
    }
    if run.dry_run && (run.out.is_some() || run.check.is_some()) {
        return Err(usage_err("--dry-run excludes --out and --check"));
    }
    if run.out.is_some() && run.check.is_some() {
        // One verifies against a committed file, the other replaces it —
        // honoring both would either gate against a file being rewritten
        // or silently drop one flag.
        return Err(usage_err("--out and --check are mutually exclusive"));
    }
    Ok(run)
}

/// Output renderings `sofb trace` knows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TraceFormat {
    /// Chrome trace-event JSON (Perfetto-loadable).
    Chrome,
    /// Aligned per-phase count/busy-time table.
    Summary,
}

/// One parsed `sofb trace` invocation.
struct TraceArgs {
    spec_path: String,
    out: Option<String>,
    format: TraceFormat,
    world_workers: Option<usize>,
}

fn parse_trace_args(args: &[String]) -> Result<TraceArgs, CliError> {
    let mut tr = TraceArgs {
        spec_path: String::new(),
        out: None,
        format: TraceFormat::Chrome,
        world_workers: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                tr.out = Some(
                    it.next()
                        .ok_or_else(|| usage_err("--out needs a file path"))?
                        .clone(),
                );
            }
            "--format" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage_err("--format needs a value"))?;
                tr.format = match v.as_str() {
                    "chrome" => TraceFormat::Chrome,
                    "summary" => TraceFormat::Summary,
                    other => {
                        return Err(usage_err(format!(
                            "--format: `{other}` is not a format (chrome, summary)"
                        )))
                    }
                };
            }
            "--world-workers" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage_err("--world-workers needs a value"))?;
                tr.world_workers =
                    Some(v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        usage_err(format!("--world-workers: `{v}` is not a positive integer"))
                    })?);
            }
            flag if flag.starts_with('-') => {
                return Err(usage_err(format!("unknown flag `{flag}`")));
            }
            path if tr.spec_path.is_empty() => tr.spec_path = path.to_string(),
            extra => return Err(usage_err(format!("unexpected extra argument `{extra}`"))),
        }
    }
    if tr.spec_path.is_empty() {
        return Err(usage_err("sofb trace needs a spec file"));
    }
    Ok(tr)
}

fn trace_cmd(args: TraceArgs) -> Result<String, CliError> {
    let spec = load_spec(&args.spec_path)?;
    let scenario_err = |error: ScenarioError| CliError::Scenario {
        path: args.spec_path.clone(),
        error,
    };
    // Trace the base point of the grid (one run, not a sweep), with the
    // spec's [trace] filters if declared — forced on: asking for a trace
    // overrides `enable = off`.
    let mut scenario = spec.base.clone();
    if let Some(w) = args.world_workers {
        scenario.world_workers = w;
    }
    scenario.validate().map_err(scenario_err)?;
    let cfg = TraceConfig {
        enabled: true,
        ..spec.trace.clone().unwrap_or_default()
    };
    let run = run_observed(&scenario, &cfg).map_err(scenario_err)?;
    let nodes: std::collections::BTreeSet<usize> = run.records.iter().map(|r| r.node).collect();
    let rendered = match args.format {
        TraceFormat::Chrome => {
            let text = chrome::render(&run.records);
            // Self-check before anything is written: the emitter promises
            // Perfetto-loadable JSON, so a parse failure here is a bug
            // worth failing loudly on, not a file to debug in a viewer.
            if let Err(e) = json::parse(&text) {
                return Err(CliError::Live {
                    context: args.spec_path.clone(),
                    detail: format!("emitted chrome trace is not valid JSON: {e}"),
                });
            }
            text
        }
        TraceFormat::Summary => summary::render(&run.records),
    };
    eprintln!(
        "traced {} record(s) on {} node(s) ({} committed request(s))",
        run.records.len(),
        nodes.len(),
        run.report.committed_requests()
    );
    match &args.out {
        Some(out_path) => {
            write_atomic(Path::new(out_path), rendered.as_bytes()).map_err(|e| CliError::Io {
                path: out_path.clone(),
                error: e.to_string(),
            })?;
            Ok(format!(
                "wrote {out_path} ({} records, {} nodes)\n",
                run.records.len(),
                nodes.len()
            ))
        }
        None => Ok(rendered),
    }
}

/// One parsed `sofb serve` invocation.
struct ServeArgs {
    spec_path: String,
    addr: String,
    for_ms: Option<u64>,
    time_scale: f64,
    trace: Option<String>,
    cross_validate: bool,
    profile: bool,
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut serve = ServeArgs {
        spec_path: String::new(),
        addr: "127.0.0.1:4780".to_string(),
        for_ms: None,
        time_scale: 1.0,
        trace: None,
        cross_validate: false,
        profile: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                serve.addr = it
                    .next()
                    .ok_or_else(|| usage_err("--addr needs a value"))?
                    .clone();
            }
            "--for-ms" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage_err("--for-ms needs a value"))?;
                serve.for_ms =
                    Some(v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        usage_err(format!("--for-ms: `{v}` is not a positive integer"))
                    })?);
            }
            "--time-scale" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage_err("--time-scale needs a value"))?;
                serve.time_scale = v
                    .parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite() && *x > 0.0)
                    .ok_or_else(|| {
                        usage_err(format!("--time-scale: `{v}` is not a positive number"))
                    })?;
            }
            "--trace" => {
                serve.trace = Some(
                    it.next()
                        .ok_or_else(|| usage_err("--trace needs a file path"))?
                        .clone(),
                );
            }
            "--cross-validate" => serve.cross_validate = true,
            "--profile" => serve.profile = true,
            flag if flag.starts_with('-') => {
                return Err(usage_err(format!("unknown flag `{flag}`")));
            }
            path if serve.spec_path.is_empty() => serve.spec_path = path.to_string(),
            extra => return Err(usage_err(format!("unexpected extra argument `{extra}`"))),
        }
    }
    if serve.spec_path.is_empty() {
        return Err(usage_err("sofb serve needs a spec file"));
    }
    Ok(serve)
}

fn serve(args: ServeArgs) -> Result<String, CliError> {
    let spec = load_spec(&args.spec_path)?;
    let live_err = |detail: String| CliError::Live {
        context: args.spec_path.clone(),
        detail,
    };
    // A live node is one ordering group with no scripted adversary; the
    // spec's [client] load is replaced by whatever actually calls in.
    if spec.base.shards != 1 {
        return Err(live_err(format!(
            "field `shards`: a live node serves one ordering group, spec declares {}",
            spec.base.shards
        )));
    }
    if !spec.base.faults.is_empty() {
        return Err(live_err(format!(
            "field `faults`: a live node cannot script its {} fault(s); serve fault-free specs",
            spec.base.faults.len()
        )));
    }
    let kind = spec.base.kind;
    let knobs = spec.base.knobs.clone();
    let listener = std::net::TcpListener::bind(&args.addr).map_err(|e| CliError::Io {
        path: args.addr.clone(),
        error: e.to_string(),
    })?;
    let addr = listener.local_addr().map_err(|e| CliError::Io {
        path: args.addr.clone(),
        error: e.to_string(),
    })?;
    if args.profile {
        runtime::enable_profiling();
    }
    let svc = runtime::spawn_live_kv(kind, &knobs, args.time_scale);
    eprintln!(
        "serving {kind} (f={}, scheme {}) on {addr}{}…",
        knobs.f,
        knobs.scheme,
        match args.for_ms {
            Some(ms) => format!(" for {ms} ms"),
            None => " until `shutdown`".to_string(),
        }
    );
    let opts = runtime::ServeOptions {
        lifetime: args.for_ms.map(std::time::Duration::from_millis),
        ..runtime::ServeOptions::default()
    };
    let outcome = runtime::serve(listener, svc, &opts).map_err(|e| CliError::Io {
        path: addr.to_string(),
        error: e.to_string(),
    })?;

    let mut out = String::new();
    writeln!(out, "served {} call(s) on {kind}", outcome.calls).unwrap();
    writeln!(
        out,
        "ops submitted/committed/executed: {}/{}/{}",
        outcome.run.trace.ops.len(),
        outcome.run.trace.commit_order.len(),
        outcome.run.executed_ops
    )
    .unwrap();
    let digest = &outcome.run.state_digest;
    writeln!(
        out,
        "state digest: {}",
        digest
            .iter()
            .take(8)
            .map(|b| format!("{b:02x}"))
            .collect::<String>()
    )
    .unwrap();
    if let Some(trace_path) = &args.trace {
        write_atomic(Path::new(trace_path), outcome.run.trace.render().as_bytes()).map_err(
            |e| CliError::Io {
                path: trace_path.clone(),
                error: e.to_string(),
            },
        )?;
        writeln!(out, "trace written to {trace_path}").unwrap();
    }
    if let Some(snapshot) = runtime::profile_snapshot() {
        writeln!(out, "profile: {}", snapshot.render_json()).unwrap();
    }
    if args.cross_validate {
        let per_variant =
            runtime::cross_validate(&outcome.run.trace).map_err(|e| live_err(e.to_string()))?;
        let summary = per_variant
            .iter()
            .map(|(k, n)| format!("{k}={n}"))
            .collect::<Vec<_>>()
            .join(" ");
        writeln!(
            out,
            "cross-validation passed: live commit order reproduced on {summary}"
        )
        .unwrap();
    }
    Ok(out)
}

fn call(args: &[String]) -> Result<String, CliError> {
    let [addr_text, op, op_args @ ..] = args else {
        return Err(usage_err("sofb call needs an address and an operation"));
    };
    let addr: std::net::SocketAddr = addr_text
        .parse()
        .map_err(|_| usage_err(format!("`{addr_text}` is not an ip:port address")))?;
    let line = runtime::wire_line(op, op_args);
    let reply = runtime::call(addr, &line, std::time::Duration::from_secs(30)).map_err(|e| {
        CliError::Io {
            path: addr_text.clone(),
            error: e.to_string(),
        }
    })?;
    let payload = runtime::decode_reply(&reply).map_err(|detail| CliError::Live {
        context: addr_text.clone(),
        detail,
    })?;
    // Replies are application bytes (KV values, "OK", CAS booleans, state
    // digests); print printable ones as text, the rest as hex.
    let text = String::from_utf8_lossy(&payload);
    if !payload.is_empty() && text.chars().all(|c| c.is_ascii_graphic() || c == ' ') {
        Ok(format!("{text}\n"))
    } else {
        Ok(payload
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect::<String>()
            + "\n")
    }
}

/// One parsed `sofb fuzz` invocation.
struct FuzzArgs {
    spec_path: String,
    runs: usize,
    seed: u64,
    smoke: bool,
    oracle: Option<String>,
    out_dir: String,
    replay: bool,
}

fn parse_fuzz_args(args: &[String]) -> Result<FuzzArgs, CliError> {
    let defaults = FuzzOptions::default();
    let mut fz = FuzzArgs {
        spec_path: String::new(),
        runs: defaults.runs,
        seed: defaults.seed,
        smoke: false,
        oracle: None,
        out_dir: "specs/repros".to_string(),
        replay: false,
    };
    let mut budget_flags = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--runs" => {
                let v = it.next().ok_or_else(|| usage_err("--runs needs a value"))?;
                fz.runs =
                    v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        usage_err(format!("--runs: `{v}` is not a positive integer"))
                    })?;
                budget_flags = true;
            }
            "--seed" => {
                let v = it.next().ok_or_else(|| usage_err("--seed needs a value"))?;
                fz.seed = v
                    .parse::<u64>()
                    .map_err(|_| usage_err(format!("--seed: `{v}` is not an integer")))?;
                budget_flags = true;
            }
            "--smoke" => {
                fz.smoke = true;
                budget_flags = true;
            }
            "--oracle" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage_err("--oracle needs a name"))?;
                // Parse now so a typo fails before any simulation runs.
                Oracle::parse(v).ok_or_else(|| {
                    usage_err(format!(
                        "--oracle: `{v}` is not an oracle \
                         (total_order, exactly_once, no_leakage, commit_cap:N)"
                    ))
                })?;
                fz.oracle = Some(v.clone());
                budget_flags = true;
            }
            "--out-dir" => {
                fz.out_dir = it
                    .next()
                    .ok_or_else(|| usage_err("--out-dir needs a directory"))?
                    .clone();
                budget_flags = true;
            }
            "--replay" => fz.replay = true,
            flag if flag.starts_with('-') => {
                return Err(usage_err(format!("unknown flag `{flag}`")));
            }
            path if fz.spec_path.is_empty() => fz.spec_path = path.to_string(),
            extra => return Err(usage_err(format!("unexpected extra argument `{extra}`"))),
        }
    }
    if fz.spec_path.is_empty() {
        return Err(usage_err("sofb fuzz needs a spec file"));
    }
    if fz.replay && budget_flags {
        // A replay re-runs exactly what the repro pins; a budget or
        // oracle flag alongside it would silently mean nothing.
        return Err(usage_err("--replay excludes every other fuzz flag"));
    }
    if fz.smoke {
        fz.runs = fz.runs.min(8);
    }
    Ok(fz)
}

fn fuzz_cmd(args: FuzzArgs) -> Result<String, CliError> {
    let spec = load_spec(&args.spec_path)?;
    if args.replay {
        let confirmation = fuzz::replay(&spec).map_err(|e| CliError::Replay {
            path: args.spec_path.clone(),
            detail: e.to_string(),
        })?;
        return Ok(format!("{}: {confirmation}\n", args.spec_path));
    }

    let scenario_err = |error: ScenarioError| CliError::Scenario {
        path: args.spec_path.clone(),
        error,
    };
    spec.base.validate().map_err(scenario_err)?;
    let opts = FuzzOptions {
        runs: args.runs,
        seed: args.seed,
        // Validated during parsing; re-parse is infallible here.
        oracles: args
            .oracle
            .as_deref()
            .and_then(Oracle::parse)
            .into_iter()
            .collect(),
        max_violations: 1,
    };
    eprintln!(
        "fuzzing {}: {} run(s), seed {}…",
        args.spec_path, opts.runs, opts.seed
    );
    let summary = fuzz::fuzz(&spec.base, &opts).map_err(scenario_err)?;
    if summary.violations.is_empty() {
        return Ok(format!(
            "fuzz: {} run(s) on {}, no violations\n",
            summary.executed, args.spec_path
        ));
    }

    // Every violation is already shrunk; persist each as a committable
    // repro spec before reporting the campaign as failed.
    std::fs::create_dir_all(&args.out_dir).map_err(|e| CliError::Io {
        path: args.out_dir.clone(),
        error: e.to_string(),
    })?;
    let mut detail = Vec::new();
    for violation in &summary.violations {
        let emit_err = |e: sofb_spec::EmitError| CliError::Io {
            path: args.out_dir.clone(),
            error: format!("cannot emit repro: {e}"),
        };
        let text = violation.repro_text().map_err(emit_err)?;
        let name = violation.repro_file_name().map_err(emit_err)?;
        let path = format!("{}/{name}", args.out_dir.trim_end_matches('/'));
        write_atomic(Path::new(&path), text.as_bytes()).map_err(|e| CliError::Io {
            path: path.clone(),
            error: e.to_string(),
        })?;
        detail.push(format!(
            "{}: {} (run {}, repro {path})",
            violation.oracle, violation.error, violation.run
        ));
    }
    Err(CliError::FuzzViolations {
        count: summary.violations.len(),
        detail: detail.join("\n"),
    })
}

/// Executes an invocation (everything after the program name) and
/// returns the text destined for stdout. Progress notes go to stderr
/// directly; all failures are typed, never panics.
pub fn execute(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("run") => run(parse_run_args(&args[1..])?),
        Some("trace") => trace_cmd(parse_trace_args(&args[1..])?),
        Some("serve") => serve(parse_serve_args(&args[1..])?),
        Some("call") => call(&args[1..]),
        Some("fuzz") => fuzz_cmd(parse_fuzz_args(&args[1..])?),
        Some("list") => match args.len() {
            1 => list("specs"),
            2 => list(&args[1]),
            _ => Err(usage_err("sofb list takes at most one directory")),
        },
        Some("help") | Some("--help") | Some("-h") | None => Ok(format!("{USAGE}\n")),
        Some(other) => Err(usage_err(format!("unknown command `{other}`"))),
    }
}

fn load_spec(path: &str) -> Result<Spec, CliError> {
    let text = read_file(path)?;
    Spec::parse(&text).map_err(|error| CliError::Spec {
        path: path.to_string(),
        error,
    })
}

fn run(args: RunArgs) -> Result<String, CliError> {
    let mut spec = load_spec(&args.spec_path)?;
    if let Some(w) = args.world_workers {
        // Patch the base point before grid expansion so the override
        // reaches every cell (an explicit `world_workers` axis still
        // patches over it, exactly like any other base field).
        spec.base.world_workers = w;
    }
    let scenario_err = |error: ScenarioError| CliError::Scenario {
        path: args.spec_path.clone(),
        error,
    };
    let spec_err = |error: SpecError| CliError::Spec {
        path: args.spec_path.clone(),
        error,
    };
    let grid = spec.grid(args.smoke).map_err(spec_err)?;
    // Expansion validates every point (typed, field-named) before any
    // simulation starts — this is the whole --dry-run path, and the
    // fail-fast for real runs.
    let cells = grid.cells().map_err(scenario_err)?;

    if args.dry_run {
        let mut out = String::new();
        writeln!(out, "spec: {}", args.spec_path).unwrap();
        if let Some(title) = &spec.title {
            writeln!(out, "title: {title}").unwrap();
        }
        let axes: Vec<&str> = spec.axis_names().collect();
        if !axes.is_empty() {
            writeln!(out, "axes: {}", axes.join(" × ")).unwrap();
        }
        writeln!(
            out,
            "points: {}{}",
            cells.len(),
            if args.smoke { " (smoke)" } else { "" }
        )
        .unwrap();
        for cell in &cells {
            let labels = cell
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            writeln!(out, "  {:>4}  {}  seed={}", cell.index, labels, cell.seed).unwrap();
        }
        return Ok(out);
    }

    eprintln!(
        "running {} point(s) on {} worker(s)…",
        cells.len(),
        args.workers
    );
    let report = run_grid(&grid, args.workers).map_err(scenario_err)?;
    if args.profile {
        // Per-point engine metrics, in the same deterministic snapshot
        // format `sofb serve --profile` emits — to stderr so the report
        // JSON on stdout stays machine-consumable.
        eprintln!("profile: per-point engine metrics");
        for p in &report.points {
            eprintln!("  point {:>3}: {}", p.index, p.report.metrics.render_json());
        }
    }
    let rendered = report::render(
        &report,
        ReportMeta {
            spec: &args.spec_path,
            title: spec.title.as_deref(),
            smoke: args.smoke,
        },
    );

    if let Some(committed_path) = &args.check {
        let committed = read_file(committed_path)?;
        return match report::check(&committed, &rendered) {
            Ok(()) => Ok(format!(
                "check passed: regenerated metrics match {committed_path}\n"
            )),
            Err(detail) => Err(CliError::CheckFailed {
                path: committed_path.clone(),
                detail,
            }),
        };
    }
    if let Some(out_path) = &args.out {
        write_atomic(Path::new(out_path), rendered.as_bytes()).map_err(|e| CliError::Io {
            path: out_path.clone(),
            error: e.to_string(),
        })?;
        return Ok(format!("wrote {out_path}\n"));
    }
    Ok(rendered)
}

/// Collects every `.scn` file under `dir`, recursing into
/// subdirectories — except ones named `bad`, which hold the
/// deliberately-malformed fixtures the rejection tests own.
fn collect_specs(dir: &Path, paths: &mut Vec<String>) -> Result<(), CliError> {
    let entries = std::fs::read_dir(dir).map_err(|e| CliError::Io {
        path: dir.display().to_string(),
        error: e.to_string(),
    })?;
    for entry in entries.filter_map(|e| e.ok()) {
        let p = entry.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "bad") {
                continue;
            }
            collect_specs(&p, paths)?;
        } else if p.extension().is_some_and(|x| x == "scn") && p.is_file() {
            if let Some(s) = p.to_str() {
                paths.push(s.to_string());
            }
        }
    }
    Ok(())
}

/// Validates every `.scn` file under `dir` — recursively, so committed
/// fuzz repros in `specs/repros/` are covered too (full expansion of
/// the full-size and, where declared, smoke grids) — and summarizes
/// them. Any invalid spec makes the whole listing an error — this is
/// the CI spec gate.
fn list(dir: &str) -> Result<String, CliError> {
    let mut paths: Vec<String> = Vec::new();
    collect_specs(Path::new(dir), &mut paths)?;
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::Io {
            path: dir.to_string(),
            error: "no .scn files found".to_string(),
        });
    }

    let mut out = String::new();
    let mut failures = Vec::new();
    writeln!(out, "{:<40} {:>7} {:>7}  title", "spec", "points", "smoke").unwrap();
    for path in &paths {
        let validated = load_spec(path).and_then(|spec| {
            let full = spec
                .grid(false)
                .map_err(|error| CliError::Spec {
                    path: path.clone(),
                    error,
                })?
                .cells()
                .map_err(|error| CliError::Scenario {
                    path: path.clone(),
                    error,
                })?
                .len();
            let smoke = if spec.has_smoke() {
                let n = spec
                    .grid(true)
                    .map_err(|error| CliError::Spec {
                        path: path.clone(),
                        error,
                    })?
                    .cells()
                    .map_err(|error| CliError::Scenario {
                        path: path.clone(),
                        error,
                    })?
                    .len();
                n.to_string()
            } else {
                "-".to_string()
            };
            Ok((spec, full, smoke))
        });
        match validated {
            Ok((spec, full, smoke)) => {
                // Paths are shown relative to the listed directory so
                // nested specs (`repros/…`) stay distinguishable.
                let name = Path::new(path)
                    .strip_prefix(dir)
                    .ok()
                    .and_then(|n| n.to_str())
                    .unwrap_or(path);
                writeln!(
                    out,
                    "{:<40} {:>7} {:>7}  {}",
                    name,
                    full,
                    smoke,
                    spec.title.as_deref().unwrap_or("")
                )
                .unwrap();
            }
            Err(e) => failures.push(e.to_string()),
        }
    }
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(CliError::InvalidSpecs {
            count: failures.len(),
            detail: failures.join("\n"),
        })
    }
}
