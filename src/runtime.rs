//! The wall-clock runtime: the same sans-io protocol actors, on real
//! threads, real timers and an in-process channel transport — serving
//! the `sofb-app` KV as a long-lived node (`sofb serve`).
//!
//! The paper's implementation ran each order process on its own machine;
//! the discrete-event simulator replaces that for the figure
//! regeneration, but the protocols themselves are plain [`Actor`] state
//! machines and run equally well on real time. Three layers live here:
//!
//! * [`ThreadedHost`] — one OS thread per node, crossbeam channels as
//!   the network, a per-node timer map driven by `Instant`. Protocol
//!   timer delays are stretched by `time_scale`; whatever the crypto
//!   provider actually computes takes however long it takes on the host.
//! * [`LiveService`] — a `ServiceCore` (the same execution bookkeeping
//!   as the simulated [`ReplicatedService`](crate::service::ReplicatedService))
//!   fed by a `ThreadedHost` instead of a simulated world, behind the
//!   kind-erased [`LiveKv`] API ([`spawn_live_kv`] dispatches all four
//!   variants). Every submitted operation and every commit is recorded
//!   in a [`LiveTrace`].
//! * [`serve`]/[`call`] — a newline-delimited TCP request/reply protocol
//!   over `std::net`, the transport behind `sofb serve <spec>` and
//!   `sofb call <addr> <op>`.
//!
//! **Cross-validation invariant:** a live run's trace replayed through
//! the simulator ([`cross_validate`]) must commit the same requests in
//! the same order on *all four* variants. Requests enter each world in
//! recorded submission order (channel FIFO live, timestamped injection
//! simulated), every variant's coordinator drains its backlog in arrival
//! order, and the total-order safety property pins the rest — so one
//! wall-clock run checks the live path against four simulated protocol
//! stacks at once.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sofb_app::kv::{KvOp, KvStore};
use sofb_app::state_machine::StateMachine;
use sofb_bft::sim::BftProtocol;
use sofb_core::sim::ScProtocol;
use sofb_crypto::scheme::SchemeId;
use sofb_ct::sim::CtProtocol;
use sofb_harness::{analysis, Knobs, Protocol, ProtocolEvent, ProtocolKind, WorldBuilder};
use sofb_proto::ids::{ClientId, SeqNo};
use sofb_proto::request::{Request, RequestId};
use sofb_sim::engine::{Actor, Ctx, TimedEvent, TimerRequest, WireSize};
use sofb_sim::time::{SimDuration, SimTime};

use sofb_obs::{MetricsRegistry, MetricsSnapshot};

use crate::service::{ServiceCore, GATEWAY_NODE};

// ---------------------------------------------------------------------------
// Wall-clock profiler
// ---------------------------------------------------------------------------

/// The process-wide live profiler (`sofb serve --profile`): one shared
/// [`MetricsRegistry`] the runtime's hot paths sample wall-clock
/// durations into when enabled. Off by default, and the hooks then cost
/// a single relaxed atomic load — the serve path is unchanged unless the
/// operator asked to be measured.
static PROFILER: OnceLock<MetricsRegistry> = OnceLock::new();
static PROFILING: AtomicBool = AtomicBool::new(false);

/// Turns the live profiler on for the rest of the process: node drive
/// callbacks (`live.node_drive_ns`), wire-command handling
/// (`live.handle_line_ns`), commit application (`live.commit_apply_ns`)
/// and connection accepts (`live.accepts`) start sampling into the
/// shared registry.
pub fn enable_profiling() {
    PROFILING.store(true, Ordering::Relaxed);
}

/// Scrapes the live profiler — the same [`MetricsSnapshot`] format the
/// simulator's engine metrics ride in — or `None` when profiling was
/// never enabled.
pub fn profile_snapshot() -> Option<MetricsSnapshot> {
    if PROFILING.load(Ordering::Relaxed) {
        Some(PROFILER.get_or_init(MetricsRegistry::new).snapshot())
    } else {
        None
    }
}

/// Times `f` into the nanosecond histogram `name` when profiling is on;
/// otherwise runs it untouched.
fn prof_time<T>(name: &str, f: impl FnOnce() -> T) -> T {
    if !PROFILING.load(Ordering::Relaxed) {
        return f();
    }
    let t0 = Instant::now();
    let out = f();
    PROFILER
        .get_or_init(MetricsRegistry::new)
        .histogram(name)
        .observe(t0.elapsed().as_nanos() as u64);
    out
}

/// Bumps the counter `name` by `n` when profiling is on.
fn prof_count(name: &str, n: u64) {
    if PROFILING.load(Ordering::Relaxed) {
        PROFILER
            .get_or_init(MetricsRegistry::new)
            .counter(name)
            .add(n);
    }
}

/// A boxed actor that may cross threads (what [`ThreadedHost::spawn`]
/// takes; [`ThreadedHost::spawn_with`] lifts the `Send` requirement by
/// building in-thread).
pub type SendActor<M, E> = Box<dyn Actor<Msg = M, Event = E> + Send>;

/// Messages on a node's channel.
enum Input<M> {
    Net { from: usize, msg: M },
    Shutdown,
}

/// A running threaded deployment.
pub struct ThreadedHost<M, E> {
    senders: Vec<Sender<Input<M>>>,
    handles: Vec<thread::JoinHandle<()>>,
    events: std::sync::Arc<Mutex<Vec<TimedEvent<E>>>>,
}

impl<M, E> ThreadedHost<M, E>
where
    M: Clone + WireSize + Send + std::fmt::Debug + 'static,
    E: Send + std::fmt::Debug + 'static,
{
    /// Spawns one thread per actor. `time_scale` stretches protocol timer
    /// delays (1.0 = as configured; 0.1 = ten times faster wall-clock).
    pub fn spawn(actors: Vec<SendActor<M, E>>, time_scale: f64) -> Self {
        let n = actors.len();
        let stash: Vec<Mutex<Option<SendActor<M, E>>>> =
            actors.into_iter().map(|a| Mutex::new(Some(a))).collect();
        Self::spawn_with(
            n,
            move |idx| {
                let boxed = stash[idx].lock().take().expect("each node is built once");
                boxed as Box<dyn Actor<Msg = M, Event = E>>
            },
            time_scale,
        )
    }

    /// Spawns `n` node threads, each constructing its own actor
    /// in-thread via `factory(idx)`. This is how a [`Protocol`]'s
    /// [`build_nodes`](Protocol::build_nodes) boxes — which are not
    /// `Send` — get onto threads: `build_nodes` is a pure function of
    /// the knobs, so every thread rebuilds the full (deterministic)
    /// node set and keeps only its own.
    pub fn spawn_with<F>(n: usize, factory: F, time_scale: f64) -> Self
    where
        F: Fn(usize) -> Box<dyn Actor<Msg = M, Event = E>> + Send + Sync + 'static,
    {
        let epoch = Instant::now();
        let events = std::sync::Arc::new(Mutex::new(Vec::new()));
        let factory = std::sync::Arc::new(factory);
        let mut senders: Vec<Sender<Input<M>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Input<M>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded(65_536);
            senders.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(n);
        for (idx, rx) in receivers.into_iter().enumerate() {
            let peers = senders.clone();
            let sink = events.clone();
            let build = factory.clone();
            let handle = thread::spawn(move || {
                let mut actor = build(idx);
                let mut rng = StdRng::seed_from_u64(idx as u64 ^ 0x7ead);
                let mut timers: HashMap<u64, Instant> = HashMap::new();
                let now = || SimTime(epoch.elapsed().as_nanos() as u64);

                // Helper: run a callback and dispatch its outputs.
                macro_rules! drive {
                    ($call:expr) => {{
                        let mut local_events: Vec<TimedEvent<E>> = Vec::new();
                        let mut ctx = Ctx::standalone(now(), idx, &mut rng, &mut local_events);
                        prof_time("live.node_drive_ns", || $call(&mut ctx));
                        let outputs = ctx.into_outputs();
                        if !local_events.is_empty() {
                            sink.lock().extend(local_events);
                        }
                        for (to, msg) in outputs.sends {
                            if let Some(tx) = peers.get(to) {
                                let _ = tx.try_send(Input::Net { from: idx, msg });
                            }
                        }
                        for req in outputs.timers {
                            match req {
                                TimerRequest::Set(delay, tag) => {
                                    let scaled = Duration::from_nanos(
                                        (delay.as_ns() as f64 * time_scale) as u64,
                                    );
                                    timers.insert(tag, Instant::now() + scaled);
                                }
                                TimerRequest::Cancel(tag) => {
                                    timers.remove(&tag);
                                }
                            }
                        }
                    }};
                }

                drive!(|ctx: &mut Ctx<'_, M, E>| actor.on_start(ctx));
                loop {
                    // Fire due timers.
                    let due: Vec<u64> = timers
                        .iter()
                        .filter(|(_, at)| **at <= Instant::now())
                        .map(|(tag, _)| *tag)
                        .collect();
                    for tag in due {
                        timers.remove(&tag);
                        drive!(|ctx: &mut Ctx<'_, M, E>| actor.on_timer(tag, ctx));
                    }
                    // Wait for the next message or timer deadline.
                    let next_deadline = timers.values().min().copied();
                    let timeout = next_deadline
                        .map(|at| at.saturating_duration_since(Instant::now()))
                        .unwrap_or(Duration::from_millis(20))
                        .min(Duration::from_millis(20));
                    match rx.recv_timeout(timeout) {
                        Ok(Input::Net { from, msg }) => {
                            drive!(|ctx: &mut Ctx<'_, M, E>| actor.on_message(from, msg, ctx));
                        }
                        Ok(Input::Shutdown) => break,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                    }
                }
            });
            handles.push(handle);
        }
        ThreadedHost {
            senders,
            handles,
            events,
        }
    }

    /// Injects a message to `to` as if from node `from`.
    pub fn inject(&self, to: usize, from: usize, msg: M) {
        if let Some(tx) = self.senders.get(to) {
            let _ = tx.try_send(Input::Net { from, msg });
        }
    }

    /// Drains the observations collected so far (the live analog of the
    /// simulator world's `drain_events`).
    pub fn drain_events(&self) -> Vec<TimedEvent<E>> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Stops all node threads and returns any observations collected
    /// since the last [`ThreadedHost::drain_events`].
    pub fn shutdown(self) -> Vec<TimedEvent<E>> {
        for tx in &self.senders {
            let _ = tx.send(Input::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
        std::sync::Arc::try_unwrap(self.events)
            .map(|m| m.into_inner())
            .unwrap_or_default()
    }
}

// ---------------------------------------------------------------------------
// Live replicated service
// ---------------------------------------------------------------------------

/// One operation of a live run, as recorded in a [`LiveTrace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Issuing client id (the service gateway is client 0).
    pub client: u32,
    /// Client sequence number.
    pub seq: u64,
    /// Wall-clock submission offset from the run's start, ns.
    pub at_ns: u64,
    /// The operation payload.
    pub payload: Vec<u8>,
}

/// The recorded delivery trace of a live run: enough to replay the exact
/// workload (ops, payloads, submission offsets) through the simulator
/// and to compare the commit order the live cluster produced.
#[derive(Clone, Debug, PartialEq)]
pub struct LiveTrace {
    /// Protocol variant the live node ran.
    pub kind: ProtocolKind,
    /// Resilience parameter.
    pub f: u32,
    /// Crypto scheme.
    pub scheme: SchemeId,
    /// Batching interval, ns.
    pub interval_ns: u64,
    /// Deterministic seed (drives the dealer in both worlds).
    pub seed: u64,
    /// Submitted operations, in submission order.
    pub ops: Vec<TraceOp>,
    /// Request ids in the order the live cluster committed them
    /// (batches flattened in sequence-number order).
    pub commit_order: Vec<RequestId>,
}

/// What a live node hands back at shutdown.
pub struct LiveRun {
    /// The recorded trace (feed to [`cross_validate`]).
    pub trace: LiveTrace,
    /// Reply payload per request id.
    pub replies: HashMap<RequestId, Vec<u8>>,
    /// Operations executed (exactly once each) by the replica executors.
    pub executed_ops: u64,
    /// Final executed-state digest (audited identical across replicas).
    pub state_digest: Vec<u8>,
}

/// The first-commit order of a (live or simulated) event stream:
/// per-sequence-number member lists, flattened in sequence order.
fn commit_order(events: &[TimedEvent<ProtocolEvent>]) -> Vec<RequestId> {
    let mut per_seq: std::collections::BTreeMap<SeqNo, std::sync::Arc<[RequestId]>> =
        std::collections::BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::Committed { o, request_ids, .. } = &ev.event {
            per_seq.entry(*o).or_insert_with(|| request_ids.clone());
        }
    }
    per_seq.into_values().flat_map(|ids| ids.to_vec()).collect()
}

/// A wall-clock replicated service: protocol `P` on a [`ThreadedHost`],
/// executing state machine `S` through the same `ServiceCore` as the
/// simulated façade, recording a [`LiveTrace`] as it goes.
pub struct LiveService<P: Protocol, S: StateMachine> {
    host: ThreadedHost<P::Msg, ProtocolEvent>,
    core: ServiceCore<S>,
    n: usize,
    kind: ProtocolKind,
    knobs: Knobs,
    epoch: Instant,
    ops: Vec<TraceOp>,
    events: Vec<TimedEvent<ProtocolEvent>>,
}

impl<P, S> LiveService<P, S>
where
    P: Protocol,
    P::Msg: Send,
    S: StateMachine,
{
    /// Spawns the live cluster: `P::node_count(&knobs)` node threads
    /// (each building its own actor from the deterministic `build_nodes`
    /// set) and `2f+1` service-replica executors.
    pub fn spawn(
        kind: ProtocolKind,
        mut knobs: Knobs,
        make_machine: impl Fn() -> S,
        time_scale: f64,
    ) -> Self {
        if let Some(v) = kind.variant() {
            knobs.variant = v;
        }
        let n = P::node_count(&knobs);
        let replicas = 2 * knobs.f as usize + 1;
        let build_knobs = knobs.clone();
        let host = ThreadedHost::spawn_with(
            n,
            move |idx| P::build_nodes(&build_knobs, &[]).swap_remove(idx),
            time_scale,
        );
        LiveService {
            host,
            core: ServiceCore::new(replicas, make_machine),
            n,
            kind,
            knobs,
            epoch: Instant::now(),
            ops: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Submits an operation: records it in the trace and multicasts it
    /// to every node, like a client that "directs its requests to all
    /// nodes" (§3).
    pub fn submit(&mut self, op: impl Into<Bytes>) -> RequestId {
        let op = op.into();
        let req = self.core.next_request(op.clone());
        self.ops.push(TraceOp {
            client: req.id.client.0,
            seq: req.id.seq,
            at_ns: self.epoch.elapsed().as_nanos() as u64,
            payload: op.to_vec(),
        });
        for p in 0..self.n {
            self.host
                .inject(p, GATEWAY_NODE, P::request_msg(req.clone()));
        }
        req.id
    }

    /// Drains commit events from the node threads, executes newly
    /// gap-free batches, audits the replicas, and returns all replies
    /// produced so far.
    ///
    /// # Panics
    ///
    /// Panics if the live cluster violated total order or the replica
    /// executors diverged — the invariants the simulator pins, audited
    /// on the live path.
    pub fn poll_replies(&mut self) -> &HashMap<RequestId, Vec<u8>> {
        let new = self.host.drain_events();
        self.core.stage(&new);
        self.events.extend(new);
        analysis::check_total_order(&self.events).expect("live ordering safety");
        prof_time("live.commit_apply_ns", || self.core.execute_ready());
        self.core.replies()
    }

    /// Polls until `id` has a reply or `timeout` elapses.
    pub fn wait_reply(&mut self, id: RequestId, timeout: Duration) -> Option<Vec<u8>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(r) = self.poll_replies().get(&id) {
                return Some(r.clone());
            }
            if Instant::now() >= deadline {
                return None;
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    /// The executed-state digest (identical across replicas).
    pub fn state_digest(&self) -> Vec<u8> {
        self.core.state_digest()
    }

    /// Operations executed so far.
    pub fn executed_ops(&self) -> u64 {
        self.core.executed_ops()
    }

    /// Stops the cluster and returns the run: waits (bounded) for every
    /// submitted op to commit, joins the node threads, and assembles the
    /// trace.
    pub fn shutdown(mut self) -> LiveRun {
        // Flush: give in-flight batches a chance to commit so the trace
        // closes with ops and commits matching.
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.poll_replies().len() < self.ops.len() && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        let tail = self.host.shutdown();
        self.core.stage(&tail);
        self.events.extend(tail);
        analysis::check_total_order(&self.events).expect("live ordering safety");
        self.core.execute_ready();
        let trace = LiveTrace {
            kind: self.kind,
            f: self.knobs.f,
            scheme: self.knobs.scheme,
            interval_ns: self.knobs.batching_interval.as_ns(),
            seed: self.knobs.seed,
            ops: self.ops,
            commit_order: commit_order(&self.events),
        };
        LiveRun {
            trace,
            replies: self.core.replies().clone(),
            executed_ops: self.core.executed_ops(),
            state_digest: self.core.state_digest(),
        }
    }
}

/// The kind-erased live-service API the server loop and the CLI drive:
/// a [`LiveService`] over any protocol variant, serving the KV store.
pub trait LiveKv: Send {
    /// Submits an encoded [`KvOp`] for ordering.
    fn submit(&mut self, op: Vec<u8>) -> RequestId;
    /// Polls until `id` has a reply or `timeout` elapses.
    fn wait_reply(&mut self, id: RequestId, timeout: Duration) -> Option<Vec<u8>>;
    /// The executed-state digest.
    fn state_digest(&self) -> Vec<u8>;
    /// Operations executed so far.
    fn executed_ops(&self) -> u64;
    /// Stops the cluster and returns the recorded run.
    fn shutdown(self: Box<Self>) -> LiveRun;
}

impl<P> LiveKv for LiveService<P, KvStore>
where
    P: Protocol,
    P::Msg: Send,
{
    fn submit(&mut self, op: Vec<u8>) -> RequestId {
        LiveService::submit(self, op)
    }
    fn wait_reply(&mut self, id: RequestId, timeout: Duration) -> Option<Vec<u8>> {
        LiveService::wait_reply(self, id, timeout)
    }
    fn state_digest(&self) -> Vec<u8> {
        LiveService::state_digest(self)
    }
    fn executed_ops(&self) -> u64 {
        LiveService::executed_ops(self)
    }
    fn shutdown(self: Box<Self>) -> LiveRun {
        LiveService::shutdown(*self)
    }
}

/// Spawns a live KV node of the given protocol kind — the
/// [`ProtocolKind`] → [`Protocol`] dispatch for the wall-clock path
/// (the umbrella crate is the only layer that sees all four).
pub fn spawn_live_kv(kind: ProtocolKind, knobs: &Knobs, time_scale: f64) -> Box<dyn LiveKv> {
    let knobs = knobs.clone();
    match kind {
        ProtocolKind::Sc | ProtocolKind::Scr => Box::new(
            LiveService::<ScProtocol, KvStore>::spawn(kind, knobs, KvStore::new, time_scale),
        ),
        ProtocolKind::Bft => Box::new(LiveService::<BftProtocol, KvStore>::spawn(
            kind,
            knobs,
            KvStore::new,
            time_scale,
        )),
        ProtocolKind::Ct => Box::new(LiveService::<CtProtocol, KvStore>::spawn(
            kind,
            knobs,
            KvStore::new,
            time_scale,
        )),
    }
}

// ---------------------------------------------------------------------------
// Trace serialization + cross-validation
// ---------------------------------------------------------------------------

/// A failure in the live layer: a malformed trace, or a replay whose
/// commit order diverged from the live run.
#[derive(Clone, Debug)]
pub enum LiveError {
    /// The trace text is malformed (line-numbered).
    Trace(String),
    /// A simulated replay committed a different order than the live run.
    Mismatch {
        /// The variant whose replay diverged.
        kind: ProtocolKind,
        /// What differed, first divergence included.
        detail: String,
    },
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Trace(msg) => write!(f, "live trace: {msg}"),
            LiveError::Mismatch { kind, detail } => {
                write!(f, "cross-validation FAILED on {kind}: {detail}")
            }
        }
    }
}

impl std::error::Error for LiveError {}

const TRACE_HEADER: &str = "sofb-live-trace/v1";

fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

fn scheme_token(scheme: SchemeId) -> String {
    scheme.to_string()
}

fn parse_scheme_token(token: &str) -> Option<SchemeId> {
    [
        SchemeId::Md5Rsa1024,
        SchemeId::Md5Rsa1536,
        SchemeId::Sha1Dsa1024,
        SchemeId::Sha256Rsa2048,
        SchemeId::NoCrypto,
    ]
    .into_iter()
    .find(|s| s.to_string() == token)
}

fn parse_kind_token(token: &str) -> Option<ProtocolKind> {
    ProtocolKind::ALL
        .into_iter()
        .find(|k| k.to_string() == token)
}

impl LiveTrace {
    /// Renders the trace as committable text (`sofb-live-trace/v1`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        writeln!(out, "{TRACE_HEADER}").unwrap();
        writeln!(out, "kind {}", self.kind).unwrap();
        writeln!(out, "f {}", self.f).unwrap();
        writeln!(out, "scheme {}", scheme_token(self.scheme)).unwrap();
        writeln!(out, "interval_ns {}", self.interval_ns).unwrap();
        writeln!(out, "seed {}", self.seed).unwrap();
        for op in &self.ops {
            writeln!(
                out,
                "op {} {} {} {}",
                op.client,
                op.seq,
                op.at_ns,
                hex_encode(&op.payload)
            )
            .unwrap();
        }
        for id in &self.commit_order {
            writeln!(out, "commit {} {}", id.client.0, id.seq).unwrap();
        }
        out
    }

    /// Parses a rendered trace.
    pub fn parse(text: &str) -> Result<LiveTrace, LiveError> {
        let err = |line: usize, msg: &str| LiveError::Trace(format!("line {line}: {msg}"));
        let mut lines = text.lines().enumerate();
        let Some((_, TRACE_HEADER)) = lines.next() else {
            return Err(err(1, "missing sofb-live-trace/v1 header"));
        };
        let mut kind = None;
        let mut f = None;
        let mut scheme = None;
        let mut interval_ns = None;
        let mut seed = None;
        let mut ops = Vec::new();
        let mut commit_order = Vec::new();
        for (i, line) in lines {
            let n = i + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut tok = line.split_ascii_whitespace();
            match tok.next() {
                Some("kind") => {
                    let t = tok.next().ok_or_else(|| err(n, "kind needs a value"))?;
                    kind = Some(parse_kind_token(t).ok_or_else(|| err(n, "unknown kind"))?);
                }
                Some("f") => {
                    let t = tok.next().ok_or_else(|| err(n, "f needs a value"))?;
                    f = Some(t.parse().map_err(|_| err(n, "f is not an integer"))?);
                }
                Some("scheme") => {
                    let t = tok.next().ok_or_else(|| err(n, "scheme needs a value"))?;
                    scheme = Some(parse_scheme_token(t).ok_or_else(|| err(n, "unknown scheme"))?);
                }
                Some("interval_ns") => {
                    let t = tok
                        .next()
                        .ok_or_else(|| err(n, "interval_ns needs a value"))?;
                    interval_ns = Some(
                        t.parse()
                            .map_err(|_| err(n, "interval_ns is not an integer"))?,
                    );
                }
                Some("seed") => {
                    let t = tok.next().ok_or_else(|| err(n, "seed needs a value"))?;
                    seed = Some(t.parse().map_err(|_| err(n, "seed is not an integer"))?);
                }
                Some("op") => {
                    let mut next = || tok.next().ok_or_else(|| err(n, "op needs 4 fields"));
                    let client = next()?.parse().map_err(|_| err(n, "bad op client"))?;
                    let seq = next()?.parse().map_err(|_| err(n, "bad op seq"))?;
                    let at_ns = next()?.parse().map_err(|_| err(n, "bad op at_ns"))?;
                    let payload =
                        hex_decode(next()?).ok_or_else(|| err(n, "bad op payload hex"))?;
                    ops.push(TraceOp {
                        client,
                        seq,
                        at_ns,
                        payload,
                    });
                }
                Some("commit") => {
                    let mut next = || tok.next().ok_or_else(|| err(n, "commit needs 2 fields"));
                    let client: u32 = next()?.parse().map_err(|_| err(n, "bad commit client"))?;
                    let seq = next()?.parse().map_err(|_| err(n, "bad commit seq"))?;
                    commit_order.push(RequestId {
                        client: ClientId(client),
                        seq,
                    });
                }
                Some(other) => return Err(err(n, &format!("unknown directive `{other}`"))),
                None => {}
            }
        }
        Ok(LiveTrace {
            kind: kind.ok_or_else(|| err(0, "missing kind"))?,
            f: f.ok_or_else(|| err(0, "missing f"))?,
            scheme: scheme.ok_or_else(|| err(0, "missing scheme"))?,
            interval_ns: interval_ns.ok_or_else(|| err(0, "missing interval_ns"))?,
            seed: seed.ok_or_else(|| err(0, "missing seed"))?,
            ops,
            commit_order,
        })
    }
}

/// Replays the trace's workload through a simulated deployment of `P`
/// and returns the commit order the simulator produced.
fn replay_commit_order<P: Protocol>(trace: &LiveTrace, kind: ProtocolKind) -> Vec<RequestId> {
    let mut knobs = Knobs {
        f: trace.f,
        scheme: trace.scheme,
        seed: trace.seed,
        batching_interval: SimDuration(trace.interval_ns.max(1)),
        // The replay is a fault-free world; wall-clock suspicion windows
        // don't map onto it.
        time_checks: false,
        ..Knobs::default()
    };
    if let Some(v) = kind.variant() {
        knobs.variant = v;
    }
    let mut d = WorldBuilder::<P>::new(trace.f).knobs(knobs).build();
    d.start();
    // Inject each op at its recorded wall-clock offset (clamped
    // nondecreasing): the simulated world sees the same workload on the
    // same timeline the live cluster did.
    let mut at = SimTime(0);
    for op in &trace.ops {
        at = SimTime(op.at_ns.max(at.0));
        d.run_until(at);
        let req = Request::new(ClientId(op.client), op.seq, op.payload.clone());
        for p in 0..d.n_processes {
            d.world.inject(p, GATEWAY_NODE, P::request_msg(req.clone()));
        }
    }
    // Drain: generous horizon so every batch commits.
    d.run_until(at + SimDuration::from_secs(30));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).expect("replay ordering safety");
    commit_order(&events)
}

/// Replays `trace` through the simulator on **all four** protocol
/// variants and checks each commit order against the live one. Returns
/// the per-variant committed-request counts on success.
///
/// This is the system's cross-validation invariant: the wall-clock
/// executor and the discrete-event simulator are two hosts of the same
/// sans-io state machines, so the same workload must yield the same
/// total order on every variant.
pub fn cross_validate(trace: &LiveTrace) -> Result<Vec<(ProtocolKind, usize)>, LiveError> {
    let mut out = Vec::new();
    for kind in ProtocolKind::ALL {
        let sim_order = match kind {
            ProtocolKind::Sc | ProtocolKind::Scr => replay_commit_order::<ScProtocol>(trace, kind),
            ProtocolKind::Bft => replay_commit_order::<BftProtocol>(trace, kind),
            ProtocolKind::Ct => replay_commit_order::<CtProtocol>(trace, kind),
        };
        if sim_order != trace.commit_order {
            let first = sim_order
                .iter()
                .zip(&trace.commit_order)
                .position(|(a, b)| a != b);
            let detail = match first {
                Some(i) => format!(
                    "first divergence at commit {i}: sim {:?} vs live {:?} \
                     (sim {} commits, live {})",
                    sim_order[i],
                    trace.commit_order[i],
                    sim_order.len(),
                    trace.commit_order.len()
                ),
                None => format!(
                    "lengths differ: sim committed {} requests, live {}",
                    sim_order.len(),
                    trace.commit_order.len()
                ),
            };
            return Err(LiveError::Mismatch { kind, detail });
        }
        out.push((kind, sim_order.len()));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// TCP request/reply transport
// ---------------------------------------------------------------------------

/// Server loop options.
pub struct ServeOptions {
    /// Exit the accept loop after this long (CI smoke runs); `None`
    /// serves until a `shutdown` command arrives.
    pub lifetime: Option<Duration>,
    /// How long one request may wait for its commit before the client
    /// gets `err timeout`.
    pub reply_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            lifetime: None,
            reply_timeout: Duration::from_secs(10),
        }
    }
}

/// Outcome of a [`serve`] loop.
pub struct ServeOutcome {
    /// The recorded live run.
    pub run: LiveRun,
    /// Calls handled (including reads and the shutdown command).
    pub calls: u64,
}

/// Parses one wire command into an encoded [`KvOp`]; `Ok(None)` is a
/// local read (digest). Wire arguments are hex-encoded bytes.
fn parse_wire_op(parts: &[&str]) -> Result<Option<KvOp>, String> {
    let arg = |i: usize| -> Result<Vec<u8>, String> {
        parts
            .get(i)
            .and_then(|s| hex_decode(s))
            .ok_or_else(|| format!("argument {i} missing or not hex"))
    };
    match parts.first().copied() {
        Some("put") if parts.len() == 3 => Ok(Some(KvOp::Put {
            key: arg(1)?,
            value: arg(2)?,
        })),
        Some("get") if parts.len() == 2 => Ok(Some(KvOp::Get { key: arg(1)? })),
        Some("del") if parts.len() == 2 => Ok(Some(KvOp::Del { key: arg(1)? })),
        Some("cas") if parts.len() == 4 => Ok(Some(KvOp::Cas {
            key: arg(1)?,
            expect: arg(2)?,
            new: arg(3)?,
        })),
        Some("digest") if parts.len() == 1 => Ok(None),
        Some(op) => Err(format!(
            "bad command `{op}`/{} args (expect put K V | get K | del K | cas K E N | digest | shutdown)",
            parts.len().saturating_sub(1)
        )),
        None => Err("empty command".to_string()),
    }
}

/// Handles one request line; the bool says "shut the server down".
fn handle_line(line: &str, svc: &mut Box<dyn LiveKv>, opts: &ServeOptions) -> (String, bool) {
    use sofb_proto::codec::Encode as _;
    let parts: Vec<&str> = line.split_ascii_whitespace().collect();
    if parts.first().copied() == Some("shutdown") {
        return ("ok bye".to_string(), true);
    }
    match parse_wire_op(&parts) {
        Ok(Some(op)) => {
            let id = svc.submit(op.to_bytes());
            match svc.wait_reply(id, opts.reply_timeout) {
                Some(reply) => (format!("ok {}", hex_encode(&reply)), false),
                None => ("err timeout waiting for commit".to_string(), false),
            }
        }
        Ok(None) => (format!("ok {}", hex_encode(&svc.state_digest())), false),
        Err(msg) => (format!("err {msg}"), false),
    }
}

/// Serves `svc` on `listener` with a newline-delimited request/reply
/// protocol until a `shutdown` command or the configured lifetime, then
/// shuts the cluster down and returns the recorded run.
///
/// One connection is served at a time (the service gateway is a single
/// totally-ordered client); the listener stays nonblocking so the
/// lifetime deadline is honored even while idle.
pub fn serve(
    listener: TcpListener,
    mut svc: Box<dyn LiveKv>,
    opts: &ServeOptions,
) -> std::io::Result<ServeOutcome> {
    listener.set_nonblocking(true)?;
    let deadline = opts.lifetime.map(|d| Instant::now() + d);
    let expired = |deadline: Option<Instant>| deadline.is_some_and(|at| Instant::now() >= at);
    let mut calls = 0u64;
    let mut stop = false;
    while !stop && !expired(deadline) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                prof_count("live.accepts", 1);
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(Duration::from_millis(200)))?;
                let mut reader = BufReader::new(stream.try_clone()?);
                let mut stream = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) => break, // connection closed
                        Ok(_) => {
                            let (resp, shutdown) = prof_time("live.handle_line_ns", || {
                                handle_line(line.trim(), &mut svc, opts)
                            });
                            calls += 1;
                            let _ = writeln!(stream, "{resp}");
                            let _ = stream.flush();
                            if shutdown {
                                stop = true;
                                break;
                            }
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            if expired(deadline) {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ServeOutcome {
        run: svc.shutdown(),
        calls,
    })
}

/// Sends one request line to a live node and returns the raw reply line
/// (`ok …` / `err …`).
pub fn call(addr: SocketAddr, line: &str, timeout: Duration) -> std::io::Result<String> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{line}")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    Ok(reply.trim_end().to_string())
}

/// Hex-encodes CLI arguments into a wire line (`put hello world` →
/// `put 68656c6c6f 776f726c64`); `digest` and `shutdown` pass through.
pub fn wire_line(op: &str, args: &[String]) -> String {
    let mut line = op.to_string();
    for a in args {
        line.push(' ');
        line.push_str(&hex_encode(a.as_bytes()));
    }
    line
}

/// Decodes a wire reply: `Ok(payload)` for `ok <hex>`, `Err(msg)` for
/// `err <msg>` or anything malformed.
pub fn decode_reply(reply: &str) -> Result<Vec<u8>, String> {
    if let Some(rest) = reply.strip_prefix("ok") {
        let rest = rest.trim();
        if rest == "bye" || rest.is_empty() {
            return Ok(Vec::new());
        }
        return hex_decode(rest).ok_or_else(|| format!("malformed ok payload `{rest}`"));
    }
    if let Some(msg) = reply.strip_prefix("err ") {
        return Err(msg.to_string());
    }
    Err(format!("malformed reply `{reply}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_core::analysis as sc_analysis;
    use sofb_core::config::ScConfig;
    use sofb_core::messages::{FailSignalPayload, ScMsg};
    use sofb_core::process::ScProcess;
    use sofb_crypto::provider::Dealer;
    use sofb_proto::ids::{ProcessId, Rank};
    use sofb_proto::signed::Signed;
    use sofb_proto::topology::{Candidate, Topology, Variant};

    #[test]
    fn sc_orders_requests_on_real_threads() {
        // f = 1 SC deployment on threads with real (small-key) RSA.
        let topology = Topology::new(1, Variant::Sc);
        let n = topology.n();
        let mut rng = StdRng::seed_from_u64(77);
        let mut providers = Dealer::real(&mut rng, SchemeId::Md5Rsa1024, n, Some(512));
        // Pre-sign fail-signals for the pair.
        let mut presigned: Vec<Option<Signed<FailSignalPayload>>> = vec![None; n];
        for c in 1..=topology.candidate_count() {
            if let Candidate::Pair { replica, shadow } = topology.candidate(Rank(c)) {
                let payload = FailSignalPayload { pair: Rank(c) };
                presigned[replica.0 as usize] = Some(Signed::sign(
                    payload.clone(),
                    &mut providers[shadow.0 as usize],
                ));
                presigned[shadow.0 as usize] =
                    Some(Signed::sign(payload, &mut providers[replica.0 as usize]));
            }
        }
        let mut actors: Vec<
            Box<dyn Actor<Msg = ScMsg, Event = sofb_core::events::ScEvent> + Send>,
        > = Vec::new();
        for (i, provider) in providers.into_iter().enumerate() {
            let mut cfg = ScConfig::new(topology, ProcessId(i as u32), SchemeId::Md5Rsa1024);
            cfg.batching_interval = SimDuration::from_ms(30);
            cfg.time_checks = false;
            actors.push(Box::new(ScProcess::new(
                cfg,
                Box::new(provider),
                presigned[i].take(),
            )));
        }
        let host = ThreadedHost::spawn(actors, 1.0);

        // Send 20 requests to every process.
        for seq in 1..=20u64 {
            let req = Request::new(ClientId(0), seq, vec![0x11u8; 64]);
            for p in 0..n {
                host.inject(p, 900, ScMsg::Request(req.clone()));
            }
            thread::sleep(Duration::from_millis(10));
        }
        thread::sleep(Duration::from_millis(800));
        let events = host.shutdown();

        sc_analysis::check_total_order(&events).expect("total order on threads");
        let commits = sc_analysis::order_latencies(&events);
        assert!(
            !commits.is_empty(),
            "threaded deployment must commit batches (got none)"
        );
    }

    #[test]
    fn trace_render_parse_roundtrip() {
        let trace = LiveTrace {
            kind: ProtocolKind::Bft,
            f: 1,
            scheme: SchemeId::Md5Rsa1024,
            interval_ns: 25_000_000,
            seed: 42,
            ops: vec![
                TraceOp {
                    client: 0,
                    seq: 1,
                    at_ns: 12_345,
                    payload: vec![0xde, 0xad],
                },
                TraceOp {
                    client: 0,
                    seq: 2,
                    at_ns: 99_999,
                    payload: vec![0x00],
                },
            ],
            commit_order: vec![
                RequestId {
                    client: ClientId(0),
                    seq: 1,
                },
                RequestId {
                    client: ClientId(0),
                    seq: 2,
                },
            ],
        };
        let text = trace.render();
        assert!(text.starts_with(TRACE_HEADER));
        let parsed = LiveTrace::parse(&text).expect("roundtrip");
        assert_eq!(parsed, trace);
        // Malformed inputs are typed errors, not panics.
        assert!(LiveTrace::parse("not a trace").is_err());
        assert!(LiveTrace::parse(&text.replace("kind BFT", "kind XX")).is_err());
    }

    #[test]
    fn wire_helpers_roundtrip() {
        assert_eq!(
            wire_line("put", &["hello".into(), "world".into()]),
            "put 68656c6c6f 776f726c64"
        );
        assert_eq!(decode_reply("ok 4f4b"), Ok(b"OK".to_vec()));
        assert_eq!(decode_reply("ok bye"), Ok(Vec::new()));
        assert!(decode_reply("err timeout waiting for commit").is_err());
        assert!(decode_reply("garbage").is_err());
    }
}
