//! A threaded, wall-clock host for the sans-io protocol actors.
//!
//! The paper's implementation ran each order process on its own machine;
//! the discrete-event simulator replaces that for the figure regeneration,
//! but the protocols themselves are plain [`Actor`] state machines and run
//! equally well on real threads with real time. This module provides that
//! host: one OS thread per node, crossbeam channels as the network, and a
//! per-node timer wheel — useful as a sanity check that nothing in the
//! protocol logic depends on simulation artifacts, and as a template for a
//! socket-based deployment.
//!
//! Virtual crypto costs are *not* re-imposed here: whatever the provider
//! actually computes (e.g. genuine RSA signatures) takes however long it
//! takes on the host CPU.

use std::collections::HashMap;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use sofb_sim::engine::{Actor, Ctx, TimedEvent, TimerRequest, WireSize};
use sofb_sim::time::SimTime;

/// Messages on a node's channel.
enum Input<M> {
    Net { from: usize, msg: M },
    Shutdown,
}

/// A running threaded deployment.
pub struct ThreadedHost<M, E> {
    senders: Vec<Sender<Input<M>>>,
    handles: Vec<thread::JoinHandle<()>>,
    events: std::sync::Arc<Mutex<Vec<TimedEvent<E>>>>,
}

impl<M, E> ThreadedHost<M, E>
where
    M: Clone + WireSize + Send + std::fmt::Debug + 'static,
    E: Send + std::fmt::Debug + 'static,
{
    /// Spawns one thread per actor. `time_scale` stretches protocol timer
    /// delays (1.0 = as configured; 0.1 = ten times faster wall-clock).
    pub fn spawn(actors: Vec<Box<dyn Actor<Msg = M, Event = E> + Send>>, time_scale: f64) -> Self {
        let n = actors.len();
        let epoch = Instant::now();
        let events = std::sync::Arc::new(Mutex::new(Vec::new()));
        let mut senders: Vec<Sender<Input<M>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Input<M>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = bounded(65_536);
            senders.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(n);
        for (idx, (mut actor, rx)) in actors.into_iter().zip(receivers).enumerate() {
            let peers = senders.clone();
            let sink = events.clone();
            let handle = thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(idx as u64 ^ 0x7ead);
                let mut timers: HashMap<u64, Instant> = HashMap::new();
                let now = || SimTime(epoch.elapsed().as_nanos() as u64);

                // Helper: run a callback and dispatch its outputs.
                macro_rules! drive {
                    ($call:expr) => {{
                        let mut local_events: Vec<TimedEvent<E>> = Vec::new();
                        let mut ctx = Ctx::standalone(now(), idx, &mut rng, &mut local_events);
                        $call(&mut ctx);
                        let outputs = ctx.into_outputs();
                        if !local_events.is_empty() {
                            sink.lock().extend(local_events);
                        }
                        for (to, msg) in outputs.sends {
                            if let Some(tx) = peers.get(to) {
                                let _ = tx.try_send(Input::Net { from: idx, msg });
                            }
                        }
                        for req in outputs.timers {
                            match req {
                                TimerRequest::Set(delay, tag) => {
                                    let scaled = Duration::from_nanos(
                                        (delay.as_ns() as f64 * time_scale) as u64,
                                    );
                                    timers.insert(tag, Instant::now() + scaled);
                                }
                                TimerRequest::Cancel(tag) => {
                                    timers.remove(&tag);
                                }
                            }
                        }
                    }};
                }

                drive!(|ctx: &mut Ctx<'_, M, E>| actor.on_start(ctx));
                loop {
                    // Fire due timers.
                    let due: Vec<u64> = timers
                        .iter()
                        .filter(|(_, at)| **at <= Instant::now())
                        .map(|(tag, _)| *tag)
                        .collect();
                    for tag in due {
                        timers.remove(&tag);
                        drive!(|ctx: &mut Ctx<'_, M, E>| actor.on_timer(tag, ctx));
                    }
                    // Wait for the next message or timer deadline.
                    let next_deadline = timers.values().min().copied();
                    let timeout = next_deadline
                        .map(|at| at.saturating_duration_since(Instant::now()))
                        .unwrap_or(Duration::from_millis(20))
                        .min(Duration::from_millis(20));
                    match rx.recv_timeout(timeout) {
                        Ok(Input::Net { from, msg }) => {
                            drive!(|ctx: &mut Ctx<'_, M, E>| actor.on_message(from, msg, ctx));
                        }
                        Ok(Input::Shutdown) => break,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                    }
                }
            });
            handles.push(handle);
        }
        ThreadedHost {
            senders,
            handles,
            events,
        }
    }

    /// Injects a message to `to` as if from node `from`.
    pub fn inject(&self, to: usize, from: usize, msg: M) {
        if let Some(tx) = self.senders.get(to) {
            let _ = tx.try_send(Input::Net { from, msg });
        }
    }

    /// Stops all node threads and returns the collected observations.
    pub fn shutdown(self) -> Vec<TimedEvent<E>> {
        for tx in &self.senders {
            let _ = tx.send(Input::Shutdown);
        }
        for h in self.handles {
            let _ = h.join();
        }
        std::sync::Arc::try_unwrap(self.events)
            .map(|m| m.into_inner())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_core::analysis;
    use sofb_core::config::ScConfig;
    use sofb_core::messages::{FailSignalPayload, ScMsg};
    use sofb_core::process::ScProcess;
    use sofb_crypto::provider::Dealer;
    use sofb_crypto::scheme::SchemeId;
    use sofb_proto::ids::{ClientId, ProcessId, Rank};
    use sofb_proto::request::Request;
    use sofb_proto::signed::Signed;
    use sofb_proto::topology::{Candidate, Topology, Variant};
    use sofb_sim::time::SimDuration;

    #[test]
    fn sc_orders_requests_on_real_threads() {
        // f = 1 SC deployment on threads with real (small-key) RSA.
        let topology = Topology::new(1, Variant::Sc);
        let n = topology.n();
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        let mut providers = Dealer::real(&mut rng, SchemeId::Md5Rsa1024, n, Some(512));
        // Pre-sign fail-signals for the pair.
        let mut presigned: Vec<Option<Signed<FailSignalPayload>>> = vec![None; n];
        for c in 1..=topology.candidate_count() {
            if let Candidate::Pair { replica, shadow } = topology.candidate(Rank(c)) {
                let payload = FailSignalPayload { pair: Rank(c) };
                presigned[replica.0 as usize] = Some(Signed::sign(
                    payload.clone(),
                    &mut providers[shadow.0 as usize],
                ));
                presigned[shadow.0 as usize] =
                    Some(Signed::sign(payload, &mut providers[replica.0 as usize]));
            }
        }
        let mut actors: Vec<
            Box<dyn Actor<Msg = ScMsg, Event = sofb_core::events::ScEvent> + Send>,
        > = Vec::new();
        for (i, provider) in providers.into_iter().enumerate() {
            let mut cfg = ScConfig::new(topology, ProcessId(i as u32), SchemeId::Md5Rsa1024);
            cfg.batching_interval = SimDuration::from_ms(30);
            cfg.time_checks = false;
            actors.push(Box::new(ScProcess::new(
                cfg,
                Box::new(provider),
                presigned[i].take(),
            )));
        }
        let host = ThreadedHost::spawn(actors, 1.0);

        // Send 20 requests to every process.
        for seq in 1..=20u64 {
            let req = Request::new(ClientId(0), seq, vec![0x11u8; 64]);
            for p in 0..n {
                host.inject(p, 900, ScMsg::Request(req.clone()));
            }
            thread::sleep(Duration::from_millis(10));
        }
        thread::sleep(Duration::from_millis(800));
        let events = host.shutdown();

        analysis::check_total_order(&events).expect("total order on threads");
        let commits = analysis::order_latencies(&events);
        assert!(
            !commits.is_empty(),
            "threaded deployment must commit batches (got none)"
        );
    }
}
