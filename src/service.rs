//! A high-level replicated-service façade: submit operations, run the
//! deployment, collect ordered replies.
//!
//! This is what a downstream user of the library actually wants — the §2
//! state-machine-replication story end to end: operations are multicast
//! to every order process, the SC/SCR protocol assigns them a total
//! order, and a deterministic state machine executes each replica's
//! committed, gap-free prefix. Replies come from the replica executors,
//! which this façade also cross-checks for divergence on every poll.

use std::collections::{BTreeMap, HashMap};

use sofb_app::state_machine::{Executor, StateMachine};
use sofb_core::analysis;
use sofb_core::events::ScEvent;
use sofb_core::messages::ScMsg;
use sofb_core::sim::{ScWorld, ScWorldBuilder};
use sofb_proto::ids::{ClientId, SeqNo};
use sofb_proto::request::{Request, RequestId};
use sofb_sim::time::{SimDuration, SimTime};

/// A replicated deterministic service on top of the SC/SCR order
/// protocol.
///
/// # Examples
///
/// ```
/// use sofbyz::app::kv::{KvOp, KvStore};
/// use sofbyz::crypto::scheme::SchemeId;
/// use sofbyz::proto::codec::Encode;
/// use sofbyz::proto::topology::Variant;
/// use sofbyz::core::sim::ScWorldBuilder;
/// use sofbyz::service::ReplicatedService;
/// use sofbyz::sim::time::SimDuration;
///
/// let builder = ScWorldBuilder::new(1, Variant::Sc, SchemeId::Md5Rsa1024);
/// let mut svc = ReplicatedService::new(builder, || KvStore::new());
/// let put = KvOp::Put { key: b"k".to_vec(), value: b"v".to_vec() };
/// let id = svc.submit(put.to_bytes());
/// svc.run_for(SimDuration::from_secs(2));
/// let replies = svc.poll_replies();
/// assert_eq!(replies.get(&id).map(Vec::as_slice), Some(&b"OK"[..]));
/// ```
pub struct ReplicatedService<S> {
    deployment: ScWorld,
    client: ClientId,
    next_seq: u64,
    requests: HashMap<RequestId, Request>,
    executors: Vec<Executor<S>>,
    /// Commits seen but not yet executed (waiting for the gap-free
    /// prefix).
    staged: BTreeMap<SeqNo, std::sync::Arc<[RequestId]>>,
    replies: HashMap<RequestId, Vec<u8>>,
    started: bool,
}

impl<S: StateMachine> ReplicatedService<S> {
    /// Builds the deployment and one executor per service replica
    /// (`2f+1`), each initialized from `make_machine`.
    pub fn new(builder: ScWorldBuilder, make_machine: impl Fn() -> S) -> Self {
        let deployment = builder.build();
        let replicas = deployment.topology.replica_count();
        ReplicatedService {
            deployment,
            client: ClientId(0),
            next_seq: 0,
            requests: HashMap::new(),
            executors: (0..replicas)
                .map(|_| Executor::new(make_machine()))
                .collect(),
            staged: BTreeMap::new(),
            replies: HashMap::new(),
            started: false,
        }
    }

    /// Submits an operation for ordering; returns its request id.
    pub fn submit(&mut self, op: impl Into<bytes::Bytes>) -> RequestId {
        self.ensure_started();
        self.next_seq += 1;
        let req = Request::new(self.client, self.next_seq, op.into());
        let id = req.id;
        self.requests.insert(id, req.clone());
        let n = self.deployment.topology.n();
        for p in 0..n {
            self.deployment
                .world
                .inject(p, 10_000, ScMsg::Request(req.clone()));
        }
        id
    }

    /// Advances virtual time by `d`.
    pub fn run_for(&mut self, d: SimDuration) {
        self.ensure_started();
        let until = self.deployment.world.now() + d;
        self.deployment.run_until(until);
    }

    /// Drains commit events, executes newly gap-free batches on every
    /// replica executor, cross-checks replica state digests, and returns
    /// all replies produced so far (replica 0's).
    ///
    /// # Panics
    ///
    /// Panics if replicas diverge (which the ordering layer's safety
    /// property rules out — this is the service-level audit of it) or if
    /// the ordering layer emitted conflicting commits.
    pub fn poll_replies(&mut self) -> &HashMap<RequestId, Vec<u8>> {
        let events = self.deployment.world.drain_events();
        analysis::check_total_order(&events).expect("ordering layer safety");
        for ev in events {
            if let ScEvent::Committed { o, request_ids, .. } = ev.event {
                self.staged.entry(o).or_insert(request_ids);
            }
        }
        // Execute the gap-free prefix.
        loop {
            let next = self.executors[0].next_seq();
            let Some(ids) = self.staged.remove(&next) else {
                break;
            };
            let ops: Vec<Vec<u8>> = ids
                .iter()
                .filter_map(|id| self.requests.get(id))
                .map(|r| r.payload.to_vec())
                .collect();
            if ops.len() != ids.len() {
                // Should not happen: we are the only client, so we hold
                // every payload. Put the batch back and stop.
                self.staged.insert(next, ids);
                break;
            }
            let mut replica_replies: Option<Vec<Vec<u8>>> = None;
            for ex in &mut self.executors {
                let rs = ex.apply_batch(next, ops.iter()).expect("gap-free prefix");
                replica_replies.get_or_insert(rs);
            }
            // Cross-replica audit.
            let d0 = self.executors[0].machine().state_digest();
            for ex in &self.executors[1..] {
                assert_eq!(ex.machine().state_digest(), d0, "replica state divergence");
            }
            for (id, reply) in ids.iter().zip(replica_replies.unwrap_or_default()) {
                self.replies.insert(*id, reply);
            }
        }
        &self.replies
    }

    /// The executed-state digest (identical across replicas).
    pub fn state_digest(&self) -> Vec<u8> {
        self.executors[0].machine().state_digest()
    }

    /// Operations executed so far.
    pub fn executed_ops(&self) -> u64 {
        self.executors[0].applied_ops()
    }

    /// Access to replica 0's state machine (reads).
    pub fn machine(&self) -> &S {
        self.executors[0].machine()
    }

    /// Current virtual time of the deployment.
    pub fn now(&self) -> SimTime {
        self.deployment.world.now()
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            self.deployment.start();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_app::kv::{KvOp, KvStore};
    use sofb_core::config::Fault;
    use sofb_crypto::scheme::SchemeId;
    use sofb_proto::codec::Encode;
    use sofb_proto::ids::{ProcessId, SeqNo as Sq};
    use sofb_proto::topology::Variant;

    fn put(k: &str, v: &str) -> Vec<u8> {
        KvOp::Put {
            key: k.into(),
            value: v.into(),
        }
        .to_bytes()
    }

    fn get(k: &str) -> Vec<u8> {
        KvOp::Get { key: k.into() }.to_bytes()
    }

    #[test]
    fn submit_run_reply_roundtrip() {
        let builder = ScWorldBuilder::new(1, Variant::Sc, SchemeId::Md5Rsa1024)
            .batching_interval(SimDuration::from_ms(50))
            .seed(5);
        let mut svc = ReplicatedService::new(builder, KvStore::new);
        let a = svc.submit(put("x", "1"));
        svc.run_for(SimDuration::from_ms(400));
        let b = svc.submit(get("x"));
        svc.run_for(SimDuration::from_secs(2));
        let replies = svc.poll_replies().clone();
        assert_eq!(replies.get(&a).map(Vec::as_slice), Some(&b"OK"[..]));
        assert_eq!(replies.get(&b).map(Vec::as_slice), Some(&b"1"[..]));
        assert_eq!(svc.executed_ops(), 2);
        assert_eq!(svc.machine().get(b"x").map(Vec::as_slice), Some(&b"1"[..]));
    }

    #[test]
    fn replicas_converge_across_failover() {
        let builder = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
            .batching_interval(SimDuration::from_ms(50))
            .fault(ProcessId(0), Fault::CorruptOrderAt(Sq(3)))
            .seed(7);
        let mut svc = ReplicatedService::new(builder, KvStore::new);
        for i in 0..40 {
            svc.submit(put(&format!("k{}", i % 5), &format!("v{i}")));
            svc.run_for(SimDuration::from_ms(40));
        }
        svc.run_for(SimDuration::from_secs(4));
        let replies = svc.poll_replies().clone();
        // The fail-over happened and every op still executed exactly once
        // (poll_replies panics on divergence).
        assert_eq!(svc.executed_ops(), 40, "replies: {}", replies.len());
        assert_eq!(replies.len(), 40);
    }

    #[test]
    fn service_over_scr_variant() {
        let builder = ScWorldBuilder::new(1, Variant::Scr, SchemeId::Md5Rsa1024)
            .batching_interval(SimDuration::from_ms(50))
            .seed(9);
        let mut svc = ReplicatedService::new(builder, KvStore::new);
        let id = svc.submit(put("a", "b"));
        svc.run_for(SimDuration::from_secs(2));
        assert!(svc.poll_replies().contains_key(&id));
    }
}
