//! A high-level replicated-service façade: submit operations, run the
//! deployment, collect ordered replies.
//!
//! This is what a downstream user of the library actually wants — the §2
//! state-machine-replication story end to end: operations are multicast
//! to every order process, the chosen total-order protocol assigns them
//! a sequence, and a deterministic state machine executes each replica's
//! committed, gap-free prefix. Replies come from the replica executors,
//! which this façade also cross-checks for divergence on every poll.
//!
//! The façade is generic over [`Protocol`], so the same
//! submit/run/poll API (and the same divergence audit) works on SC,
//! SCR, BFT and CT — pick the variant by choosing `P`:
//!
//! ```no_run
//! # use sofbyz::app::kv::KvStore;
//! # use sofbyz::harness::WorldBuilder;
//! # use sofbyz::bft::sim::BftProtocol;
//! # use sofbyz::service::ReplicatedService;
//! let svc = ReplicatedService::new(WorldBuilder::<BftProtocol>::new(1), KvStore::new);
//! ```
//!
//! The execution bookkeeping itself (`ServiceCore`) is shared with the
//! wall-clock runtime ([`crate::runtime`]): the only difference between
//! the simulated service and a live `sofb serve` node is where the
//! commit events come from.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use sofb_app::state_machine::{Executor, StateMachine};
use sofb_harness::analysis;
use sofb_harness::{Deployment, Protocol, ProtocolEvent, WorldBuilder};
use sofb_proto::ids::{ClientId, SeqNo};
use sofb_proto::request::{Request, RequestId};
use sofb_sim::engine::TimedEvent;
use sofb_sim::time::{SimDuration, SimTime};

/// The node id the façade injects requests as — far outside any real
/// node range, like an external client co-located with the processes.
pub(crate) const GATEWAY_NODE: usize = 10_000;

/// The protocol-independent execution side of a replicated service:
/// request bookkeeping, gap-free prefix execution on a bank of replica
/// [`Executor`]s, the cross-replica divergence audit, and the reply
/// table. Both the simulated [`ReplicatedService`] and the wall-clock
/// [`crate::runtime::LiveService`] drive one of these; only the source
/// of the [`ProtocolEvent::Committed`] stream differs.
pub(crate) struct ServiceCore<S> {
    client: ClientId,
    next_seq: u64,
    requests: HashMap<RequestId, Request>,
    executors: Vec<Executor<S>>,
    /// Commits seen but not yet executed (waiting for the gap-free
    /// prefix).
    staged: BTreeMap<SeqNo, Arc<[RequestId]>>,
    replies: HashMap<RequestId, Vec<u8>>,
}

impl<S: StateMachine> ServiceCore<S> {
    /// `replicas` executors, each initialized from `make_machine`.
    pub(crate) fn new(replicas: usize, make_machine: impl Fn() -> S) -> Self {
        ServiceCore {
            client: ClientId(0),
            next_seq: 0,
            requests: HashMap::new(),
            executors: (0..replicas)
                .map(|_| Executor::new(make_machine()))
                .collect(),
            staged: BTreeMap::new(),
            replies: HashMap::new(),
        }
    }

    /// Mints the next request carrying `op` and tracks its payload for
    /// execution once committed.
    pub(crate) fn next_request(&mut self, op: bytes::Bytes) -> Request {
        self.next_seq += 1;
        let req = Request::new(self.client, self.next_seq, op);
        self.requests.insert(req.id, req.clone());
        req
    }

    /// Stages the member lists of any commit events in `events`.
    pub(crate) fn stage(&mut self, events: &[TimedEvent<ProtocolEvent>]) {
        for ev in events {
            if let ProtocolEvent::Committed { o, request_ids, .. } = &ev.event {
                self.staged.entry(*o).or_insert_with(|| request_ids.clone());
            }
        }
    }

    /// Executes every newly gap-free batch on all replica executors and
    /// cross-checks their state digests.
    ///
    /// # Panics
    ///
    /// Panics if the replicas diverge — the ordering layer's safety
    /// property rules this out; this is the service-level audit of it.
    pub(crate) fn execute_ready(&mut self) {
        loop {
            let next = self.executors[0].next_seq();
            let Some(ids) = self.staged.remove(&next) else {
                break;
            };
            let ops: Vec<Vec<u8>> = ids
                .iter()
                .filter_map(|id| self.requests.get(id))
                .map(|r| r.payload.to_vec())
                .collect();
            if ops.len() != ids.len() {
                // Should not happen: we are the only client, so we hold
                // every payload. Put the batch back and stop.
                self.staged.insert(next, ids);
                break;
            }
            let mut replica_replies: Option<Vec<Vec<u8>>> = None;
            for ex in &mut self.executors {
                let rs = ex.apply_batch(next, ops.iter()).expect("gap-free prefix");
                replica_replies.get_or_insert(rs);
            }
            // Cross-replica audit.
            let d0 = self.executors[0].machine().state_digest();
            for ex in &self.executors[1..] {
                assert_eq!(ex.machine().state_digest(), d0, "replica state divergence");
            }
            for (id, reply) in ids.iter().zip(replica_replies.unwrap_or_default()) {
                self.replies.insert(*id, reply);
            }
        }
    }

    /// All replies produced so far (replica 0's).
    pub(crate) fn replies(&self) -> &HashMap<RequestId, Vec<u8>> {
        &self.replies
    }

    /// The executed-state digest (identical across replicas).
    pub(crate) fn state_digest(&self) -> Vec<u8> {
        self.executors[0].machine().state_digest()
    }

    /// Operations executed so far.
    pub(crate) fn executed_ops(&self) -> u64 {
        self.executors[0].applied_ops()
    }

    /// Replica 0's state machine (reads).
    pub(crate) fn machine(&self) -> &S {
        self.executors[0].machine()
    }
}

/// A replicated deterministic service on top of any total-order
/// protocol variant.
///
/// # Examples
///
/// ```
/// use sofbyz::app::kv::{KvOp, KvStore};
/// use sofbyz::core::sim::ScProtocol;
/// use sofbyz::harness::WorldBuilder;
/// use sofbyz::proto::codec::Encode;
/// use sofbyz::service::ReplicatedService;
/// use sofbyz::sim::time::SimDuration;
///
/// let builder = WorldBuilder::<ScProtocol>::new(1);
/// let mut svc = ReplicatedService::new(builder, KvStore::new);
/// let put = KvOp::Put { key: b"k".to_vec(), value: b"v".to_vec() };
/// let id = svc.submit(put.to_bytes());
/// svc.run_for(SimDuration::from_secs(2));
/// let replies = svc.poll_replies();
/// assert_eq!(replies.get(&id).map(Vec::as_slice), Some(&b"OK"[..]));
/// ```
pub struct ReplicatedService<P: Protocol, S> {
    deployment: Deployment<P>,
    core: ServiceCore<S>,
    started: bool,
}

impl<P: Protocol, S: StateMachine> ReplicatedService<P, S> {
    /// Builds the deployment and one executor per service replica
    /// (`2f+1` — a write quorum's worth, enough that the divergence
    /// audit spans a majority), each initialized from `make_machine`.
    pub fn new(builder: WorldBuilder<P>, make_machine: impl Fn() -> S) -> Self {
        let deployment = builder.build();
        let replicas = 2 * deployment.knobs.f as usize + 1;
        ReplicatedService {
            deployment,
            core: ServiceCore::new(replicas, make_machine),
            started: false,
        }
    }

    /// Submits an operation for ordering; returns its request id.
    pub fn submit(&mut self, op: impl Into<bytes::Bytes>) -> RequestId {
        self.ensure_started();
        let req = self.core.next_request(op.into());
        let id = req.id;
        for p in 0..self.deployment.n_processes {
            self.deployment
                .world
                .inject(p, GATEWAY_NODE, P::request_msg(req.clone()));
        }
        id
    }

    /// Advances virtual time by `d`.
    pub fn run_for(&mut self, d: SimDuration) {
        self.ensure_started();
        let until = self.deployment.world.now() + d;
        self.deployment.run_until(until);
    }

    /// Drains commit events, executes newly gap-free batches on every
    /// replica executor, cross-checks replica state digests, and returns
    /// all replies produced so far (replica 0's).
    ///
    /// # Panics
    ///
    /// Panics if replicas diverge (which the ordering layer's safety
    /// property rules out — this is the service-level audit of it) or if
    /// the ordering layer emitted conflicting commits.
    pub fn poll_replies(&mut self) -> &HashMap<RequestId, Vec<u8>> {
        let events = self.deployment.world.drain_events();
        analysis::check_total_order(&events).expect("ordering layer safety");
        self.core.stage(&events);
        self.core.execute_ready();
        self.core.replies()
    }

    /// The executed-state digest (identical across replicas).
    pub fn state_digest(&self) -> Vec<u8> {
        self.core.state_digest()
    }

    /// Operations executed so far.
    pub fn executed_ops(&self) -> u64 {
        self.core.executed_ops()
    }

    /// Access to replica 0's state machine (reads).
    pub fn machine(&self) -> &S {
        self.core.machine()
    }

    /// Current virtual time of the deployment.
    pub fn now(&self) -> SimTime {
        self.deployment.world.now()
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            self.deployment.start();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_app::kv::{KvOp, KvStore};
    use sofb_bft::sim::BftProtocol;
    use sofb_core::sim::ScProtocol;
    use sofb_ct::sim::CtProtocol;
    use sofb_harness::FaultSpec;
    use sofb_proto::codec::Encode;
    use sofb_proto::ids::{ProcessId, SeqNo as Sq};
    use sofb_proto::topology::Variant;

    fn put(k: &str, v: &str) -> Vec<u8> {
        KvOp::Put {
            key: k.into(),
            value: v.into(),
        }
        .to_bytes()
    }

    fn get(k: &str) -> Vec<u8> {
        KvOp::Get { key: k.into() }.to_bytes()
    }

    #[test]
    fn submit_run_reply_roundtrip() {
        let builder = WorldBuilder::<ScProtocol>::new(1)
            .batching_interval(SimDuration::from_ms(50))
            .seed(5);
        let mut svc = ReplicatedService::new(builder, KvStore::new);
        let a = svc.submit(put("x", "1"));
        svc.run_for(SimDuration::from_ms(400));
        let b = svc.submit(get("x"));
        svc.run_for(SimDuration::from_secs(2));
        let replies = svc.poll_replies().clone();
        assert_eq!(replies.get(&a).map(Vec::as_slice), Some(&b"OK"[..]));
        assert_eq!(replies.get(&b).map(Vec::as_slice), Some(&b"1"[..]));
        assert_eq!(svc.executed_ops(), 2);
        assert_eq!(svc.machine().get(b"x").map(Vec::as_slice), Some(&b"1"[..]));
    }

    #[test]
    fn replicas_converge_across_failover() {
        let fault = ScProtocol::value_fault(Sq(3)).expect("SC scripts value faults");
        let builder = WorldBuilder::<ScProtocol>::new(2)
            .batching_interval(SimDuration::from_ms(50))
            .fault(ProcessId(0), FaultSpec::Byzantine(fault))
            .seed(7);
        let mut svc = ReplicatedService::new(builder, KvStore::new);
        for i in 0..40 {
            svc.submit(put(&format!("k{}", i % 5), &format!("v{i}")));
            svc.run_for(SimDuration::from_ms(40));
        }
        svc.run_for(SimDuration::from_secs(4));
        let replies = svc.poll_replies().clone();
        // The fail-over happened and every op still executed exactly once
        // (poll_replies panics on divergence).
        assert_eq!(svc.executed_ops(), 40, "replies: {}", replies.len());
        assert_eq!(replies.len(), 40);
    }

    #[test]
    fn service_over_scr_variant() {
        let builder = WorldBuilder::<ScProtocol>::new(1)
            .variant(Variant::Scr)
            .batching_interval(SimDuration::from_ms(50))
            .seed(9);
        let mut svc = ReplicatedService::new(builder, KvStore::new);
        let id = svc.submit(put("a", "b"));
        svc.run_for(SimDuration::from_secs(2));
        assert!(svc.poll_replies().contains_key(&id));
    }

    /// The satellite fix this PR pins: the façade is no longer SC-only —
    /// BFT and CT get the same submit/run/poll API and divergence audit.
    #[test]
    fn service_over_bft_variant() {
        let builder = WorldBuilder::<BftProtocol>::new(1)
            .batching_interval(SimDuration::from_ms(50))
            .seed(3);
        let mut svc = ReplicatedService::new(builder, KvStore::new);
        let a = svc.submit(put("x", "42"));
        svc.run_for(SimDuration::from_ms(400));
        let b = svc.submit(get("x"));
        svc.run_for(SimDuration::from_secs(2));
        let replies = svc.poll_replies().clone();
        assert_eq!(replies.get(&a).map(Vec::as_slice), Some(&b"OK"[..]));
        assert_eq!(replies.get(&b).map(Vec::as_slice), Some(&b"42"[..]));
        assert_eq!(svc.executed_ops(), 2);
    }

    #[test]
    fn service_over_ct_variant() {
        let builder = WorldBuilder::<CtProtocol>::new(1)
            .batching_interval(SimDuration::from_ms(50))
            .seed(4);
        let mut svc = ReplicatedService::new(builder, KvStore::new);
        let a = svc.submit(put("y", "7"));
        svc.run_for(SimDuration::from_secs(2));
        let replies = svc.poll_replies().clone();
        assert_eq!(replies.get(&a).map(Vec::as_slice), Some(&b"OK"[..]));
    }
}
