//! # sofbyz — Streets of Byzantium: signal-on-fail total order
//!
//! A reproduction of *"A Performance Study on the Signal-On-Fail Approach
//! to Imposing Total Order in the Streets of Byzantium"* (Inayat &
//! Ezhilchelvan, CS-TR-967 / DSN 2006): Byzantine fault-tolerant
//! total-order protocols built on the **signal-on-crash** process
//! abstraction, with the Castro–Liskov BFT and crash-tolerant baselines
//! the paper measures against, a deterministic discrete-event testbed,
//! from-scratch cryptography, and the complete §5 experiment harness.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`crypto`] — bignum, MD5/SHA-1/SHA-256, HMAC, RSA, DSA, the paper's
//!   scheme matrix and a calibrated virtual-time cost model;
//! * [`sim`] — the deterministic simulator (network delay models,
//!   per-node CPU queueing);
//! * [`proto`] — topology, requests, signed envelopes, canonical codec;
//! * [`harness`] — the protocol-agnostic deployment layer: one generic
//!   [`harness::WorldBuilder`], one client actor, one uniform fault plan
//!   ([`harness::FaultSpec`]: crash/mute/delay on every variant) and the
//!   shared observation vocabulary ([`harness::ProtocolEvent`]);
//! * [`core`] — the SC and SCR protocols (the paper's contribution);
//! * [`bft`] — the BFT baseline;
//! * [`ct`] — the crash-tolerant baseline;
//! * [`app`] — a deterministic replicated KV service and workloads.
//!
//! Each protocol crate implements [`harness::Protocol`] (SC/SCR:
//! `core::sim::ScProtocol`; BFT: `bft::sim::BftProtocol`; CT:
//! `ct::sim::CtProtocol`), so any variant is constructible through the
//! same generic builder and measured by the same analysis pass; the
//! historical `ScWorldBuilder`/`BftWorldBuilder`/`CtWorldBuilder` types
//! remain as thin facades. See `DESIGN.md` for the layer map.
//!
//! # Quickstart
//!
//! ```
//! use sofbyz::core::sim::{ClientSpec, ScWorldBuilder};
//! use sofbyz::core::analysis;
//! use sofbyz::crypto::scheme::SchemeId;
//! use sofbyz::proto::topology::Variant;
//! use sofbyz::sim::time::SimTime;
//!
//! // Seven processes (f = 2): five replicas, two shadows, one client.
//! let mut deployment = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
//!     .client(ClientSpec {
//!         rate_per_sec: 100.0,
//!         request_size: 100,
//!         stop_at: SimTime::from_secs(1),
//!     })
//!     .build();
//! deployment.start();
//! deployment.run_until(SimTime::from_secs(3));
//! let events = deployment.world.drain_events();
//! analysis::check_total_order(&events).expect("total order holds");
//! assert!(!analysis::order_latencies(&events).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runtime;
pub mod service;

pub use sofb_app as app;
pub use sofb_bft as bft;
pub use sofb_core as core;
pub use sofb_crypto as crypto;
pub use sofb_ct as ct;
pub use sofb_harness as harness;
pub use sofb_proto as proto;
pub use sofb_sim as sim;
