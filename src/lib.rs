//! # sofbyz — Streets of Byzantium: signal-on-fail total order
//!
//! A reproduction of *"A Performance Study on the Signal-On-Fail Approach
//! to Imposing Total Order in the Streets of Byzantium"* (Inayat &
//! Ezhilchelvan, CS-TR-967 / DSN 2006): Byzantine fault-tolerant
//! total-order protocols built on the **signal-on-crash** process
//! abstraction, with the Castro–Liskov BFT and crash-tolerant baselines
//! the paper measures against, a deterministic discrete-event testbed,
//! from-scratch cryptography, and the complete §5 experiment harness.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`crypto`] — bignum, MD5/SHA-1/SHA-256, HMAC, RSA, DSA, the paper's
//!   scheme matrix and a calibrated virtual-time cost model;
//! * [`sim`] — the deterministic simulator (network delay models,
//!   per-node CPU queueing);
//! * [`proto`] — topology, requests, signed envelopes, canonical codec;
//! * [`harness`] — the protocol-agnostic deployment layer: one generic
//!   [`harness::WorldBuilder`], one client actor, one uniform fault plan
//!   ([`harness::FaultSpec`]: crash/mute/delay on every variant) and the
//!   shared observation vocabulary ([`harness::ProtocolEvent`]);
//! * [`core`] — the SC and SCR protocols (the paper's contribution);
//! * [`bft`] — the BFT baseline;
//! * [`ct`] — the crash-tolerant baseline;
//! * [`obs`] — dependency-free observability: span/event tracing with a
//!   zero-cost disabled path, a typed metrics registry and deterministic
//!   [`obs::MetricsSnapshot`]s, and the Chrome trace-event exporter
//!   behind `sofb trace` (load the output in Perfetto);
//! * [`app`] — a deterministic replicated KV service and workloads;
//! * [`spec`] — the `.scn` spec language: scenarios and sweep grids as
//!   data files, with line-numbered parse errors and the diffable
//!   grid-report JSON emitter.
//!
//! Each protocol crate implements [`harness::Protocol`] (SC/SCR:
//! `core::sim::ScProtocol`; BFT: `bft::sim::BftProtocol`; CT:
//! `ct::sim::CtProtocol`), so any variant is constructible through the
//! same generic builder and measured by the same analysis pass; the
//! historical `ScWorldBuilder`/`BftWorldBuilder`/`CtWorldBuilder` types
//! remain as thin facades. On top of it all sits the declarative
//! [`scenario`] layer: one [`scenario::Scenario`] spec and one runner for
//! every experiment, flat or sharded, and the [`scenario::SweepGrid`]
//! engine that turns experiment matrices into data. See `DESIGN.md` for
//! the layer map.
//!
//! # Quickstart
//!
//! A deployment is a declarative [`scenario::Scenario`] value: pick the
//! protocol kind, describe the workload and window, and run — the same
//! four lines deploy SC, SCR, BFT or CT, one ordering group or many.
//!
//! ```
//! use sofbyz::harness::ProtocolKind;
//! use sofbyz::scenario::{ClientLoad, RunScenario, Scenario, Window};
//!
//! // Seven order processes (f = 2): five replicas, two shadows — plus
//! // one 100 req/s client, measured over a 1 s window with 2 s of drain.
//! let report = Scenario::new(ProtocolKind::Sc)
//!     .f(2)
//!     .client(ClientLoad::constant(100.0, 100))
//!     .window(Window { warmup_s: 0, run_s: 1, drain_s: 2 })
//!     .run()
//!     .expect("valid scenarios run; malformed ones are typed errors");
//! assert!(report.committed_requests() > 0);
//! assert!(report.global.mean_ms.is_some());
//! ```
//!
//! Sweeps are [`scenario::SweepGrid`]s — axes over any scenario field,
//! executed in parallel with deterministic output (see
//! [`scenario::run_grid`]). The lower-level [`harness::WorldBuilder`]
//! remains available when a test needs to drive the world directly.
//!
//! Grids also ship as data: every sweep in this repo has a `.scn`
//! counterpart under `specs/`, and the `sofb` binary ([`cli`]) runs
//! them without recompiling —
//!
//! ```sh
//! cargo run --release --bin sofb -- run specs/saturation.scn --smoke
//! cargo run --release --bin sofb -- run specs/fig6.scn --dry-run
//! cargo run --release --bin sofb -- trace specs/bench_protocols.scn --out trace.json
//! cargo run --release --bin sofb -- list specs
//! cargo run --release --bin sofb -- fuzz specs/fuzz_base.scn --smoke
//! ```
//!
//! A spec is the grid: `[scenario]` holds the base point, `[axis]`
//! sections the swept dimensions, `[smoke]` the CI-sized reduction.
//! Malformed files are rejected with line-numbered [`spec::SpecError`]s,
//! and the emitted grid-report JSON is deterministic and diffable at
//! 1e-9 (`sofb run … --check`). See `DESIGN.md` ("Spec language") for
//! the grammar.
//!
//! Schedules nobody wrote also get explored: the [`fuzz`] module (and
//! `sofb fuzz`) mutates any base spec along every adversarial axis —
//! crash/mute/delay windows, Byzantine order corruption,
//! partition-shaped mutes, engine-level message duplication and
//! reordering — checks the cross-protocol safety oracles on every
//! mutant, and delta-debugs any violation down to a minimal `.scn`
//! repro under `specs/repros/` that replays its pinned verdict forever.
//! See `DESIGN.md` ("Fuzzer").
//!
//! The same protocols also run on wall-clock time: the [`runtime`]
//! module hosts them on real threads behind the [`service`] façade's
//! execution core, and `sofb serve <spec.scn>` / `sofb call <addr> <op>`
//! expose the replicated KV over TCP. Every live run records a trace
//! that [`runtime::cross_validate`] replays through the simulator on
//! all four variants, asserting the identical commit order — see
//! `DESIGN.md` ("Live runtime").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod fuzz;
pub mod runtime;
pub mod scenario;
pub mod service;

pub use sofb_app as app;
pub use sofb_bft as bft;
pub use sofb_core as core;
pub use sofb_crypto as crypto;
pub use sofb_ct as ct;
pub use sofb_harness as harness;
pub use sofb_obs as obs;
pub use sofb_proto as proto;
pub use sofb_sim as sim;
pub use sofb_spec as spec;
