//! Running declarative scenarios: the [`ProtocolKind`] →
//! [`Protocol`](sofb_harness::Protocol) dispatch.
//!
//! The [`Scenario`] value and the [`SweepGrid`] engine live in the
//! protocol-agnostic harness layer ([`sofb_harness::scenario`], re-exported
//! here), but mapping a scenario's *kind* onto its concrete protocol
//! implementation requires seeing every protocol crate — which only this
//! umbrella crate does. [`run`] is that dispatch; [`RunScenario`] offers
//! it as the method the tentpole API reads as, `scenario.run()?`; and
//! [`run_grid`] threads it into a grid execution.
//!
//! # Examples
//!
//! ```
//! use sofbyz::scenario::{ClientLoad, RunScenario, Scenario, Window};
//! use sofbyz::harness::ProtocolKind;
//!
//! let report = Scenario::new(ProtocolKind::Ct)
//!     .client(ClientLoad::constant(100.0, 100))
//!     .window(Window { warmup_s: 0, run_s: 1, drain_s: 1 })
//!     .run()
//!     .expect("a valid scenario runs");
//! assert!(report.committed_requests() > 0);
//! ```

use sofb_bft::sim::BftProtocol;
use sofb_core::sim::ScProtocol;
use sofb_ct::sim::CtProtocol;
use sofb_harness::ProtocolKind;
use sofb_obs::TraceConfig;
use sofb_sim::engine::TimedEvent;

pub use sofb_harness::scenario::{
    Axis, ClientLoad, GridCell, GridPoint, GridReport, LatencySummary, ObservedRun, Report,
    RouterPolicy, Scenario, ScenarioError, ScenarioFault, ScenarioFaultKind, ScenarioPatch,
    ShardReport, SweepGrid, Window,
};
pub use sofb_harness::ProtocolEvent;

/// Validates and runs `scenario` on the protocol its `kind` names,
/// returning the uniform [`Report`].
pub fn run(scenario: &Scenario) -> Result<Report, ScenarioError> {
    match scenario.kind {
        ProtocolKind::Sc | ProtocolKind::Scr => scenario.run_as::<ScProtocol>(),
        ProtocolKind::Bft => scenario.run_as::<BftProtocol>(),
        ProtocolKind::Ct => scenario.run_as::<CtProtocol>(),
    }
}

/// [`run`], additionally returning the raw observation log (what the
/// golden-equivalence tests compare against the legacy builders bit for
/// bit).
#[allow(clippy::type_complexity)]
pub fn run_traced(
    scenario: &Scenario,
) -> Result<(Report, Vec<TimedEvent<ProtocolEvent>>), ScenarioError> {
    match scenario.kind {
        ProtocolKind::Sc | ProtocolKind::Scr => scenario.run_traced_as::<ScProtocol>(),
        ProtocolKind::Bft => scenario.run_traced_as::<BftProtocol>(),
        ProtocolKind::Ct => scenario.run_traced_as::<CtProtocol>(),
    }
}

/// [`run_traced`] without the panicking per-shard safety check: a
/// total-order violation leaves the trace intact for an outside oracle.
/// The fuzzer's runner — everything else should prefer [`run_traced`],
/// whose abort-on-violation is the default safety net.
#[allow(clippy::type_complexity)]
pub fn run_traced_unchecked(
    scenario: &Scenario,
) -> Result<(Report, Vec<TimedEvent<ProtocolEvent>>), ScenarioError> {
    match scenario.kind {
        ProtocolKind::Sc | ProtocolKind::Scr => scenario.run_traced_unchecked_as::<ScProtocol>(),
        ProtocolKind::Bft => scenario.run_traced_unchecked_as::<BftProtocol>(),
        ProtocolKind::Ct => scenario.run_traced_unchecked_as::<CtProtocol>(),
    }
}

/// [`run_traced`], additionally collecting the structured trace: engine
/// dispatch/deliver/fault records plus the derived protocol phase spans,
/// filtered by `config`. The [`ObservedRun`] also carries the
/// per-shard engine counters and the deterministic metrics snapshot —
/// this is what `sofb trace` renders into Chrome trace JSON.
pub fn run_observed(
    scenario: &Scenario,
    config: &TraceConfig,
) -> Result<ObservedRun, ScenarioError> {
    match scenario.kind {
        ProtocolKind::Sc | ProtocolKind::Scr => scenario.run_observed_as::<ScProtocol>(config),
        ProtocolKind::Bft => scenario.run_observed_as::<BftProtocol>(config),
        ProtocolKind::Ct => scenario.run_observed_as::<CtProtocol>(config),
    }
}

/// [`run_observed`] without the panicking per-shard safety check — the
/// observability counterpart of [`run_traced_unchecked`], for tracing
/// runs whose verdict an outside oracle decides.
pub fn run_observed_unchecked(
    scenario: &Scenario,
    config: &TraceConfig,
) -> Result<ObservedRun, ScenarioError> {
    match scenario.kind {
        ProtocolKind::Sc | ProtocolKind::Scr => {
            scenario.run_observed_unchecked_as::<ScProtocol>(config)
        }
        ProtocolKind::Bft => scenario.run_observed_unchecked_as::<BftProtocol>(config),
        ProtocolKind::Ct => scenario.run_observed_unchecked_as::<CtProtocol>(config),
    }
}

/// Executes a [`SweepGrid`] on up to `workers` threads with the
/// kind-dispatching runner — the one-liner every sweep binary uses.
pub fn run_grid(grid: &SweepGrid, workers: usize) -> Result<GridReport, ScenarioError> {
    grid.run_with(workers, run)
}

/// Worker threads for grid execution when the caller has no opinion:
/// enough to overlap sweep points, capped so laptops and CI machines
/// stay responsive. Grid results are identical at any worker count
/// (pinned by the determinism tests), so this only changes wall time.
/// The one definition behind both the sweep binaries and the `sofb`
/// CLI.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1)
}

/// Method-call sugar for [`run`]: `scenario.run()?`.
pub trait RunScenario {
    /// Validates and runs the scenario on the protocol its kind names.
    fn run(&self) -> Result<Report, ScenarioError>;
}

impl RunScenario for Scenario {
    fn run(&self) -> Result<Report, ScenarioError> {
        run(self)
    }
}
