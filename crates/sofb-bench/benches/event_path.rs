//! Micro-benchmarks for the engine's event hot path: the per-event cost of
//! dispatching through the generation-indexed [`sofb_sim::arena::EventArena`],
//! the hierarchical timer wheel, and the network heap.
//!
//! ## Recorded baselines (single vCPU container, release + thin LTO)
//!
//! Before the arena/pool rework the engine boxed every in-flight event and
//! cloned every payload per hop; the committed `BENCH_protocols.json` grid
//! took **248.7 ms** of wall time end to end. After the rework (arena slots +
//! pooled buffers + zero-alloc steady state) the same bit-identical schedule
//! runs in **119.1 ms** — a 2.09× drop, ~1.6 M events/sec process-wide.
//!
//! Recorded post-rework numbers for these micro-benches on that host (the
//! regression baseline for future changes; the pre-arena engine is not kept
//! compilable behind a feature gate, so its per-step cost is captured by the
//! end-to-end grid figures above rather than re-measured here):
//!
//! | bench                           | µs per 10k steps | ns/step |
//! |---------------------------------|------------------|---------|
//! | event-path/dispatch-10k-steps   | ~614             | ~61     |
//! | event-path/timer-rearm-10k      | ~691             | ~69     |

use criterion::{criterion_group, criterion_main, Criterion};

use sofb_sim::cpu::CpuModel;
use sofb_sim::delay::{DelayModel, LinkModel, NetworkModel};
use sofb_sim::engine::{Actor, Ctx, WireSize, World};
use sofb_sim::time::SimDuration;

/// Fixed-size Copy message: what protocol traffic looks like to the engine
/// once payloads are pooled (`clone` is a refcount bump, dispatch moves the
/// message through an arena slot).
#[derive(Clone, Copy, Debug)]
struct Ping(u64);

impl WireSize for Ping {
    fn wire_len(&self) -> usize {
        64
    }
}

/// Eternal ping-pong with a periodic timer: every steady-state beat touches
/// the network heap, the timer wheel, and the arena recycle path.
struct Echo {
    peer: usize,
    initiate: bool,
}

const TICK: u64 = 7;

impl Actor for Echo {
    type Msg = Ping;
    type Event = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, ()>) {
        if self.initiate {
            ctx.send(self.peer, Ping(0));
        }
        ctx.set_timer(SimDuration::from_us(350), TICK);
    }

    fn on_message(&mut self, _from: usize, msg: Ping, ctx: &mut Ctx<'_, Ping, ()>) {
        ctx.send(self.peer, Ping(msg.0 + 1));
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Ping, ()>) {
        ctx.set_timer(SimDuration::from_us(350), tag);
    }
}

/// Timer-only actor: re-arms a short timer on every firing, so each step is
/// one wheel pop + one wheel push through the arena.
struct Metronome;

impl Actor for Metronome {
    type Msg = Ping;
    type Event = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, ()>) {
        ctx.set_timer(SimDuration::from_us(50), TICK);
    }

    fn on_message(&mut self, _from: usize, _msg: Ping, _ctx: &mut Ctx<'_, Ping, ()>) {}

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Ping, ()>) {
        ctx.set_timer(SimDuration::from_us(50), tag);
    }
}

fn ping_pong_world() -> World<Ping, ()> {
    let net = NetworkModel::uniform(LinkModel {
        delay: DelayModel::Constant(SimDuration::from_us(100)),
        per_byte_ns: 10,
    });
    let mut w: World<Ping, ()> = World::new(net, 0xbe5c);
    w.add_node(
        Box::new(Echo {
            peer: 1,
            initiate: true,
        }),
        CpuModel::zero(),
    );
    w.add_node(
        Box::new(Echo {
            peer: 0,
            initiate: false,
        }),
        CpuModel::zero(),
    );
    w
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("event-path");

    // Mixed network + timer traffic: the shape the protocol grids drive.
    // The world is constructed and warmed once; each iteration is 10k
    // steady-state engine steps (zero allocations, pinned by the
    // sofb-sim/tests/zero_alloc.rs integration test).
    let mut w = ping_pong_world();
    w.start();
    for _ in 0..10_000 {
        assert!(w.step());
    }
    g.bench_function("dispatch-10k-steps", |b| {
        b.iter(|| {
            for _ in 0..10_000 {
                assert!(w.step());
            }
            w.processed()
        })
    });

    // Pure timer-wheel churn: pop, dispatch, re-arm.
    let net = NetworkModel::uniform(LinkModel::lan_100mbit());
    let mut t: World<Ping, ()> = World::new(net, 0x71c7);
    t.add_node(Box::new(Metronome), CpuModel::zero());
    t.start();
    for _ in 0..10_000 {
        assert!(t.step());
    }
    g.bench_function("timer-rearm-10k", |b| {
        b.iter(|| {
            for _ in 0..10_000 {
                assert!(t.step());
            }
            t.processed()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
