//! Criterion end-to-end benches: one short fail-free run per protocol
//! (wall-clock cost of simulating the deployment — also a regression
//! guard on simulator performance).
#![allow(deprecated)] // the point-function facades stay the stable bench surface

use criterion::{criterion_group, criterion_main, Criterion};

use sofb_bench::experiments::{bft_point, ct_point, sc_point, Window};
use sofb_crypto::scheme::SchemeId;
use sofb_proto::topology::Variant;

const FAST: Window = Window {
    warmup_s: 1,
    run_s: 3,
    drain_s: 5,
};

fn bench_protocol_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("end-to-end-3s-virtual");
    g.sample_size(10);
    g.bench_function("sc-f1", |b| {
        b.iter(|| sc_point(1, Variant::Sc, SchemeId::Md5Rsa1024, 100, 5, FAST))
    });
    g.bench_function("scr-f1", |b| {
        b.iter(|| sc_point(1, Variant::Scr, SchemeId::Md5Rsa1024, 100, 5, FAST))
    });
    g.bench_function("bft-f1", |b| {
        b.iter(|| bft_point(1, SchemeId::Md5Rsa1024, 100, 5, FAST))
    });
    g.bench_function("ct-f1", |b| b.iter(|| ct_point(1, 100, 5, FAST)));
    g.finish();
}

criterion_group!(benches, bench_protocol_runs);
criterion_main!(benches);
