//! Criterion end-to-end benches: one short fail-free run per protocol
//! (wall-clock cost of simulating the deployment — also a regression
//! guard on simulator performance), driven through the declarative
//! scenario runner like everything else.

use criterion::{criterion_group, criterion_main, Criterion};

use sofb_bench::experiments::{bench_scenario, ProtocolKind, Window};
use sofb_crypto::scheme::SchemeId;
use sofbyz::scenario::run;

const FAST: Window = Window {
    warmup_s: 1,
    run_s: 3,
    drain_s: 5,
};

fn bench_protocol_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("end-to-end-3s-virtual");
    g.sample_size(10);
    let point = |kind, scheme| {
        let s = bench_scenario(kind, 1, scheme, 100, 5, FAST);
        move || run(&s).expect("benchmark scenario is valid")
    };
    g.bench_function("sc-f1", |b| {
        b.iter(point(ProtocolKind::Sc, SchemeId::Md5Rsa1024))
    });
    g.bench_function("scr-f1", |b| {
        b.iter(point(ProtocolKind::Scr, SchemeId::Md5Rsa1024))
    });
    g.bench_function("bft-f1", |b| {
        b.iter(point(ProtocolKind::Bft, SchemeId::Md5Rsa1024))
    });
    g.bench_function("ct-f1", |b| {
        b.iter(point(ProtocolKind::Ct, SchemeId::NoCrypto))
    });
    g.finish();
}

criterion_group!(benches, bench_protocol_runs);
criterion_main!(benches);
