//! Criterion micro-benchmarks for the canonical codec: the per-message
//! encode/decode cost every simulated (and real) transmission pays.

use criterion::{criterion_group, criterion_main, Criterion};

use sofb_core::messages::{AckPayload, OrderMsg, OrderPayload, ScMsg};
use sofb_crypto::provider::Dealer;
use sofb_crypto::scheme::SchemeId;
use sofb_proto::codec::{Decode, Encode};
use sofb_proto::ids::{ClientId, Rank, SeqNo};
use sofb_proto::request::{BatchRef, Digest, Request, RequestId};
use sofb_proto::signed::{DoublySigned, Signed};
use sofb_sim::engine::WireSize;

fn sample_msgs() -> Vec<ScMsg> {
    let mut provs = Dealer::sim(SchemeId::Md5Rsa1024, 4, 1);
    let payload = OrderPayload {
        c: Rank(1),
        o: SeqNo(9),
        batch: BatchRef {
            requests: (0..10)
                .map(|i| RequestId {
                    client: ClientId(1),
                    seq: i,
                })
                .collect(),
            digest: Digest::new(&[7u8; 16]),
        },
        formed_at_ns: 123,
    };
    let signed = Signed::sign(payload, &mut provs[0]);
    let endorsed = DoublySigned::endorse(signed, &mut provs[1]);
    let order = OrderMsg::Endorsed(endorsed);
    vec![
        ScMsg::Request(Request::new(ClientId(1), 1, vec![0u8; 100])),
        ScMsg::Order(order.clone()),
        ScMsg::Ack(Signed::sign(AckPayload { order }, &mut provs[2])),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let msgs = sample_msgs();
    c.bench_function("encode-3-msgs", |b| {
        b.iter(|| msgs.iter().map(|m| m.to_bytes().len()).sum::<usize>())
    });
    c.bench_function("wire-len-3-msgs", |b| {
        b.iter(|| msgs.iter().map(|m| m.wire_len()).sum::<usize>())
    });
}

fn bench_decode(c: &mut Criterion) {
    let encoded: Vec<Vec<u8>> = sample_msgs().iter().map(|m| m.to_bytes()).collect();
    c.bench_function("decode-3-msgs", |b| {
        b.iter(|| {
            let ok = encoded
                .iter()
                .filter(|bytes| ScMsg::from_bytes(bytes).is_ok())
                .count();
            assert_eq!(ok, encoded.len(), "decode regression");
            ok
        })
    });
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
