//! Criterion micro-benchmarks for the crypto substrate (E5): real
//! sign/verify/digest costs of this crate's from-scratch RSA/DSA/hashes.
//!
//! The paper's performance argument rests on the *ratios* (RSA verify ≪
//! DSA verify; sign times similar); these benches let you check the
//! ratios hold for the real implementations too, not just the calibrated
//! virtual-time table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sofb_crypto::digest::DigestAlg;
use sofb_crypto::dsa::{DsaKeyPair, DsaParams};
use sofb_crypto::rsa::RsaKeyPair;

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("digest-1KiB");
    let data = vec![0xa5u8; 1024];
    for alg in [DigestAlg::Md5, DigestAlg::Sha1, DigestAlg::Sha256] {
        g.bench_with_input(BenchmarkId::from_parameter(alg), &data, |b, d| {
            b.iter(|| alg.digest(d))
        });
    }
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let msg = vec![0x5au8; 256];
    let mut g = c.benchmark_group("rsa");
    for bits in [512usize, 1024] {
        let kp = RsaKeyPair::generate(&mut rng, bits);
        let sig = kp.sign(DigestAlg::Md5, &msg);
        g.bench_function(BenchmarkId::new("sign", bits), |b| {
            b.iter(|| kp.sign(DigestAlg::Md5, &msg))
        });
        g.bench_function(BenchmarkId::new("verify", bits), |b| {
            b.iter(|| kp.public().verify(DigestAlg::Md5, &msg, &sig))
        });
    }
    g.finish();
}

fn bench_dsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let params = DsaParams::generate(&mut rng, 512, 160);
    let kp = DsaKeyPair::generate(&mut rng, params);
    let msg = vec![0x3cu8; 256];
    let sig = kp.sign(&mut rng, DigestAlg::Sha1, &msg);
    let mut g = c.benchmark_group("dsa-512");
    g.bench_function("sign", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| kp.sign(&mut rng, DigestAlg::Sha1, &msg))
    });
    g.bench_function("verify", |b| {
        b.iter(|| kp.public().verify(DigestAlg::Sha1, &msg, &sig))
    });
    g.finish();
}

criterion_group!(benches, bench_hashes, bench_rsa, bench_dsa);
criterion_main!(benches);
