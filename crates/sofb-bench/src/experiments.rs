//! Experiment runners for the §5 study.
//!
//! Every measurement point runs through **one** generic code path,
//! [`protocol_point`], parameterized by [`ProtocolKind`] — SC, SCR, BFT
//! and CT are assembled by the same [`sofb_harness::WorldBuilder`], driven
//! by the same client actor, and measured by the same analysis pass. The
//! figure binaries (`fig4`, `fig5`, `fig6`, `f3_sweep`, `msg_counts`,
//! `bench_protocols`) sweep these points and print the series.

use sofb_bft::sim::BftProtocol;
use sofb_core::analysis;
use sofb_core::config::Fault;
use sofb_core::sim::ScProtocol;
use sofb_crypto::scheme::SchemeId;
use sofb_ct::sim::CtProtocol;
use sofb_harness::{
    Arrival, ClientSpec, FaultSpec, Protocol, ProtocolKind, ShardLoad, ShardedWorldBuilder,
    WorldBuilder,
};
use sofb_proto::ids::{ProcessId, SeqNo};
use sofb_proto::topology::Variant;
use sofb_sim::engine::TimedEvent;
use sofb_sim::metrics::GroupRollup;
use sofb_sim::time::{SimDuration, SimTime};

pub use sofb_harness::ProtocolEvent;

/// Measurement window for one sweep point.
#[derive(Clone, Copy, Debug)]
pub struct Window {
    /// Warm-up excluded from measurement (seconds, virtual).
    pub warmup_s: u64,
    /// Total run length (seconds, virtual).
    pub run_s: u64,
    /// Extra drain time after clients stop, so saturated batches still
    /// commit and report their (large) latencies as the paper's
    /// log-scale figures do.
    pub drain_s: u64,
}

impl Default for Window {
    fn default() -> Self {
        Window {
            warmup_s: 4,
            run_s: 14,
            drain_s: 45,
        }
    }
}

/// One sweep point result.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Mean order latency (ms), if anything committed in the window.
    pub latency_ms: Option<f64>,
    /// Median order latency (ms) over the same censored distribution.
    pub p50_ms: Option<f64>,
    /// 99th-percentile order latency (ms).
    pub p99_ms: Option<f64>,
    /// Committed requests per process per second.
    pub throughput: f64,
    /// Messages transmitted per committed batch (network cost).
    pub msgs_per_batch: f64,
}

/// Offered load: enough 100-byte requests to fill 1 KB batches at the
/// smallest swept interval (the paper's clients keep the coordinator
/// supplied; `batch_size` is the 1 KB cap).
pub fn standard_clients(stop: SimTime) -> Vec<ClientSpec> {
    (0..3)
        .map(|_| ClientSpec {
            rate_per_sec: 100.0,
            request_size: 100,
            stop_at: stop,
        })
        .collect()
}

fn summarize(events: &[TimedEvent<ProtocolEvent>], window: Window, messages_sent: u64) -> Point {
    let warmup = SimTime::from_secs(window.warmup_s);
    let end = SimTime::from_secs(window.run_s);
    let horizon = SimTime::from_secs(window.run_s + window.drain_s);
    let lat = analysis::latency_histogram_censored(events, warmup, end, horizon);
    let latency_ms = (!lat.is_empty()).then(|| lat.mean());
    let (p50_ms, p99_ms) = if lat.is_empty() {
        (None, None)
    } else {
        let ps = lat.percentiles(&[50.0, 99.0]);
        (Some(ps[0]), Some(ps[1]))
    };
    let throughput = analysis::throughput_per_process(events, warmup, end);
    let batches: usize = {
        use std::collections::HashSet;
        let mut seen: HashSet<SeqNo> = HashSet::new();
        for ev in events {
            if let ProtocolEvent::Committed { o, .. } = &ev.event {
                seen.insert(*o);
            }
        }
        seen.len()
    };
    let msgs_per_batch = if batches == 0 {
        0.0
    } else {
        messages_sent as f64 / batches as f64
    };
    Point {
        latency_ms,
        p50_ms,
        p99_ms,
        throughput,
        msgs_per_batch,
    }
}

/// The generic sweep-point runner: builds protocol `P` through the
/// unified harness, applies the standard §5 workload, runs the window and
/// summarizes — identical measurement code for every variant.
fn run_point<P: Protocol>(
    mut builder: WorldBuilder<P>,
    interval_ms: u64,
    seed: u64,
    window: Window,
) -> Point {
    let stop = SimTime::from_secs(window.run_s);
    let horizon = SimTime::from_secs(window.run_s + window.drain_s);
    builder = builder
        .batching_interval(SimDuration::from_ms(interval_ms))
        .seed(seed);
    for c in standard_clients(stop) {
        builder = builder.client(c);
    }
    let mut d = builder.build();
    d.start();
    d.run_until(horizon);
    let events = d.world.drain_events();
    analysis::check_total_order(&events).expect("safety violated in benchmark run");
    summarize(&events, window, d.world.messages_sent())
}

/// One sweep point for any protocol variant — the single entry point the
/// figure binaries dispatch through.
pub fn protocol_point(
    kind: ProtocolKind,
    f: u32,
    scheme: SchemeId,
    interval_ms: u64,
    seed: u64,
    window: Window,
) -> Point {
    match kind {
        ProtocolKind::Sc | ProtocolKind::Scr => {
            let variant = if kind == ProtocolKind::Sc {
                Variant::Sc
            } else {
                Variant::Scr
            };
            let builder = WorldBuilder::<ScProtocol>::new(f)
                .variant(variant)
                .scheme(scheme)
                // Best case (§5): "no failures and also no suspicions of
                // failures" — detection off so saturation cannot
                // masquerade as a failure (assumption 3(a)(i): estimates
                // are accurate).
                .time_checks(false);
            run_point(builder, interval_ms, seed, window)
        }
        ProtocolKind::Bft => {
            let builder = WorldBuilder::<BftProtocol>::new(f).scheme(scheme);
            run_point(builder, interval_ms, seed, window)
        }
        ProtocolKind::Ct => {
            // CT reads no crypto knobs, but forward the scheme anyway so
            // the unified entry point treats every argument uniformly.
            let builder = WorldBuilder::<CtProtocol>::new(f).scheme(scheme);
            run_point(builder, interval_ms, seed, window)
        }
    }
}

/// One shard's measurements inside a sharded sweep point. Network
/// counters are world-global, so the per-shard view reports latency and
/// throughput only; message cost lives in the rollup.
#[derive(Clone, Copy, Debug)]
pub struct ShardPoint {
    /// Mean order latency (ms) within the shard, censored like [`Point`].
    pub latency_ms: Option<f64>,
    /// Median order latency (ms).
    pub p50_ms: Option<f64>,
    /// 99th-percentile order latency (ms).
    pub p99_ms: Option<f64>,
    /// Committed requests per process per second within the shard.
    pub throughput: f64,
    /// Requests first-committed inside the measurement window (each
    /// counted once).
    pub committed_requests: usize,
}

/// One sharded sweep-point result: per-shard measurements plus the
/// cross-shard rollup.
#[derive(Clone, Debug)]
pub struct ShardedPoint {
    /// Per-shard measurements, in shard order.
    pub per_shard: Vec<ShardPoint>,
    /// Globally ordered requests per second across all shards (every
    /// request counted once, at its first commit inside the window) —
    /// the horizontal-scaling metric.
    pub aggregate_throughput: f64,
    /// Global mean order latency (ms) over the exact merged per-shard
    /// distributions.
    pub global_mean_ms: Option<f64>,
    /// Global median (exact merged distribution, not an average of
    /// per-shard medians).
    pub global_p50_ms: Option<f64>,
    /// Global 99th percentile (exact merged distribution).
    pub global_p99_ms: Option<f64>,
    /// Messages transmitted per committed batch, world-wide.
    pub msgs_per_batch: f64,
}

/// One pass over a shard's commit events: the number of distinct batches
/// committed overall, and the requests first-committed in `[from, to]`
/// (each counted once, at the earliest commit of its batch's sequence
/// number).
fn batches_and_requests_committed(
    events: &[TimedEvent<ProtocolEvent>],
    from: SimTime,
    to: SimTime,
) -> (usize, usize) {
    use std::collections::BTreeMap;
    let mut first: BTreeMap<SeqNo, (SimTime, usize)> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::Committed { o, requests, .. } = &ev.event {
            first
                .entry(*o)
                .and_modify(|(t, _)| {
                    if ev.time < *t {
                        *t = ev.time;
                    }
                })
                .or_insert((ev.time, *requests));
        }
    }
    let requests = first
        .values()
        .filter(|(t, _)| *t >= from && *t <= to)
        .map(|(_, r)| r)
        .sum();
    (first.len(), requests)
}

/// The generic sharded runner: `shards` independent groups of `P`, three
/// multi-shard clients at `rate_per_client` requests/s *per shard*
/// (constant arrivals, round-robin dealt — the fixed-per-shard-load
/// shape of horizontal-scaling sweeps), measured per shard and rolled up
/// across shards.
fn run_sharded<P: Protocol>(
    mut builder: ShardedWorldBuilder<P>,
    shards: usize,
    interval_ms: u64,
    rate_per_client: f64,
    seed: u64,
    window: Window,
) -> ShardedPoint {
    // Clients stop where the measurement window ends; the drain period
    // after it lets saturated batches still commit and report latency.
    let end = SimTime::from_secs(window.run_s);
    let horizon = SimTime::from_secs(window.run_s + window.drain_s);
    let warmup = SimTime::from_secs(window.warmup_s);
    builder = builder
        .batching_interval(SimDuration::from_ms(interval_ms))
        .seed(seed);
    for _ in 0..3 {
        builder = builder.client_with(
            ClientSpec::new(rate_per_client, 100, end),
            Arrival::Constant,
            ShardLoad::PerShard,
        );
    }
    let mut d = builder.build();
    d.start();
    d.run_until(horizon);
    let events = d.world.drain_events();
    let parts = d.partition_events(&events);

    let mut rollup = GroupRollup::new(shards);
    let mut per_shard = Vec::with_capacity(shards);
    let mut aggregate_requests = 0usize;
    let mut batches = 0usize;
    for (s, shard_events) in parts.iter().enumerate() {
        // Safety is a per-shard property: each group runs its own
        // sequence space, so the total-order check applies within it.
        analysis::check_total_order(shard_events)
            .unwrap_or_else(|e| panic!("shard {s}: safety violated: {e}"));
        let lat = analysis::latency_histogram_censored(shard_events, warmup, end, horizon);
        rollup.merge_into(s, &lat);
        let (latency_ms, p50_ms, p99_ms) = if lat.is_empty() {
            (None, None, None)
        } else {
            let ps = lat.percentiles(&[50.0, 99.0]);
            (Some(lat.mean()), Some(ps[0]), Some(ps[1]))
        };
        let (shard_batches, committed) = batches_and_requests_committed(shard_events, warmup, end);
        aggregate_requests += committed;
        batches += shard_batches;
        per_shard.push(ShardPoint {
            latency_ms,
            p50_ms,
            p99_ms,
            throughput: analysis::throughput_per_process(shard_events, warmup, end),
            committed_requests: committed,
        });
    }

    let window_s = (end - warmup).as_ns() as f64 / 1e9;
    let merged = rollup.merged();
    let (global_mean_ms, global_p50_ms, global_p99_ms) = if merged.is_empty() {
        (None, None, None)
    } else {
        let ps = merged.percentiles(&[50.0, 99.0]);
        (Some(merged.mean()), Some(ps[0]), Some(ps[1]))
    };
    ShardedPoint {
        per_shard,
        aggregate_throughput: aggregate_requests as f64 / window_s,
        global_mean_ms,
        global_p50_ms,
        global_p99_ms,
        msgs_per_batch: if batches == 0 {
            0.0
        } else {
            d.world.messages_sent() as f64 / batches as f64
        },
    }
}

/// One sharded sweep point for any protocol variant: `shards` ordering
/// groups at fixed per-shard offered load (three clients ×
/// `rate_per_client` req/s per shard). The sharded counterpart of
/// [`protocol_point`].
#[allow(clippy::too_many_arguments)]
pub fn sharded_point(
    kind: ProtocolKind,
    shards: usize,
    f: u32,
    scheme: SchemeId,
    interval_ms: u64,
    rate_per_client: f64,
    seed: u64,
    window: Window,
) -> ShardedPoint {
    match kind {
        ProtocolKind::Sc | ProtocolKind::Scr => {
            let variant = if kind == ProtocolKind::Sc {
                Variant::Sc
            } else {
                Variant::Scr
            };
            let builder = ShardedWorldBuilder::<ScProtocol>::new(shards, f)
                .variant(variant)
                .scheme(scheme)
                .time_checks(false);
            run_sharded(builder, shards, interval_ms, rate_per_client, seed, window)
        }
        ProtocolKind::Bft => {
            let builder = ShardedWorldBuilder::<BftProtocol>::new(shards, f).scheme(scheme);
            run_sharded(builder, shards, interval_ms, rate_per_client, seed, window)
        }
        ProtocolKind::Ct => {
            let builder = ShardedWorldBuilder::<CtProtocol>::new(shards, f).scheme(scheme);
            run_sharded(builder, shards, interval_ms, rate_per_client, seed, window)
        }
    }
}

/// One SC (or SCR) sweep point.
pub fn sc_point(
    f: u32,
    variant: Variant,
    scheme: SchemeId,
    interval_ms: u64,
    seed: u64,
    window: Window,
) -> Point {
    let kind = match variant {
        Variant::Sc => ProtocolKind::Sc,
        Variant::Scr => ProtocolKind::Scr,
    };
    protocol_point(kind, f, scheme, interval_ms, seed, window)
}

/// One BFT sweep point.
pub fn bft_point(f: u32, scheme: SchemeId, interval_ms: u64, seed: u64, window: Window) -> Point {
    protocol_point(ProtocolKind::Bft, f, scheme, interval_ms, seed, window)
}

/// One CT sweep point.
pub fn ct_point(f: u32, interval_ms: u64, seed: u64, window: Window) -> Point {
    protocol_point(
        ProtocolKind::Ct,
        f,
        SchemeId::NoCrypto,
        interval_ms,
        seed,
        window,
    )
}

/// One fail-over measurement (Figure 6): a single value-domain fault at
/// the rank-1 coordinator, BackLog padded to `backlog_pad` bytes; returns
/// fail-over latency in ms.
pub fn failover_point(
    variant: Variant,
    scheme: SchemeId,
    backlog_pad: usize,
    seed: u64,
) -> Option<f64> {
    let f = 2;
    let stop = SimTime::from_secs(8);
    let builder = WorldBuilder::<ScProtocol>::new(f)
        .variant(variant)
        .scheme(scheme)
        .batching_interval(SimDuration::from_ms(100))
        .order_timeout(SimDuration::from_ms(1_500))
        .backlog_pad(backlog_pad)
        .seed(seed)
        .fault(
            ProcessId(0),
            FaultSpec::Byzantine(Fault::CorruptOrderAt(SeqNo(4))),
        )
        .client(ClientSpec {
            rate_per_sec: 80.0,
            request_size: 100,
            stop_at: stop,
        });
    let mut d = builder.build();
    d.start();
    d.run_until(stop);
    let events = d.world.drain_events();
    analysis::check_total_order(&events).expect("safety violated in fail-over run");
    analysis::failover_latency_ms(&events)
}

/// Averages `runs` fail-over measurements over distinct seeds (the paper
/// averages 100 experimental results per point).
pub fn failover_avg(
    variant: Variant,
    scheme: SchemeId,
    backlog_pad: usize,
    runs: u64,
) -> Option<f64> {
    let mut total = 0.0;
    let mut n = 0u64;
    for seed in 0..runs {
        if let Some(ms) = failover_point(variant, scheme, backlog_pad, 1000 + seed) {
            total += ms;
            n += 1;
        }
    }
    (n > 0).then(|| total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAST: Window = Window {
        warmup_s: 2,
        run_s: 6,
        drain_s: 10,
    };

    #[test]
    fn sc_point_produces_sane_metrics() {
        let p = sc_point(2, Variant::Sc, SchemeId::Md5Rsa1024, 200, 1, FAST);
        let lat = p.latency_ms.expect("commits in window");
        assert!(lat > 1.0 && lat < 1_000.0, "latency {lat}");
        assert!(p.throughput > 1.0, "throughput {}", p.throughput);
        assert!(p.msgs_per_batch > 5.0, "msgs/batch {}", p.msgs_per_batch);
    }

    #[test]
    fn ct_flat_and_fast() {
        let p = ct_point(2, 200, 1, FAST);
        let lat = p.latency_ms.expect("commits");
        assert!(lat < 20.0, "CT must be fast: {lat} ms");
    }

    #[test]
    fn bft_slower_than_sc_in_steady_state() {
        let sc = sc_point(2, Variant::Sc, SchemeId::Md5Rsa1024, 300, 2, FAST);
        let bft = bft_point(2, SchemeId::Md5Rsa1024, 300, 2, FAST);
        let (sc_l, bft_l) = (sc.latency_ms.unwrap(), bft.latency_ms.unwrap());
        assert!(
            bft_l > sc_l,
            "paper's headline: BFT steady-state latency ({bft_l}) > SC ({sc_l})"
        );
    }

    #[test]
    fn failover_measurable_and_grows_with_pad() {
        let small = failover_avg(Variant::Sc, SchemeId::Md5Rsa1024, 1024, 3).unwrap();
        let large = failover_avg(Variant::Sc, SchemeId::Md5Rsa1024, 5120, 3).unwrap();
        assert!(small > 0.0);
        assert!(
            large > small,
            "fail-over latency must grow with BackLog size: {small} vs {large}"
        );
    }

    #[test]
    fn all_four_kinds_run_through_one_path() {
        for kind in ProtocolKind::ALL {
            let p = protocol_point(kind, 1, SchemeId::Md5Rsa1024, 200, 9, FAST);
            assert!(p.latency_ms.is_some(), "{kind}: nothing committed");
        }
    }

    /// The headline sharding property: at fixed per-shard offered load,
    /// doubling the shard count must scale SC's aggregate throughput by
    /// ≥ 1.7× (independent groups — near-linear by construction, with
    /// headroom for dealer-seed variation).
    #[test]
    fn sharded_sc_aggregate_throughput_scales() {
        let one = sharded_point(
            ProtocolKind::Sc,
            1,
            1,
            SchemeId::Md5Rsa1024,
            200,
            100.0,
            5,
            FAST,
        );
        let two = sharded_point(
            ProtocolKind::Sc,
            2,
            1,
            SchemeId::Md5Rsa1024,
            200,
            100.0,
            5,
            FAST,
        );
        assert!(
            one.aggregate_throughput > 0.0,
            "1-shard world ordered nothing"
        );
        let scale = two.aggregate_throughput / one.aggregate_throughput;
        assert!(
            scale >= 1.7,
            "aggregate throughput scaled only {scale:.2}× from 1 → 2 shards \
             ({:.1} → {:.1} req/s)",
            one.aggregate_throughput,
            two.aggregate_throughput
        );
    }

    /// Every variant runs sharded through the one sharded code path, and
    /// the rollup's global percentiles cover every shard's commits.
    #[test]
    fn all_four_kinds_run_sharded() {
        for kind in ProtocolKind::ALL {
            let p = sharded_point(kind, 2, 1, SchemeId::Md5Rsa1024, 200, 60.0, 9, FAST);
            assert_eq!(p.per_shard.len(), 2, "{kind}");
            for (s, sp) in p.per_shard.iter().enumerate() {
                assert!(
                    sp.latency_ms.is_some(),
                    "{kind}: shard {s} committed nothing"
                );
                assert!(sp.throughput > 0.0, "{kind}: shard {s} idle");
            }
            assert!(
                p.global_p50_ms.is_some() && p.global_p99_ms.is_some(),
                "{kind}"
            );
            assert!(p.aggregate_throughput > 0.0, "{kind}");
            assert!(p.msgs_per_batch > 0.0, "{kind}");
        }
    }
}
