//! Experiment runners for the §5 study.
//!
//! Every measurement is a declarative [`Scenario`] executed through the
//! kind-dispatching runner ([`sofbyz::scenario::run`]); sweeps are
//! [`SweepGrid`](sofbyz::scenario::SweepGrid)s over scenario values
//! (see the figure binaries). The
//! historical point functions ([`protocol_point`], [`sharded_point`],
//! [`failover_point`], …) remain as deprecated facades: each one builds
//! the equivalent scenario and reshapes the uniform
//! [`Report`] into its legacy return type, so
//! existing callers keep compiling — and keep measuring the *identical*
//! numbers, since a one-shard scenario lowers onto the same flat builder
//! bit for bit.

use sofb_crypto::scheme::SchemeId;
use sofb_proto::ids::{ProcessId, SeqNo};
use sofb_proto::topology::Variant;
use sofbyz::scenario::{self, ClientLoad, Report, Scenario, ScenarioFault};
use sofbyz::sim::time::SimDuration;

pub use sofb_harness::scenario::Window;
pub use sofb_harness::{ProtocolEvent, ProtocolKind};

/// Worker threads for grid execution: enough to overlap sweep points,
/// capped so laptops and CI machines stay responsive. Grid results are
/// identical at any worker count (pinned by the determinism tests), so
/// this only changes wall time.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1)
}

/// One sweep point result (legacy shape; the scenario runner's
/// [`Report`] is the uniform superset).
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Mean order latency (ms), if anything committed in the window.
    pub latency_ms: Option<f64>,
    /// Median order latency (ms) over the same censored distribution.
    pub p50_ms: Option<f64>,
    /// 99th-percentile order latency (ms).
    pub p99_ms: Option<f64>,
    /// Committed requests per process per second.
    pub throughput: f64,
    /// Messages transmitted per committed batch (network cost).
    pub msgs_per_batch: f64,
}

impl From<&Report> for Point {
    fn from(r: &Report) -> Self {
        Point {
            latency_ms: r.global.mean_ms,
            p50_ms: r.global.p50_ms,
            p99_ms: r.global.p99_ms,
            throughput: r.throughput_per_process,
            msgs_per_batch: r.msgs_per_batch,
        }
    }
}

/// The standard §5 measurement scenario: protocol `kind` at resilience
/// `f` under `scheme`, the paper's offered load (three 100 req/s
/// clients), detection off — the base every flat sweep patches.
pub fn bench_scenario(
    kind: ProtocolKind,
    f: u32,
    scheme: SchemeId,
    interval_ms: u64,
    seed: u64,
    window: Window,
) -> Scenario {
    Scenario::bench(kind)
        .f(f)
        .scheme(scheme)
        .interval_ms(interval_ms)
        .seed(seed)
        .window(window)
}

/// One sweep point for any protocol variant.
#[deprecated(note = "build a `Scenario` (see `bench_scenario`) and run it instead")]
pub fn protocol_point(
    kind: ProtocolKind,
    f: u32,
    scheme: SchemeId,
    interval_ms: u64,
    seed: u64,
    window: Window,
) -> Point {
    let s = bench_scenario(kind, f, scheme, interval_ms, seed, window);
    Point::from(&scenario::run(&s).expect("benchmark scenario is valid"))
}

/// One shard's measurements inside a sharded sweep point. Network
/// counters are world-global, so the per-shard view reports latency and
/// throughput only; message cost lives in the rollup.
#[derive(Clone, Copy, Debug)]
pub struct ShardPoint {
    /// Mean order latency (ms) within the shard, censored like [`Point`].
    pub latency_ms: Option<f64>,
    /// Median order latency (ms).
    pub p50_ms: Option<f64>,
    /// 99th-percentile order latency (ms).
    pub p99_ms: Option<f64>,
    /// Committed requests per process per second within the shard.
    pub throughput: f64,
    /// Requests first-committed inside the measurement window (each
    /// counted once).
    pub committed_requests: usize,
}

/// One sharded sweep-point result: per-shard measurements plus the
/// cross-shard rollup (legacy shape of the uniform report).
#[derive(Clone, Debug)]
pub struct ShardedPoint {
    /// Per-shard measurements, in shard order.
    pub per_shard: Vec<ShardPoint>,
    /// Globally ordered requests per second across all shards (every
    /// request counted once, at its first commit inside the window) —
    /// the horizontal-scaling metric.
    pub aggregate_throughput: f64,
    /// Global mean order latency (ms) over the exact merged per-shard
    /// distributions.
    pub global_mean_ms: Option<f64>,
    /// Global median (exact merged distribution, not an average of
    /// per-shard medians).
    pub global_p50_ms: Option<f64>,
    /// Global 99th percentile (exact merged distribution).
    pub global_p99_ms: Option<f64>,
    /// Messages transmitted per committed batch, world-wide.
    pub msgs_per_batch: f64,
}

impl From<&Report> for ShardedPoint {
    fn from(r: &Report) -> Self {
        ShardedPoint {
            per_shard: r
                .per_shard
                .iter()
                .map(|s| ShardPoint {
                    latency_ms: s.latency.mean_ms,
                    p50_ms: s.latency.p50_ms,
                    p99_ms: s.latency.p99_ms,
                    throughput: s.throughput_per_process,
                    committed_requests: s.committed_requests,
                })
                .collect(),
            aggregate_throughput: r.aggregate_throughput,
            global_mean_ms: r.global.mean_ms,
            global_p50_ms: r.global.p50_ms,
            global_p99_ms: r.global.p99_ms,
            msgs_per_batch: r.msgs_per_batch,
        }
    }
}

/// The standard horizontal-scaling scenario: `shards` ordering groups of
/// `kind`, three constant-rate clients at `rate_per_client` requests/s
/// *per shard* (round-robin dealt) — the base every sharded sweep
/// patches.
#[allow(clippy::too_many_arguments)] // mirrors the legacy sharded_point signature
pub fn sharded_scenario(
    kind: ProtocolKind,
    shards: usize,
    f: u32,
    scheme: SchemeId,
    interval_ms: u64,
    rate_per_client: f64,
    seed: u64,
    window: Window,
) -> Scenario {
    bench_scenario(kind, f, scheme, interval_ms, seed, window)
        .shards(shards)
        .clients(3, ClientLoad::constant(rate_per_client, 100).per_shard())
}

/// One sharded sweep point for any protocol variant.
#[deprecated(note = "build a `Scenario` (see `sharded_scenario`) and run it instead")]
#[allow(clippy::too_many_arguments)]
pub fn sharded_point(
    kind: ProtocolKind,
    shards: usize,
    f: u32,
    scheme: SchemeId,
    interval_ms: u64,
    rate_per_client: f64,
    seed: u64,
    window: Window,
) -> ShardedPoint {
    let s = sharded_scenario(
        kind,
        shards,
        f,
        scheme,
        interval_ms,
        rate_per_client,
        seed,
        window,
    );
    ShardedPoint::from(&scenario::run(&s).expect("sharded benchmark scenario is valid"))
}

/// One SC (or SCR) sweep point.
#[deprecated(note = "build a `Scenario` (see `bench_scenario`) and run it instead")]
pub fn sc_point(
    f: u32,
    variant: Variant,
    scheme: SchemeId,
    interval_ms: u64,
    seed: u64,
    window: Window,
) -> Point {
    let kind = match variant {
        Variant::Sc => ProtocolKind::Sc,
        Variant::Scr => ProtocolKind::Scr,
    };
    #[allow(deprecated)]
    protocol_point(kind, f, scheme, interval_ms, seed, window)
}

/// One BFT sweep point.
#[deprecated(note = "build a `Scenario` (see `bench_scenario`) and run it instead")]
pub fn bft_point(f: u32, scheme: SchemeId, interval_ms: u64, seed: u64, window: Window) -> Point {
    #[allow(deprecated)]
    protocol_point(ProtocolKind::Bft, f, scheme, interval_ms, seed, window)
}

/// One CT sweep point.
#[deprecated(note = "build a `Scenario` (see `bench_scenario`) and run it instead")]
pub fn ct_point(f: u32, interval_ms: u64, seed: u64, window: Window) -> Point {
    #[allow(deprecated)]
    protocol_point(
        ProtocolKind::Ct,
        f,
        SchemeId::NoCrypto,
        interval_ms,
        seed,
        window,
    )
}

/// The Figure-6 fail-over scenario: a single value-domain fault at the
/// rank-1 coordinator, BackLogs padded to `backlog_pad` bytes, one
/// 80 req/s client over an 8 s run — the base the fail-over sweeps
/// patch. Time-domain detection stays on (`Scenario::new` defaults): the
/// fail-over is the measurement, not noise.
pub fn failover_scenario(
    variant: Variant,
    scheme: SchemeId,
    backlog_pad: usize,
    seed: u64,
) -> Scenario {
    let kind = match variant {
        Variant::Sc => ProtocolKind::Sc,
        Variant::Scr => ProtocolKind::Scr,
    };
    Scenario::new(kind)
        .f(2)
        .scheme(scheme)
        .interval_ms(100)
        .order_timeout(SimDuration::from_ms(1_500))
        .backlog_pad(backlog_pad)
        .seed(seed)
        .window(Window {
            warmup_s: 0,
            run_s: 8,
            drain_s: 0,
        })
        .client(ClientLoad::constant(80.0, 100))
        .fault(ScenarioFault::corrupt_order_at(ProcessId(0), SeqNo(4)))
}

/// One fail-over measurement (Figure 6); returns fail-over latency in
/// ms.
#[deprecated(note = "build a `Scenario` (see `failover_scenario`) and read `Report::failover_ms`")]
pub fn failover_point(
    variant: Variant,
    scheme: SchemeId,
    backlog_pad: usize,
    seed: u64,
) -> Option<f64> {
    let s = failover_scenario(variant, scheme, backlog_pad, seed);
    scenario::run(&s)
        .expect("fail-over scenario is valid")
        .failover_ms
}

/// Averages `runs` fail-over measurements over distinct seeds (the paper
/// averages 100 experimental results per point).
#[deprecated(note = "sweep `failover_scenario` seeds through a `SweepGrid` instead")]
pub fn failover_avg(
    variant: Variant,
    scheme: SchemeId,
    backlog_pad: usize,
    runs: u64,
) -> Option<f64> {
    let mut total = 0.0;
    let mut n = 0u64;
    for seed in 0..runs {
        #[allow(deprecated)]
        if let Some(ms) = failover_point(variant, scheme, backlog_pad, 1000 + seed) {
            total += ms;
            n += 1;
        }
    }
    (n > 0).then(|| total / n as f64)
}

#[cfg(test)]
#[allow(deprecated)] // the facades stay covered until they are removed
mod tests {
    use super::*;

    const FAST: Window = Window {
        warmup_s: 2,
        run_s: 6,
        drain_s: 10,
    };

    #[test]
    fn sc_point_produces_sane_metrics() {
        let p = sc_point(2, Variant::Sc, SchemeId::Md5Rsa1024, 200, 1, FAST);
        let lat = p.latency_ms.expect("commits in window");
        assert!(lat > 1.0 && lat < 1_000.0, "latency {lat}");
        assert!(p.throughput > 1.0, "throughput {}", p.throughput);
        assert!(p.msgs_per_batch > 5.0, "msgs/batch {}", p.msgs_per_batch);
    }

    #[test]
    fn ct_flat_and_fast() {
        let p = ct_point(2, 200, 1, FAST);
        let lat = p.latency_ms.expect("commits");
        assert!(lat < 20.0, "CT must be fast: {lat} ms");
    }

    #[test]
    fn bft_slower_than_sc_in_steady_state() {
        let sc = sc_point(2, Variant::Sc, SchemeId::Md5Rsa1024, 300, 2, FAST);
        let bft = bft_point(2, SchemeId::Md5Rsa1024, 300, 2, FAST);
        let (sc_l, bft_l) = (sc.latency_ms.unwrap(), bft.latency_ms.unwrap());
        assert!(
            bft_l > sc_l,
            "paper's headline: BFT steady-state latency ({bft_l}) > SC ({sc_l})"
        );
    }

    #[test]
    fn failover_measurable_and_grows_with_pad() {
        let small = failover_avg(Variant::Sc, SchemeId::Md5Rsa1024, 1024, 3).unwrap();
        let large = failover_avg(Variant::Sc, SchemeId::Md5Rsa1024, 5120, 3).unwrap();
        assert!(small > 0.0);
        assert!(
            large > small,
            "fail-over latency must grow with BackLog size: {small} vs {large}"
        );
    }

    #[test]
    fn all_four_kinds_run_through_one_path() {
        for kind in ProtocolKind::ALL {
            let p = protocol_point(kind, 1, SchemeId::Md5Rsa1024, 200, 9, FAST);
            assert!(p.latency_ms.is_some(), "{kind}: nothing committed");
        }
    }

    /// The headline sharding property: at fixed per-shard offered load,
    /// doubling the shard count must scale SC's aggregate throughput by
    /// ≥ 1.7× (independent groups — near-linear by construction, with
    /// headroom for dealer-seed variation).
    #[test]
    fn sharded_sc_aggregate_throughput_scales() {
        let one = sharded_point(
            ProtocolKind::Sc,
            1,
            1,
            SchemeId::Md5Rsa1024,
            200,
            100.0,
            5,
            FAST,
        );
        let two = sharded_point(
            ProtocolKind::Sc,
            2,
            1,
            SchemeId::Md5Rsa1024,
            200,
            100.0,
            5,
            FAST,
        );
        assert!(
            one.aggregate_throughput > 0.0,
            "1-shard world ordered nothing"
        );
        let scale = two.aggregate_throughput / one.aggregate_throughput;
        assert!(
            scale >= 1.7,
            "aggregate throughput scaled only {scale:.2}× from 1 → 2 shards \
             ({:.1} → {:.1} req/s)",
            one.aggregate_throughput,
            two.aggregate_throughput
        );
    }

    /// Every variant runs sharded through the one sharded code path, and
    /// the rollup's global percentiles cover every shard's commits.
    #[test]
    fn all_four_kinds_run_sharded() {
        for kind in ProtocolKind::ALL {
            let p = sharded_point(kind, 2, 1, SchemeId::Md5Rsa1024, 200, 60.0, 9, FAST);
            assert_eq!(p.per_shard.len(), 2, "{kind}");
            for (s, sp) in p.per_shard.iter().enumerate() {
                assert!(
                    sp.latency_ms.is_some(),
                    "{kind}: shard {s} committed nothing"
                );
                assert!(sp.throughput > 0.0, "{kind}: shard {s} idle");
            }
            assert!(
                p.global_p50_ms.is_some() && p.global_p99_ms.is_some(),
                "{kind}"
            );
            assert!(p.aggregate_throughput > 0.0, "{kind}");
            assert!(p.msgs_per_batch > 0.0, "{kind}");
        }
    }
}
