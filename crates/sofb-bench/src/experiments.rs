//! Experiment runners for the §5 study.
//!
//! Every measurement is a declarative [`Scenario`] executed through the
//! kind-dispatching runner ([`sofbyz::scenario::run`]); sweeps are
//! [`SweepGrid`](sofbyz::scenario::SweepGrid)s over scenario values (the
//! canonical grids live in [`crate::grids`], their data-file
//! counterparts under `specs/`). This module holds the canonical
//! *scenario shapes* the grids patch — the standard measurement posture,
//! the sharded-load posture and the fail-over posture. The PR-4-era
//! deprecated point-function facades (`protocol_point`, `sharded_point`,
//! `failover_point`, …) are gone; build the scenario and read the
//! uniform [`Report`](sofbyz::scenario::Report) instead.

use sofb_crypto::scheme::SchemeId;
use sofb_proto::ids::{ProcessId, SeqNo};
use sofbyz::scenario::{ClientLoad, Scenario, ScenarioFault};
use sofbyz::sim::time::SimDuration;

pub use sofb_harness::scenario::Window;
pub use sofb_harness::{ProtocolEvent, ProtocolKind};

pub use sofbyz::scenario::default_workers;

/// The standard §5 measurement scenario: protocol `kind` at resilience
/// `f` under `scheme`, the paper's offered load (three 100 req/s
/// clients), detection off — the base every flat sweep patches.
pub fn bench_scenario(
    kind: ProtocolKind,
    f: u32,
    scheme: SchemeId,
    interval_ms: u64,
    seed: u64,
    window: Window,
) -> Scenario {
    Scenario::bench(kind)
        .f(f)
        .scheme(scheme)
        .interval_ms(interval_ms)
        .seed(seed)
        .window(window)
}

/// The standard horizontal-scaling scenario: `shards` ordering groups of
/// `kind`, three constant-rate clients at `rate_per_client` requests/s
/// *per shard* (round-robin dealt) — the base every sharded sweep
/// patches.
#[allow(clippy::too_many_arguments)] // one knob per swept dimension
pub fn sharded_scenario(
    kind: ProtocolKind,
    shards: usize,
    f: u32,
    scheme: SchemeId,
    interval_ms: u64,
    rate_per_client: f64,
    seed: u64,
    window: Window,
) -> Scenario {
    bench_scenario(kind, f, scheme, interval_ms, seed, window)
        .shards(shards)
        .clients(3, ClientLoad::constant(rate_per_client, 100).per_shard())
}

/// The Figure-6 fail-over scenario: a single value-domain fault at the
/// rank-1 coordinator, BackLogs padded to `backlog_pad` bytes, one
/// 80 req/s client over an 8 s run — the base the fail-over sweeps
/// patch. Time-domain detection stays on (`Scenario::new` defaults): the
/// fail-over is the measurement, not noise.
pub fn failover_scenario(
    variant: sofb_proto::topology::Variant,
    scheme: SchemeId,
    backlog_pad: usize,
    seed: u64,
) -> Scenario {
    let kind = match variant {
        sofb_proto::topology::Variant::Sc => ProtocolKind::Sc,
        sofb_proto::topology::Variant::Scr => ProtocolKind::Scr,
    };
    Scenario::new(kind)
        .f(2)
        .scheme(scheme)
        .interval_ms(100)
        .order_timeout(SimDuration::from_ms(1_500))
        .backlog_pad(backlog_pad)
        .seed(seed)
        .window(Window {
            warmup_s: 0,
            run_s: 8,
            drain_s: 0,
        })
        .client(ClientLoad::constant(80.0, 100))
        .fault(ScenarioFault::corrupt_order_at(ProcessId(0), SeqNo(4)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofbyz::scenario::{run, RunScenario};

    const FAST: Window = Window {
        warmup_s: 2,
        run_s: 6,
        drain_s: 10,
    };

    #[test]
    fn sc_scenario_produces_sane_metrics() {
        let r = bench_scenario(ProtocolKind::Sc, 2, SchemeId::Md5Rsa1024, 200, 1, FAST)
            .run()
            .expect("benchmark scenario is valid");
        let lat = r.global.mean_ms.expect("commits in window");
        assert!(lat > 1.0 && lat < 1_000.0, "latency {lat}");
        assert!(
            r.throughput_per_process > 1.0,
            "{}",
            r.throughput_per_process
        );
        assert!(r.msgs_per_batch > 5.0, "msgs/batch {}", r.msgs_per_batch);
    }

    #[test]
    fn ct_flat_and_fast() {
        let r = bench_scenario(ProtocolKind::Ct, 2, SchemeId::NoCrypto, 200, 1, FAST)
            .run()
            .expect("CT scenario is valid");
        let lat = r.global.mean_ms.expect("commits");
        assert!(lat < 20.0, "CT must be fast: {lat} ms");
    }

    #[test]
    fn bft_slower_than_sc_in_steady_state() {
        let sc = bench_scenario(ProtocolKind::Sc, 2, SchemeId::Md5Rsa1024, 300, 2, FAST)
            .run()
            .unwrap();
        let bft = bench_scenario(ProtocolKind::Bft, 2, SchemeId::Md5Rsa1024, 300, 2, FAST)
            .run()
            .unwrap();
        let (sc_l, bft_l) = (sc.global.mean_ms.unwrap(), bft.global.mean_ms.unwrap());
        assert!(
            bft_l > sc_l,
            "paper's headline: BFT steady-state latency ({bft_l}) > SC ({sc_l})"
        );
    }

    /// Averages fail-over latency over seed replicates, as the figures
    /// do (the paper averages 100 experimental results per point).
    fn failover_avg(pad: usize, runs: u64) -> f64 {
        let (mut total, mut n) = (0.0, 0u64);
        for seed in 0..runs {
            let s = failover_scenario(
                sofb_proto::topology::Variant::Sc,
                SchemeId::Md5Rsa1024,
                pad,
                1000 + seed,
            );
            if let Some(ms) = run(&s).expect("fail-over scenario is valid").failover_ms {
                total += ms;
                n += 1;
            }
        }
        assert!(n > 0, "no fail-over measured across {runs} seeds");
        total / n as f64
    }

    #[test]
    fn failover_measurable_and_grows_with_pad() {
        let small = failover_avg(1024, 3);
        let large = failover_avg(5120, 3);
        assert!(small > 0.0);
        assert!(
            large > small,
            "fail-over latency must grow with BackLog size: {small} vs {large}"
        );
    }

    #[test]
    fn all_four_kinds_run_through_one_path() {
        for kind in ProtocolKind::ALL {
            let r = bench_scenario(kind, 1, SchemeId::Md5Rsa1024, 200, 9, FAST)
                .run()
                .expect("scenario is valid");
            assert!(r.global.mean_ms.is_some(), "{kind}: nothing committed");
        }
    }

    /// The headline sharding property: at fixed per-shard offered load,
    /// doubling the shard count must scale SC's aggregate throughput by
    /// ≥ 1.7× (independent groups — near-linear by construction, with
    /// headroom for dealer-seed variation).
    #[test]
    fn sharded_sc_aggregate_throughput_scales() {
        let point = |shards| {
            sharded_scenario(
                ProtocolKind::Sc,
                shards,
                1,
                SchemeId::Md5Rsa1024,
                200,
                100.0,
                5,
                FAST,
            )
            .run()
            .expect("sharded scenario is valid")
        };
        let one = point(1);
        let two = point(2);
        assert!(
            one.aggregate_throughput > 0.0,
            "1-shard world ordered nothing"
        );
        let scale = two.aggregate_throughput / one.aggregate_throughput;
        assert!(
            scale >= 1.7,
            "aggregate throughput scaled only {scale:.2}× from 1 → 2 shards \
             ({:.1} → {:.1} req/s)",
            one.aggregate_throughput,
            two.aggregate_throughput
        );
    }

    /// Every variant runs sharded through the one sharded code path, and
    /// the rollup's global percentiles cover every shard's commits.
    #[test]
    fn all_four_kinds_run_sharded() {
        for kind in ProtocolKind::ALL {
            let r = sharded_scenario(kind, 2, 1, SchemeId::Md5Rsa1024, 200, 60.0, 9, FAST)
                .run()
                .expect("sharded scenario is valid");
            assert_eq!(r.per_shard.len(), 2, "{kind}");
            for (s, sp) in r.per_shard.iter().enumerate() {
                assert!(
                    sp.latency.mean_ms.is_some(),
                    "{kind}: shard {s} committed nothing"
                );
                assert!(sp.throughput_per_process > 0.0, "{kind}: shard {s} idle");
            }
            assert!(
                r.global.p50_ms.is_some() && r.global.p99_ms.is_some(),
                "{kind}"
            );
            assert!(r.aggregate_throughput > 0.0, "{kind}");
            assert!(r.msgs_per_batch > 0.0, "{kind}");
        }
    }
}
