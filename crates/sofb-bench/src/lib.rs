//! # sofb-bench — the §5 evaluation harness
//!
//! Measurements are declarative scenarios ([`experiments`] holds the
//! canonical scenario shapes); every sweep is a `SweepGrid` over
//! scenario values, constructed once in [`grids`] and consumed three
//! ways — by the figure binaries below, by the data-file counterparts
//! under `specs/` (run them with `sofb run specs/<name>.scn`), and by
//! the spec-equivalence tests that pin the two representations
//! bit-identical. One binary per figure or study:
//!
//! | Binary      | Artifact | Output |
//! |-------------|----------------|--------|
//! | `fig4`      | Figure 4 (a,b,c) | order latency vs batching interval, SC/BFT/CT × 3 schemes, f = 2 |
//! | `fig5`      | Figure 5 (a,b,c) | throughput vs batching interval, same matrix |
//! | `fig6`      | Figure 6 | fail-over latency vs BackLog size, SC and SCR × 3 schemes |
//! | `f3_sweep`  | §5 text (f = 3) | the Figure-4 sweep at f = 3 |
//! | `msg_counts`| Fig. 3 discussion | messages per committed batch, SC vs BFT vs CT |
//! | `shard_sweep` | beyond the paper | aggregate throughput and p99 vs shard count, all variants |
//! | `scenario_sweeps` | beyond the paper | multi-client saturation (f = 2..4) and GST-sensitivity grids |
//! | `bench_protocols` | perf trajectory | `BENCH_protocols.json` smoke + the CI `--check` gate |
//!
//! Run with `--release`; each figure takes a few minutes of wall time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod grids;
