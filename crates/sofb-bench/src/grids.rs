//! The repo's canonical sweep grids, one constructor per figure or
//! study.
//!
//! The figure binaries print these grids; the `specs/` directory carries
//! one `.scn` counterpart per grid; and the spec-equivalence tests pin
//! that a parsed spec expands to *bit-identical* cells (and, for the
//! cheap grids, bit-identical executed reports). Keeping construction
//! here — out of the binaries — is what lets one definition back all
//! three.

use sofb_crypto::scheme::SchemeId;
use sofb_harness::ProtocolKind;
use sofb_proto::ids::ProcessId;
use sofb_sim::time::{SimDuration, SimTime};
use sofbyz::scenario::{Axis, ClientLoad, ScenarioFault, SweepGrid};

use crate::experiments::{bench_scenario, failover_scenario, sharded_scenario, Window};

/// The fixed scheme most studies use.
pub const SCHEME: SchemeId = SchemeId::Md5Rsa1024;

// --- bench_protocols ---------------------------------------------------

/// `bench_protocols` flat section: resilience.
pub const BENCH_F: u32 = 2;
/// `bench_protocols` flat section: batching interval (ms).
pub const BENCH_INTERVAL_MS: u64 = 100;
/// `bench_protocols`: the fixed world seed.
pub const BENCH_SEED: u64 = 7;
/// `bench_protocols` flat section: measurement window.
pub const BENCH_WINDOW: Window = Window {
    warmup_s: 2,
    run_s: 10,
    drain_s: 15,
};
/// `bench_protocols` sharded section: swept shard counts.
pub const BENCH_SHARD_COUNTS: [usize; 2] = [1, 2];
/// `bench_protocols` sharded section: resilience (keeps the 2-shard
/// world at 8 processes).
pub const BENCH_SHARD_F: u32 = 1;
/// `bench_protocols` sharded section: per-client offered load per shard.
pub const BENCH_SHARD_RATE_PER_CLIENT: f64 = 100.0;
/// `bench_protocols` sharded section: measurement window.
pub const BENCH_SHARD_WINDOW: Window = Window {
    warmup_s: 2,
    run_s: 8,
    drain_s: 10,
};

/// The flat `BENCH_protocols.json` grid: one fixed-seed point per
/// variant.
pub fn bench_flat() -> SweepGrid {
    SweepGrid::new(bench_scenario(
        ProtocolKind::Sc,
        BENCH_F,
        SCHEME,
        BENCH_INTERVAL_MS,
        BENCH_SEED,
        BENCH_WINDOW,
    ))
    .axis(Axis::kinds(&ProtocolKind::ALL))
}

/// The sharded `BENCH_protocols.json` grid: SC at fixed per-shard load,
/// 1 vs 2 ordering groups.
pub fn bench_sharded() -> SweepGrid {
    SweepGrid::new(sharded_scenario(
        ProtocolKind::Sc,
        1,
        BENCH_SHARD_F,
        SCHEME,
        BENCH_INTERVAL_MS,
        BENCH_SHARD_RATE_PER_CLIENT,
        BENCH_SEED,
        BENCH_SHARD_WINDOW,
    ))
    .axis(Axis::shard_counts(&BENCH_SHARD_COUNTS))
}

// --- figures 4 and 5 ---------------------------------------------------

/// The batching intervals Figures 4 and 5 sweep (ms).
pub const FIG_INTERVALS: [u64; 10] = [40, 60, 80, 100, 150, 200, 250, 300, 400, 500];
/// The protocol kinds Figures 4 and 5 plot.
pub const FIG_KINDS: [ProtocolKind; 3] = [ProtocolKind::Sc, ProtocolKind::Bft, ProtocolKind::Ct];

/// An interval axis whose values also re-seed the world at
/// `seed_base + interval_ms` — the figures' historical seeding.
fn interval_axis_seeded(intervals: &[u64], seed_base: u64, plus_f: bool) -> Axis {
    let mut axis = Axis::new("interval_ms");
    for &ms in intervals {
        axis = axis.value(ms.to_string(), move |s| {
            s.knobs.batching_interval = SimDuration::from_ms(ms);
            s.knobs.seed = seed_base + ms + if plus_f { u64::from(s.knobs.f) } else { 0 };
        });
    }
    axis
}

/// The Figure-4 grid (order latency): scheme × kind × interval, f = 2,
/// seeds tracking the interval from base 42.
pub fn fig4() -> SweepGrid {
    SweepGrid::new(bench_scenario(
        ProtocolKind::Sc,
        2,
        SchemeId::Md5Rsa1024,
        FIG_INTERVALS[0],
        42,
        Window::default(),
    ))
    .axis(Axis::schemes(&SchemeId::PAPER))
    .axis(Axis::kinds(&FIG_KINDS))
    .axis(interval_axis_seeded(&FIG_INTERVALS, 42, false))
}

/// The Figure-5 grid (throughput): the Figure-4 matrix re-seeded from
/// base 142.
pub fn fig5() -> SweepGrid {
    SweepGrid::new(bench_scenario(
        ProtocolKind::Sc,
        2,
        SchemeId::Md5Rsa1024,
        FIG_INTERVALS[0],
        142,
        Window::default(),
    ))
    .axis(Axis::schemes(&SchemeId::PAPER))
    .axis(Axis::kinds(&FIG_KINDS))
    .axis(interval_axis_seeded(&FIG_INTERVALS, 142, false))
}

// --- figure 6 ----------------------------------------------------------

/// The BackLog pads Figure 6 sweeps (KB).
pub const FIG6_PADS_KB: [usize; 5] = [1, 2, 3, 4, 5];
/// Seed replicates per Figure-6 point (the paper averages per point).
pub const FIG6_RUNS: u64 = 20;

/// The Figure-6 grid (fail-over latency): scheme × variant × BackLog
/// pad, replicated across [`FIG6_RUNS`] seeds.
pub fn fig6() -> SweepGrid {
    let seeds: Vec<u64> = (0..FIG6_RUNS).map(|s| 1000 + s).collect();
    let mut pad_axis = Axis::new("backlog_kb");
    for kb in FIG6_PADS_KB {
        pad_axis = pad_axis.value(kb.to_string(), move |s| {
            s.knobs.backlog_pad = kb * 1024;
        });
    }
    SweepGrid::new(failover_scenario(
        sofb_proto::topology::Variant::Sc,
        SchemeId::Md5Rsa1024,
        1024,
        1000,
    ))
    .axis(Axis::schemes(&SchemeId::PAPER))
    .axis(Axis::kinds(&[ProtocolKind::Sc, ProtocolKind::Scr]))
    .axis(pad_axis)
    .seeds(&seeds)
}

// --- f = 3 trend -------------------------------------------------------

/// The batching intervals the f = 3 trend sweeps (ms).
pub const F3_INTERVALS: [u64; 9] = [40, 60, 80, 100, 150, 200, 300, 400, 500];
/// The protocol kinds the f = 3 trend compares.
pub const F3_KINDS: [ProtocolKind; 2] = [ProtocolKind::Sc, ProtocolKind::Bft];

/// The §5 f = 3 trend grid: f × kind × interval under MD5+RSA-1024,
/// seeds tracking interval *and* resilience from base 242.
pub fn f3_sweep() -> SweepGrid {
    SweepGrid::new(bench_scenario(
        ProtocolKind::Sc,
        2,
        SCHEME,
        F3_INTERVALS[0],
        242,
        Window::default(),
    ))
    .axis(Axis::resiliences(&[2, 3]))
    .axis(Axis::kinds(&F3_KINDS))
    .axis(interval_axis_seeded(&F3_INTERVALS, 242, true))
}

// --- message counts ----------------------------------------------------

/// The fixed batching interval of the message-count ablation (ms).
pub const MSG_COUNT_INTERVAL_MS: u64 = 200;
/// The message-count ablation's measurement window.
pub const MSG_COUNT_WINDOW: Window = Window {
    warmup_s: 2,
    run_s: 10,
    drain_s: 20,
};

/// The Figure-3-discussion ablation grid: messages per committed batch,
/// f × kind at a fixed 200 ms interval.
pub fn msg_counts() -> SweepGrid {
    SweepGrid::new(bench_scenario(
        ProtocolKind::Sc,
        2,
        SCHEME,
        MSG_COUNT_INTERVAL_MS,
        7,
        MSG_COUNT_WINDOW,
    ))
    .axis(Axis::resiliences(&[2, 3]))
    .axis(Axis::kinds(&FIG_KINDS))
}

// --- shard sweep -------------------------------------------------------

/// Shard counts the horizontal-scaling sweep visits.
pub const SHARD_SWEEP_COUNTS: [usize; 3] = [1, 2, 4];
/// Per-shard offered load per client (three clients per world): well
/// under saturation, and near it.
pub const SHARD_SWEEP_RATES: [f64; 2] = [60.0, 140.0];
/// The horizontal-scaling sweep's measurement window.
pub const SHARD_SWEEP_WINDOW: Window = Window {
    warmup_s: 2,
    run_s: 8,
    drain_s: 10,
};

/// The horizontal-scaling grid: rate × kind × shard count at f = 1.
pub fn shard_sweep() -> SweepGrid {
    SweepGrid::new(sharded_scenario(
        ProtocolKind::Sc,
        1,
        1,
        SCHEME,
        BENCH_INTERVAL_MS,
        SHARD_SWEEP_RATES[0],
        BENCH_SEED,
        SHARD_SWEEP_WINDOW,
    ))
    .axis(Axis::rates_per_client(&SHARD_SWEEP_RATES))
    .axis(Axis::kinds(&ProtocolKind::ALL))
    .axis(Axis::shard_counts(&SHARD_SWEEP_COUNTS))
}

// --- scenario_sweeps: saturation + GST sensitivity ---------------------

/// The axis values and windows of the `scenario_sweeps` grids — full
/// size for the figures, smoke size for CI.
pub struct SweepShape {
    /// Resiliences of the saturation grid.
    pub saturation_fs: Vec<u32>,
    /// Client counts of the saturation grid.
    pub saturation_counts: Vec<usize>,
    /// Per-client rates of the saturation grid.
    pub saturation_rates: Vec<f64>,
    /// Measurement window of the saturation grid.
    pub saturation_window: Window,
    /// GST positions of the sensitivity grid (ms).
    pub gst_offsets_ms: Vec<u64>,
    /// Measurement window of the sensitivity grid.
    pub gst_window: Window,
}

impl SweepShape {
    /// The full figure-sized grids.
    pub fn full() -> Self {
        SweepShape {
            saturation_fs: vec![2, 3, 4],
            saturation_counts: vec![1, 3, 5],
            saturation_rates: vec![60.0, 120.0, 240.0],
            saturation_window: Window {
                warmup_s: 2,
                run_s: 10,
                drain_s: 20,
            },
            gst_offsets_ms: vec![0, 1_000, 2_000, 3_000, 4_000],
            gst_window: Window {
                warmup_s: 0,
                run_s: 6,
                drain_s: 4,
            },
        }
    }

    /// The CI smoke shape: same axes, drastically fewer values and a
    /// short window — exercises the full grid path on every push.
    pub fn smoke() -> Self {
        SweepShape {
            saturation_fs: vec![2],
            saturation_counts: vec![1, 3],
            saturation_rates: vec![120.0],
            saturation_window: Window {
                warmup_s: 1,
                run_s: 4,
                drain_s: 4,
            },
            gst_offsets_ms: vec![1_000, 3_000],
            gst_window: Window {
                warmup_s: 0,
                run_s: 4,
                drain_s: 3,
            },
        }
    }
}

/// The multi-client saturation grid: f × kind × client count × rate over
/// the standard measurement scenario.
pub fn saturation(shape: &SweepShape) -> SweepGrid {
    SweepGrid::new(bench_scenario(
        ProtocolKind::Sc,
        2,
        SCHEME,
        100,
        7,
        shape.saturation_window,
    ))
    .axis(Axis::resiliences(&shape.saturation_fs))
    .axis(Axis::kinds(&ProtocolKind::ALL))
    .axis(Axis::client_counts(&shape.saturation_counts))
    .axis(Axis::rates_per_client(&shape.saturation_rates))
}

// --- million_clients ---------------------------------------------------

/// `million_clients`: open-loop clients aggregated into one
/// [`ClientPopulation`](sofb_harness::ClientPopulation) per shard world.
pub const MILLION_POPULATION: usize = 100_000;
/// `million_clients`: per-member Poisson rate (aggregate load is
/// `population × rate` per shard under per-shard dealing).
pub const MILLION_RATE_PER_CLIENT: f64 = 0.02;
/// `million_clients`: ordering groups in the world.
pub const MILLION_SHARDS: usize = 2;
/// `million_clients`: swept world-worker counts (the parallel-scaling
/// axis; 1 worker is the determinism anchor).
pub const MILLION_WORLD_WORKERS: [usize; 2] = [1, 2];

/// The `million_clients` grid: a 2-shard world carrying 10⁵ aggregated
/// Poisson clients (200 req/s per shard), swept over world-worker
/// counts. The traces are bit-identical along the axis; only the wall
/// clock moves — the grid backing the parallel-scaling section of
/// `BENCH_protocols.json`.
pub fn million_clients() -> SweepGrid {
    SweepGrid::new(
        bench_scenario(
            ProtocolKind::Sc,
            BENCH_SHARD_F,
            SCHEME,
            BENCH_INTERVAL_MS,
            BENCH_SEED,
            BENCH_SHARD_WINDOW,
        )
        .shards(MILLION_SHARDS)
        .clients(
            1,
            ClientLoad::poisson(MILLION_RATE_PER_CLIENT, 100)
                .per_shard()
                .population(MILLION_POPULATION),
        ),
    )
    .axis(Axis::world_workers(&MILLION_WORLD_WORKERS))
}

/// Extra pre-GST one-way latency on the coordinator's uplink (~10
/// batching intervals: every pre-GST round crawls).
pub const GST_EXTRA_MS: u64 = 800;

/// The partial-synchrony sensitivity grid: kind × GST position, with a
/// delay-until-GST window scripted on the coordinator.
pub fn gst(shape: &SweepShape) -> SweepGrid {
    let extra = SimDuration::from_ms(GST_EXTRA_MS);
    let mut gst_axis = Axis::new("gst_ms");
    for &ms in &shape.gst_offsets_ms {
        gst_axis = gst_axis.value(ms.to_string(), move |s| {
            s.faults = if ms == 0 {
                Vec::new() // GST at origin: the network is timely throughout.
            } else {
                vec![ScenarioFault::delay_until(
                    ProcessId(0),
                    SimTime::ZERO,
                    SimTime::from_ms(ms),
                    extra,
                )]
            };
        });
    }
    SweepGrid::new(
        bench_scenario(ProtocolKind::Bft, 1, SCHEME, 80, 31, shape.gst_window)
            .clients(1, ClientLoad::constant(120.0, 100)),
    )
    .axis(Axis::kinds(&[ProtocolKind::Bft, ProtocolKind::Ct]))
    .axis(gst_axis)
}
