//! The two grids the declarative Scenario API unlocked (ROADMAP:
//! "multi-client scaling" and "partial-synchrony scenarios everywhere"):
//!
//! * **Multi-client saturation** — offered load × client count across
//!   all four variants at f = 2..4 (§5's observation that saturation
//!   thresholds move with n). Each point is the standard measurement
//!   scenario with the client set swapped; the tables report per-process
//!   throughput and p99 latency against total offered load.
//! * **Partial-synchrony sensitivity** — delivery ratio and mean order
//!   latency vs the Global Stabilization Time for the BFT and CT
//!   baselines: the coordinator's uplink carries ~10 batching intervals
//!   of extra latency until GST (the scenario fault plan's bounded
//!   `Delay` window), then stabilizes. The later GST falls, the more of
//!   the offered load misses the measurement window.
//!
//! Both sweeps are declarative `SweepGrid`s executed on worker
//! threads with deterministic output.
//!
//! ```sh
//! cargo run --release -p sofb-bench --bin scenario_sweeps            # full grids
//! cargo run --release -p sofb-bench --bin scenario_sweeps -- --smoke # CI-sized
//! ```

use sofb_bench::experiments::{bench_scenario, default_workers, Window};
use sofb_crypto::scheme::SchemeId;
use sofb_harness::ProtocolKind;
use sofb_proto::ids::ProcessId;
use sofb_sim::metrics::{render_table, Series};
use sofb_sim::time::{SimDuration, SimTime};
use sofbyz::scenario::{run_grid, Axis, GridReport, ScenarioFault, SweepGrid};

const SCHEME: SchemeId = SchemeId::Md5Rsa1024;

struct Shape {
    saturation_fs: Vec<u32>,
    saturation_counts: Vec<usize>,
    saturation_rates: Vec<f64>,
    saturation_window: Window,
    gst_offsets_ms: Vec<u64>,
    gst_window: Window,
}

impl Shape {
    fn full() -> Self {
        Shape {
            saturation_fs: vec![2, 3, 4],
            saturation_counts: vec![1, 3, 5],
            saturation_rates: vec![60.0, 120.0, 240.0],
            saturation_window: Window {
                warmup_s: 2,
                run_s: 10,
                drain_s: 20,
            },
            gst_offsets_ms: vec![0, 1_000, 2_000, 3_000, 4_000],
            gst_window: Window {
                warmup_s: 0,
                run_s: 6,
                drain_s: 4,
            },
        }
    }

    /// The CI smoke shape: same axes, drastically fewer values and a
    /// short window — exercises the full grid path on every push.
    fn smoke() -> Self {
        Shape {
            saturation_fs: vec![2],
            saturation_counts: vec![1, 3],
            saturation_rates: vec![120.0],
            saturation_window: Window {
                warmup_s: 1,
                run_s: 4,
                drain_s: 4,
            },
            gst_offsets_ms: vec![1_000, 3_000],
            gst_window: Window {
                warmup_s: 0,
                run_s: 4,
                drain_s: 3,
            },
        }
    }
}

fn saturation_grid(shape: &Shape) -> SweepGrid {
    SweepGrid::new(bench_scenario(
        ProtocolKind::Sc,
        2,
        SCHEME,
        100,
        7,
        shape.saturation_window,
    ))
    .axis(Axis::resiliences(&shape.saturation_fs))
    .axis(Axis::kinds(&ProtocolKind::ALL))
    .axis(Axis::client_counts(&shape.saturation_counts))
    .axis(Axis::rates_per_client(&shape.saturation_rates))
}

fn print_saturation(shape: &Shape, report: &GridReport) {
    for &f in &shape.saturation_fs {
        for &count in &shape.saturation_counts {
            let mut tput: Vec<Series> = Vec::new();
            let mut p99: Vec<Series> = Vec::new();
            for kind in ProtocolKind::ALL {
                let mut t = Series::new(kind.to_string());
                let mut l = Series::new(kind.to_string());
                for p in report
                    .points_where("f", &f.to_string())
                    .filter(|p| p.label("kind") == Some(&kind.to_string()))
                    .filter(|p| p.label("clients") == Some(&count.to_string()))
                {
                    let rate: f64 = p.label("rate").unwrap().parse().unwrap();
                    let offered = rate * count as f64;
                    t.push(offered, p.report.throughput_per_process);
                    l.push(offered, p.report.global.p99_ms.unwrap_or(f64::NAN));
                }
                tput.push(t);
                p99.push(l);
            }
            println!("## saturation — f = {f}, {count} client(s), {SCHEME}");
            println!(
                "{}",
                render_table(
                    "offered_req_s",
                    "throughput (committed requests / process / s)",
                    &tput
                )
            );
            println!(
                "{}",
                render_table("offered_req_s", "p99 order latency (ms)", &p99)
            );
        }
    }
}

fn gst_grid(shape: &Shape) -> SweepGrid {
    // ~10 batching intervals of extra one-way latency on the
    // coordinator's uplink until GST: every pre-GST round crawls.
    let extra = SimDuration::from_ms(800);
    let mut gst_axis = Axis::new("gst_ms");
    for &ms in &shape.gst_offsets_ms {
        gst_axis = gst_axis.value(ms.to_string(), move |s| {
            s.faults = if ms == 0 {
                Vec::new() // GST at origin: the network is timely throughout.
            } else {
                vec![ScenarioFault::delay_until(
                    ProcessId(0),
                    SimTime::ZERO,
                    SimTime::from_ms(ms),
                    extra,
                )]
            };
        });
    }
    SweepGrid::new(
        bench_scenario(ProtocolKind::Bft, 1, SCHEME, 80, 31, shape.gst_window)
            .clients(1, sofbyz::scenario::ClientLoad::constant(120.0, 100)),
    )
    .axis(Axis::kinds(&[ProtocolKind::Bft, ProtocolKind::Ct]))
    .axis(gst_axis)
}

fn print_gst(shape: &Shape, report: &GridReport) {
    let mut delivery: Vec<Series> = Vec::new();
    let mut latency: Vec<Series> = Vec::new();
    for kind in [ProtocolKind::Bft, ProtocolKind::Ct] {
        let mut d = Series::new(kind.to_string());
        let mut l = Series::new(kind.to_string());
        for p in report.points_where("kind", &kind.to_string()) {
            let gst_ms: f64 = p.label("gst_ms").unwrap().parse().unwrap();
            let offered = p.scenario.offered_requests();
            let ratio = p.report.committed_requests() as f64 / offered;
            d.push(gst_ms, ratio);
            l.push(gst_ms, p.report.global.mean_ms.unwrap_or(f64::NAN));
        }
        delivery.push(d);
        latency.push(l);
    }
    println!(
        "## partial-synchrony sensitivity — delay-until-GST on the \
         coordinator, f = 1, window {} s",
        shape.gst_window.run_s
    );
    println!(
        "{}",
        render_table(
            "gst_ms",
            "delivery ratio (committed / offered in window)",
            &delivery
        )
    );
    println!(
        "{}",
        render_table("gst_ms", "mean order latency (ms)", &latency)
    );
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let shape = if smoke { Shape::smoke() } else { Shape::full() };
    let workers = default_workers();

    let saturation = run_grid(&saturation_grid(&shape), workers).expect("saturation grid is valid");
    print_saturation(&shape, &saturation);

    let gst = run_grid(&gst_grid(&shape), workers).expect("GST sensitivity grid is valid");
    print_gst(&shape, &gst);

    if smoke {
        // The CI smoke asserts the grids stay meaningful, not just alive.
        for p in &saturation.points {
            assert!(
                p.report.committed_requests() > 0,
                "saturation point {} ({:?}) committed nothing",
                p.index,
                p.labels
            );
        }
        let worst = |kind: &str| {
            let last = shape.gst_offsets_ms.last().unwrap().to_string();
            gst.points
                .iter()
                .find(|p| p.label("kind") == Some(kind) && p.label("gst_ms") == Some(&last))
                .map(|p| p.report.committed_requests())
                .unwrap_or(0)
        };
        assert!(worst("BFT") > 0, "BFT never recovered after GST");
        assert!(worst("CT") > 0, "CT never recovered after GST");
        eprintln!(
            "smoke grids passed: {} saturation points, {} GST points",
            saturation.points.len(),
            gst.points.len()
        );
    }
}
