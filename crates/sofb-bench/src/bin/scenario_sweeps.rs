//! The two grids the declarative Scenario API unlocked (ROADMAP:
//! "multi-client scaling" and "partial-synchrony scenarios everywhere"):
//!
//! * **Multi-client saturation** — offered load × client count across
//!   all four variants at f = 2..4 (§5's observation that saturation
//!   thresholds move with n). Each point is the standard measurement
//!   scenario with the client set swapped; the tables report per-process
//!   throughput and p99 latency against total offered load.
//! * **Partial-synchrony sensitivity** — delivery ratio and mean order
//!   latency vs the Global Stabilization Time for the BFT and CT
//!   baselines: the coordinator's uplink carries ~10 batching intervals
//!   of extra latency until GST (the scenario fault plan's bounded
//!   `Delay` window), then stabilizes. The later GST falls, the more of
//!   the offered load misses the measurement window.
//!
//! Both sweeps are declarative `SweepGrid`s executed on worker
//! threads with deterministic output.
//!
//! ```sh
//! cargo run --release -p sofb-bench --bin scenario_sweeps            # full grids
//! cargo run --release -p sofb-bench --bin scenario_sweeps -- --smoke # CI-sized
//! ```

use sofb_bench::experiments::default_workers;
use sofb_bench::grids::{gst, saturation, SweepShape as Shape, SCHEME};
use sofb_harness::ProtocolKind;
use sofb_sim::metrics::{render_table, Series};
use sofbyz::scenario::{run_grid, GridReport};

fn print_saturation(shape: &Shape, report: &GridReport) {
    for &f in &shape.saturation_fs {
        for &count in &shape.saturation_counts {
            let mut tput: Vec<Series> = Vec::new();
            let mut p99: Vec<Series> = Vec::new();
            for kind in ProtocolKind::ALL {
                let mut t = Series::new(kind.to_string());
                let mut l = Series::new(kind.to_string());
                for p in report
                    .points_where("f", &f.to_string())
                    .filter(|p| p.label("kind") == Some(&kind.to_string()))
                    .filter(|p| p.label("clients") == Some(&count.to_string()))
                {
                    let rate: f64 = p.label("rate").unwrap().parse().unwrap();
                    let offered = rate * count as f64;
                    t.push(offered, p.report.throughput_per_process);
                    l.push(offered, p.report.global.p99_ms.unwrap_or(f64::NAN));
                }
                tput.push(t);
                p99.push(l);
            }
            println!("## saturation — f = {f}, {count} client(s), {SCHEME}");
            println!(
                "{}",
                render_table(
                    "offered_req_s",
                    "throughput (committed requests / process / s)",
                    &tput
                )
            );
            println!(
                "{}",
                render_table("offered_req_s", "p99 order latency (ms)", &p99)
            );
        }
    }
}

fn print_gst(shape: &Shape, report: &GridReport) {
    let mut delivery: Vec<Series> = Vec::new();
    let mut latency: Vec<Series> = Vec::new();
    for kind in [ProtocolKind::Bft, ProtocolKind::Ct] {
        let mut d = Series::new(kind.to_string());
        let mut l = Series::new(kind.to_string());
        for p in report.points_where("kind", &kind.to_string()) {
            let gst_ms: f64 = p.label("gst_ms").unwrap().parse().unwrap();
            let offered = p.scenario.offered_requests();
            let ratio = p.report.committed_requests() as f64 / offered;
            d.push(gst_ms, ratio);
            l.push(gst_ms, p.report.global.mean_ms.unwrap_or(f64::NAN));
        }
        delivery.push(d);
        latency.push(l);
    }
    println!(
        "## partial-synchrony sensitivity — delay-until-GST on the \
         coordinator, f = 1, window {} s",
        shape.gst_window.run_s
    );
    println!(
        "{}",
        render_table(
            "gst_ms",
            "delivery ratio (committed / offered in window)",
            &delivery
        )
    );
    println!(
        "{}",
        render_table("gst_ms", "mean order latency (ms)", &latency)
    );
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let shape = if smoke { Shape::smoke() } else { Shape::full() };
    let workers = default_workers();

    let saturation_report =
        run_grid(&saturation(&shape), workers).expect("saturation grid is valid");
    print_saturation(&shape, &saturation_report);

    let gst_report = run_grid(&gst(&shape), workers).expect("GST sensitivity grid is valid");
    print_gst(&shape, &gst_report);

    if smoke {
        // The CI smoke asserts the grids stay meaningful, not just alive.
        for p in &saturation_report.points {
            assert!(
                p.report.committed_requests() > 0,
                "saturation point {} ({:?}) committed nothing",
                p.index,
                p.labels
            );
        }
        let worst = |kind: &str| {
            let last = shape.gst_offsets_ms.last().unwrap().to_string();
            gst_report
                .points
                .iter()
                .find(|p| p.label("kind") == Some(kind) && p.label("gst_ms") == Some(&last))
                .map(|p| p.report.committed_requests())
                .unwrap_or(0)
        };
        assert!(worst("BFT") > 0, "BFT never recovered after GST");
        assert!(worst("CT") > 0, "CT never recovered after GST");
        eprintln!(
            "smoke grids passed: {} saturation points, {} GST points",
            saturation_report.points.len(),
            gst_report.points.len()
        );
    }
}
