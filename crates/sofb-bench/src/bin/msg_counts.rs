//! Ablation for the Figure 3 discussion: messages transmitted per
//! committed batch under each protocol.
//!
//! SC's phases are 1→1, 2→n, n→n; BFT's are 1→n, n→n, n→n; CT's are 1→n,
//! n→n. The endorsement phase replacing BFT's prepare phase is the
//! paper's claimed message-overhead win — this binary quantifies it.

use sofb_bench::experiments::{bft_point, ct_point, sc_point, Window};
use sofb_crypto::scheme::SchemeId;
use sofb_proto::topology::Variant;

fn main() {
    let window = Window {
        warmup_s: 2,
        run_s: 10,
        drain_s: 20,
    };
    let interval = 200;
    let scheme = SchemeId::Md5Rsa1024;
    println!("## Messages per committed batch (f = 2, interval {interval} ms, {scheme})\n");
    println!("{:>10} {:>16} {:>10}", "protocol", "msgs/batch", "n");
    for f in [2u32, 3] {
        let sc = sc_point(f, Variant::Sc, scheme, interval, 7, window);
        let bft = bft_point(f, scheme, interval, 7, window);
        let ct = ct_point(f, interval, 7, window);
        println!("# f = {f}");
        println!("{:>10} {:>16.1} {:>10}", "SC", sc.msgs_per_batch, 3 * f + 1);
        println!(
            "{:>10} {:>16.1} {:>10}",
            "BFT",
            bft.msgs_per_batch,
            3 * f + 1
        );
        println!("{:>10} {:>16.1} {:>10}", "CT", ct.msgs_per_batch, 2 * f + 1);
    }
    println!("\nExpected ordering: CT < SC < BFT at equal f (BFT's prepare phase\nis an extra n-to-n exchange that SC's 1-to-1 endorsement replaces).");
}
