//! Ablation for the Figure 3 discussion: messages transmitted per
//! committed batch under each protocol — one declarative `SweepGrid`
//! (f × kind) at a fixed 200 ms interval.
//!
//! SC's phases are 1→1, 2→n, n→n; BFT's are 1→n, n→n, n→n; CT's are 1→n,
//! n→n. The endorsement phase replacing BFT's prepare phase is the
//! paper's claimed message-overhead win — this binary quantifies it.

use sofb_bench::experiments::default_workers;
use sofb_bench::grids::{msg_counts, MSG_COUNT_INTERVAL_MS, SCHEME};
use sofbyz::scenario::run_grid;

fn main() {
    let interval = MSG_COUNT_INTERVAL_MS;
    let scheme = SCHEME;
    let report = run_grid(&msg_counts(), default_workers()).expect("msg-count grid is valid");

    println!("## Messages per committed batch (f = 2, interval {interval} ms, {scheme})\n");
    println!("{:>10} {:>16} {:>10}", "protocol", "msgs/batch", "n");
    for f in [2u32, 3] {
        println!("# f = {f}");
        for p in report.points_where("f", &f.to_string()) {
            let kind = p.label("kind").unwrap();
            let n = p.scenario.nodes_per_shard();
            println!("{:>10} {:>16.1} {:>10}", kind, p.report.msgs_per_batch, n);
        }
    }
    println!("\nExpected ordering: CT < SC < BFT at equal f (BFT's prepare phase\nis an extra n-to-n exchange that SC's 1-to-1 endorsement replaces).");
}
