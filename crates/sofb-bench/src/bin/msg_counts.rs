//! Ablation for the Figure 3 discussion: messages transmitted per
//! committed batch under each protocol — one declarative `SweepGrid`
//! (f × kind) at a fixed 200 ms interval.
//!
//! SC's phases are 1→1, 2→n, n→n; BFT's are 1→n, n→n, n→n; CT's are 1→n,
//! n→n. The endorsement phase replacing BFT's prepare phase is the
//! paper's claimed message-overhead win — this binary quantifies it.

use sofb_bench::experiments::{bench_scenario, default_workers, Window};
use sofb_crypto::scheme::SchemeId;
use sofb_harness::ProtocolKind;
use sofbyz::scenario::{run_grid, Axis, SweepGrid};

const KINDS: [ProtocolKind; 3] = [ProtocolKind::Sc, ProtocolKind::Bft, ProtocolKind::Ct];

fn main() {
    let window = Window {
        warmup_s: 2,
        run_s: 10,
        drain_s: 20,
    };
    let interval = 200;
    let scheme = SchemeId::Md5Rsa1024;

    let grid = SweepGrid::new(bench_scenario(
        ProtocolKind::Sc,
        2,
        scheme,
        interval,
        7,
        window,
    ))
    .axis(Axis::resiliences(&[2, 3]))
    .axis(Axis::kinds(&KINDS));
    let report = run_grid(&grid, default_workers()).expect("msg-count grid is valid");

    println!("## Messages per committed batch (f = 2, interval {interval} ms, {scheme})\n");
    println!("{:>10} {:>16} {:>10}", "protocol", "msgs/batch", "n");
    for f in [2u32, 3] {
        println!("# f = {f}");
        for p in report.points_where("f", &f.to_string()) {
            let kind = p.label("kind").unwrap();
            let n = p.scenario.nodes_per_shard();
            println!("{:>10} {:>16.1} {:>10}", kind, p.report.msgs_per_batch, n);
        }
    }
    println!("\nExpected ordering: CT < SC < BFT at equal f (BFT's prepare phase\nis an extra n-to-n exchange that SC's 1-to-1 endorsement replaces).");
}
