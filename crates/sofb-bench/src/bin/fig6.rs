//! Figure 6 regenerator: fail-over latency vs BackLog size for SC and SCR
//! at f = 2, all three crypto techniques.
//!
//! A single value-domain fault is injected at the rank-1 coordinator
//! replica; fail-over latency is the interval between the fail-signal
//! issuance and the new coordinator's Start with its f+1
//! identifier-signature tuples. Expected shape: linear growth with
//! BackLog size; SCR ≥ SC.

use sofb_bench::experiments::failover_avg;
use sofb_crypto::scheme::SchemeId;
use sofb_proto::topology::Variant;
use sofb_sim::metrics::{render_table, Series};

fn main() {
    let pads_kb: Vec<usize> = vec![1, 2, 3, 4, 5];
    let runs = 20;

    let mut series: Vec<Series> = Vec::new();
    for scheme in SchemeId::PAPER {
        for (variant, label) in [(Variant::Sc, "SC"), (Variant::Scr, "SCR")] {
            let mut s = Series::new(format!("{label}/{scheme}"));
            for &kb in &pads_kb {
                let ms = failover_avg(variant, scheme, kb * 1024, runs).unwrap_or(f64::NAN);
                s.push(kb as f64, ms);
            }
            series.push(s);
        }
    }
    println!("## Figure 6 — fail-over latency, f = 2 (avg over {runs} runs)\n");
    println!(
        "{}",
        render_table("backlog_kb", "fail-over latency (ms)", &series)
    );
}
