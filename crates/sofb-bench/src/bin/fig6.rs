//! Figure 6 regenerator: fail-over latency vs BackLog size for SC and SCR
//! at f = 2, all three crypto techniques — one declarative `SweepGrid`
//! (scheme × variant × pad), replicated across 20 seeds, executed on
//! worker threads.
//!
//! A single value-domain fault is injected at the rank-1 coordinator
//! replica (the scenario fault plan's `CorruptOrderAt`); fail-over
//! latency is the interval between the fail-signal issuance and the new
//! coordinator's Start with its f+1 identifier-signature tuples.
//! Expected shape: linear growth with BackLog size; SCR ≥ SC.

use sofb_bench::experiments::default_workers;
use sofb_bench::grids::{fig6, FIG6_PADS_KB, FIG6_RUNS};
use sofb_crypto::scheme::SchemeId;
use sofb_harness::ProtocolKind;
use sofb_sim::metrics::{render_table, Series};
use sofbyz::scenario::run_grid;

fn main() {
    let pads_kb = FIG6_PADS_KB;
    let runs = FIG6_RUNS;
    let report = run_grid(&fig6(), default_workers()).expect("figure 6 grid is valid");

    let mut series: Vec<Series> = Vec::new();
    for scheme in SchemeId::PAPER {
        for kind in [ProtocolKind::Sc, ProtocolKind::Scr] {
            let mut s = Series::new(format!("{kind}/{scheme}"));
            for kb in pads_kb {
                // Average the fail-over latency over the seed replicates
                // that measured one (the paper averages per point).
                let samples: Vec<f64> = report
                    .points_where("scheme", &scheme.to_string())
                    .filter(|p| p.label("kind") == Some(&kind.to_string()))
                    .filter(|p| p.label("backlog_kb") == Some(&kb.to_string()))
                    .filter_map(|p| p.report.failover_ms)
                    .collect();
                let ms = if samples.is_empty() {
                    f64::NAN
                } else {
                    samples.iter().sum::<f64>() / samples.len() as f64
                };
                s.push(kb as f64, ms);
            }
            series.push(s);
        }
    }
    println!("## Figure 6 — fail-over latency, f = 2 (avg over {runs} runs)\n");
    println!(
        "{}",
        render_table("backlog_kb", "fail-over latency (ms)", &series)
    );
}
