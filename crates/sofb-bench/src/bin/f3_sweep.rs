//! The §5 f = 3 observation: "as we increase f to 3 ... the saturation
//! thresholds are encountered at larger batching_intervals, and the order
//! latencies in the steady state increase" (each process authenticates
//! and processes more messages as n grows).
//!
//! One declarative `SweepGrid` (f × kind × interval) reruns the
//! Figure-4 latency measurement at f = 2 and f = 3 under MD5+RSA-1024 so
//! the two claims can be checked side by side.

use sofb_bench::experiments::default_workers;
use sofb_bench::grids::{f3_sweep, F3_KINDS as KINDS, SCHEME};
use sofb_sim::metrics::{render_table, Series};
use sofbyz::scenario::run_grid;

fn main() {
    let scheme = SCHEME;
    let report = run_grid(&f3_sweep(), default_workers()).expect("f=3 sweep grid is valid");

    let mut series = Vec::new();
    for f in [2u32, 3] {
        for kind in KINDS {
            let mut s = Series::new(format!("{kind} f={f}"));
            for p in report
                .points_where("f", &f.to_string())
                .filter(|p| p.label("kind") == Some(&kind.to_string()))
            {
                let ms: f64 = p.label("interval_ms").unwrap().parse().unwrap();
                s.push(ms, p.report.global.mean_ms.unwrap_or(f64::NAN));
            }
            series.push(s);
        }
    }
    println!("## §5 f=3 trend — order latency, {scheme}\n");
    println!(
        "{}",
        render_table("interval_ms", "order latency (ms)", &series)
    );
}
