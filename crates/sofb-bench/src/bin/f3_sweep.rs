//! The §5 f = 3 observation: "as we increase f to 3 ... the saturation
//! thresholds are encountered at larger batching_intervals, and the order
//! latencies in the steady state increase" (each process authenticates
//! and processes more messages as n grows).
//!
//! This sweep reruns the Figure-4 latency measurement at f = 2 and f = 3
//! under MD5+RSA-1024 so the two claims can be checked side by side.

use sofb_bench::experiments::{bft_point, sc_point, Window};
use sofb_crypto::scheme::SchemeId;
use sofb_proto::topology::Variant;
use sofb_sim::metrics::{render_table, Series};

fn main() {
    let intervals: Vec<u64> = vec![40, 60, 80, 100, 150, 200, 300, 400, 500];
    let window = Window::default();
    let scheme = SchemeId::Md5Rsa1024;

    let mut series = Vec::new();
    for f in [2u32, 3] {
        let mut sc = Series::new(format!("SC f={f}"));
        let mut bft = Series::new(format!("BFT f={f}"));
        for &ms in &intervals {
            let seed = 242 + ms + u64::from(f);
            sc.push(
                ms as f64,
                sc_point(f, Variant::Sc, scheme, ms, seed, window)
                    .latency_ms
                    .unwrap_or(f64::NAN),
            );
            bft.push(
                ms as f64,
                bft_point(f, scheme, ms, seed, window)
                    .latency_ms
                    .unwrap_or(f64::NAN),
            );
        }
        series.push(sc);
        series.push(bft);
    }
    println!("## §5 f=3 trend — order latency, {scheme}\n");
    println!(
        "{}",
        render_table("interval_ms", "order latency (ms)", &series)
    );
}
