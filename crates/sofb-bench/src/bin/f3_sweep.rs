//! The §5 f = 3 observation: "as we increase f to 3 ... the saturation
//! thresholds are encountered at larger batching_intervals, and the order
//! latencies in the steady state increase" (each process authenticates
//! and processes more messages as n grows).
//!
//! One declarative `SweepGrid` (f × kind × interval) reruns the
//! Figure-4 latency measurement at f = 2 and f = 3 under MD5+RSA-1024 so
//! the two claims can be checked side by side.

use sofb_bench::experiments::{bench_scenario, default_workers, Window};
use sofb_crypto::scheme::SchemeId;
use sofb_harness::ProtocolKind;
use sofb_sim::metrics::{render_table, Series};
use sofbyz::scenario::{run_grid, Axis, SweepGrid};

const KINDS: [ProtocolKind; 2] = [ProtocolKind::Sc, ProtocolKind::Bft];

fn main() {
    let intervals: [u64; 9] = [40, 60, 80, 100, 150, 200, 300, 400, 500];
    let window = Window::default();
    let scheme = SchemeId::Md5Rsa1024;

    // The historical seeding varies with interval *and* f; the interval
    // axis runs after the f axis, so its patch can read the f already
    // written into the scenario.
    let mut interval_axis = Axis::new("interval_ms");
    for ms in intervals {
        interval_axis = interval_axis.value(ms.to_string(), move |s| {
            s.knobs.batching_interval = sofb_sim::time::SimDuration::from_ms(ms);
            s.knobs.seed = 242 + ms + u64::from(s.knobs.f);
        });
    }
    let grid = SweepGrid::new(bench_scenario(
        ProtocolKind::Sc,
        2,
        scheme,
        intervals[0],
        242,
        window,
    ))
    .axis(Axis::resiliences(&[2, 3]))
    .axis(Axis::kinds(&KINDS))
    .axis(interval_axis);
    let report = run_grid(&grid, default_workers()).expect("f=3 sweep grid is valid");

    let mut series = Vec::new();
    for f in [2u32, 3] {
        for kind in KINDS {
            let mut s = Series::new(format!("{kind} f={f}"));
            for p in report
                .points_where("f", &f.to_string())
                .filter(|p| p.label("kind") == Some(&kind.to_string()))
            {
                let ms: f64 = p.label("interval_ms").unwrap().parse().unwrap();
                s.push(ms, p.report.global.mean_ms.unwrap_or(f64::NAN));
            }
            series.push(s);
        }
    }
    println!("## §5 f=3 trend — order latency, {scheme}\n");
    println!(
        "{}",
        render_table("interval_ms", "order latency (ms)", &series)
    );
}
