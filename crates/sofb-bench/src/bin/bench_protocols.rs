//! Machine-readable protocol smoke benchmark: one fixed-seed run per
//! variant (SC, SCR, BFT, CT) through the unified harness, written to
//! `BENCH_protocols.json` so successive changes have a perf trajectory to
//! compare against.
//!
//! ```sh
//! cargo run --release -p sofb-bench --bin bench_protocols [out.json]
//! cargo run --release -p sofb-bench --bin bench_protocols -- --check [committed.json]
//! ```
//!
//! `--check` regenerates the measurements in memory and fails (exit 1)
//! if any throughput/latency/msgs-per-batch value drifts from the
//! committed file by more than 1e-9 — the CI determinism gate. `wall_ms`
//! is machine-dependent and excluded.

use std::fmt::Write as _;
use std::time::Instant;

use sofb_bench::experiments::{protocol_point, Window};
use sofb_crypto::scheme::SchemeId;
use sofb_harness::ProtocolKind;

const F: u32 = 2;
const SCHEME: SchemeId = SchemeId::Md5Rsa1024;
const INTERVAL_MS: u64 = 100;
const SEED: u64 = 7;
const WINDOW: Window = Window {
    warmup_s: 2,
    run_s: 10,
    drain_s: 15,
};

/// Metric drift beyond this fails `--check`.
const TOLERANCE: f64 = 1e-9;

fn json_num(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.3}"),
        _ => "null".to_string(),
    }
}

struct VariantRow {
    name: String,
    throughput: f64,
    mean_ms: Option<f64>,
    p50_ms: Option<f64>,
    p99_ms: Option<f64>,
    msgs_per_batch: f64,
    wall_ms: f64,
}

fn measure() -> Vec<VariantRow> {
    ProtocolKind::ALL
        .iter()
        .map(|kind| {
            let wall = Instant::now();
            let p = protocol_point(*kind, F, SCHEME, INTERVAL_MS, SEED, WINDOW);
            let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
            eprintln!(
                "{kind}: throughput {:.1} req/proc/s, latency p50 {} / p99 {} ms ({wall_ms:.0} ms wall)",
                p.throughput,
                json_num(p.p50_ms),
                json_num(p.p99_ms),
            );
            VariantRow {
                name: kind.to_string(),
                throughput: p.throughput,
                mean_ms: p.latency_ms,
                p50_ms: p.p50_ms,
                p99_ms: p.p99_ms,
                msgs_per_batch: p.msgs_per_batch,
                wall_ms,
            }
        })
        .collect()
}

fn render(rows: &[VariantRow]) -> String {
    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"schema\": \"sofbyz-bench-protocols/v1\",").unwrap();
    writeln!(body, "  \"f\": {F},").unwrap();
    writeln!(body, "  \"interval_ms\": {INTERVAL_MS},").unwrap();
    writeln!(body, "  \"seed\": {SEED},").unwrap();
    writeln!(body, "  \"scheme\": \"{SCHEME}\",").unwrap();
    writeln!(
        body,
        "  \"window_s\": {{\"warmup\": {}, \"run\": {}, \"drain\": {}}},",
        WINDOW.warmup_s, WINDOW.run_s, WINDOW.drain_s
    )
    .unwrap();
    writeln!(body, "  \"variants\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        writeln!(body, "    {{").unwrap();
        writeln!(body, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(
            body,
            "      \"throughput_req_per_proc_s\": {:.3},",
            r.throughput
        )
        .unwrap();
        writeln!(body, "      \"latency_ms\": {{").unwrap();
        writeln!(body, "        \"mean\": {},", json_num(r.mean_ms)).unwrap();
        writeln!(body, "        \"p50\": {},", json_num(r.p50_ms)).unwrap();
        writeln!(body, "        \"p99\": {}", json_num(r.p99_ms)).unwrap();
        writeln!(body, "      }},").unwrap();
        writeln!(body, "      \"msgs_per_batch\": {:.3},", r.msgs_per_batch).unwrap();
        writeln!(body, "      \"wall_ms\": {:.1}", r.wall_ms).unwrap();
        writeln!(body, "    }}{}", if i + 1 < rows.len() { "," } else { "" }).unwrap();
    }
    writeln!(body, "  ]").unwrap();
    writeln!(body, "}}").unwrap();
    body
}

/// Pulls `"key": value` numbers out of the committed JSON (the emitter
/// above is the only writer, so line-based extraction is sufficient —
/// no JSON dependency needed).
fn extract_metrics(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut variant = String::new();
    for line in json.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            variant = rest.trim_end_matches(['"', ','].as_slice()).to_string();
            continue;
        }
        for key in [
            "throughput_req_per_proc_s",
            "mean",
            "p50",
            "p99",
            "msgs_per_batch",
        ] {
            let Some(rest) = line.strip_prefix(&format!("\"{key}\": ")) else {
                continue;
            };
            let raw = rest.trim_end_matches(',');
            if raw == "null" {
                out.push((format!("{variant}.{key}"), f64::NAN));
            } else if let Ok(v) = raw.parse::<f64>() {
                out.push((format!("{variant}.{key}"), v));
            }
        }
    }
    out
}

fn check(rows: &[VariantRow], committed_path: &str) -> Result<(), String> {
    let committed = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("cannot read {committed_path}: {e}"))?;
    let want = extract_metrics(&committed);
    let got = extract_metrics(&render(rows));
    if want.is_empty() {
        return Err(format!("{committed_path}: no metrics found"));
    }
    if want.len() != got.len() {
        return Err(format!(
            "metric count mismatch: committed {} vs regenerated {}",
            want.len(),
            got.len()
        ));
    }
    let mut drifts = Vec::new();
    for ((wk, wv), (gk, gv)) in want.iter().zip(&got) {
        if wk != gk {
            return Err(format!("metric order mismatch: {wk} vs {gk}"));
        }
        let same = (wv.is_nan() && gv.is_nan()) || (wv - gv).abs() <= TOLERANCE;
        if !same {
            drifts.push(format!("  {wk}: committed {wv} vs regenerated {gv}"));
        }
    }
    if drifts.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} metric(s) drifted beyond {TOLERANCE}:\n{}",
            drifts.len(),
            drifts.join("\n")
        ))
    }
}

fn main() {
    let mut checking = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => checking = true,
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag {flag} (supported: --check [path])");
                std::process::exit(2);
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => {
                eprintln!("error: unexpected extra argument {extra}");
                std::process::exit(2);
            }
        }
    }
    let path = path.unwrap_or_else(|| "BENCH_protocols.json".to_string());

    let rows = measure();
    if checking {
        match check(&rows, &path) {
            Ok(()) => eprintln!("check passed: regenerated metrics match {path}"),
            Err(e) => {
                eprintln!("check FAILED against {path}:\n{e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Err(e) = std::fs::write(&path, render(&rows)) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}
