//! Machine-readable protocol smoke benchmark: one fixed-seed run per
//! variant (SC, SCR, BFT, CT) through the unified harness, written to
//! `BENCH_protocols.json` so successive changes have a perf trajectory to
//! compare against.
//!
//! ```sh
//! cargo run --release -p sofb-bench --bin bench_protocols [out.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use sofb_bench::experiments::{protocol_point, Window};
use sofb_crypto::scheme::SchemeId;
use sofb_harness::ProtocolKind;

const F: u32 = 2;
const INTERVAL_MS: u64 = 100;
const SEED: u64 = 7;
const WINDOW: Window = Window {
    warmup_s: 2,
    run_s: 10,
    drain_s: 15,
};

fn json_num(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.3}"),
        _ => "null".to_string(),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_protocols.json".to_string());
    let scheme = SchemeId::Md5Rsa1024;

    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"schema\": \"sofbyz-bench-protocols/v1\",").unwrap();
    writeln!(body, "  \"f\": {F},").unwrap();
    writeln!(body, "  \"interval_ms\": {INTERVAL_MS},").unwrap();
    writeln!(body, "  \"seed\": {SEED},").unwrap();
    writeln!(body, "  \"scheme\": \"{scheme}\",").unwrap();
    writeln!(
        body,
        "  \"window_s\": {{\"warmup\": {}, \"run\": {}, \"drain\": {}}},",
        WINDOW.warmup_s, WINDOW.run_s, WINDOW.drain_s
    )
    .unwrap();
    writeln!(body, "  \"variants\": [").unwrap();

    for (i, kind) in ProtocolKind::ALL.iter().enumerate() {
        let wall = Instant::now();
        let p = protocol_point(*kind, F, scheme, INTERVAL_MS, SEED, WINDOW);
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "{kind}: throughput {:.1} req/proc/s, latency p50 {} / p99 {} ms ({wall_ms:.0} ms wall)",
            p.throughput,
            json_num(p.p50_ms),
            json_num(p.p99_ms),
        );
        writeln!(body, "    {{").unwrap();
        writeln!(body, "      \"name\": \"{kind}\",").unwrap();
        writeln!(
            body,
            "      \"throughput_req_per_proc_s\": {:.3},",
            p.throughput
        )
        .unwrap();
        writeln!(body, "      \"latency_ms\": {{").unwrap();
        writeln!(body, "        \"mean\": {},", json_num(p.latency_ms)).unwrap();
        writeln!(body, "        \"p50\": {},", json_num(p.p50_ms)).unwrap();
        writeln!(body, "        \"p99\": {}", json_num(p.p99_ms)).unwrap();
        writeln!(body, "      }},").unwrap();
        writeln!(body, "      \"msgs_per_batch\": {:.3},", p.msgs_per_batch).unwrap();
        writeln!(body, "      \"wall_ms\": {wall_ms:.1}").unwrap();
        writeln!(
            body,
            "    }}{}",
            if i + 1 < ProtocolKind::ALL.len() {
                ","
            } else {
                ""
            }
        )
        .unwrap();
    }

    writeln!(body, "  ]").unwrap();
    writeln!(body, "}}").unwrap();

    if let Err(e) = std::fs::write(&out_path, &body) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
