//! Machine-readable protocol smoke benchmark: one fixed-seed run per
//! variant (SC, SCR, BFT, CT), a per-phase breakdown (a short traced
//! run per variant, dispatch and protocol-phase records aggregated by
//! name), a sharded section (SC at 1 and 2 ordering groups, fixed
//! per-shard load), and a parallel-scaling section (a 2-shard world of
//! 10⁵ aggregated Poisson clients at 1 vs 2 world workers), written to
//! `BENCH_protocols.json` so successive changes have a perf trajectory
//! to compare against.
//!
//! Both sections are declarative `SweepGrid`s over `Scenario`
//! values — the flat grid sweeps the protocol-kind axis, the sharded
//! grid the shard-count axis — executed in parallel with deterministic
//! output.
//!
//! ```sh
//! cargo run --release -p sofb-bench --bin bench_protocols [out.json]
//! cargo run --release -p sofb-bench --bin bench_protocols -- --check [committed.json]
//! ```
//!
//! `--check` regenerates the measurements in memory and fails (exit 1)
//! if any throughput/latency/msgs-per-batch value drifts from the
//! committed file by more than 1e-9 — the CI determinism gate. `wall_ms`
//! and the host-performance sections (events/sec, sim-seconds per
//! wall-second, allocs/event) are machine-dependent and excluded: only
//! the keys listed in `extract_metrics` are gated.

/// Counting allocator: the `allocs_per_event` host counter is the whole
/// process's allocation count over the whole measurement, divided by
/// dispatched engine callbacks — an honest end-to-end figure that
/// includes analysis and reporting overhead.
#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc::new();

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sofb_bench::experiments::{bench_scenario, default_workers, ProtocolKind, Window};
use sofb_bench::grids::{
    bench_flat, bench_sharded, million_clients, BENCH_F as F, BENCH_INTERVAL_MS as INTERVAL_MS,
    BENCH_SEED as SEED, BENCH_SHARD_F as SHARD_F,
    BENCH_SHARD_RATE_PER_CLIENT as SHARD_RATE_PER_CLIENT, BENCH_SHARD_WINDOW as SHARD_WINDOW,
    BENCH_WINDOW as WINDOW, MILLION_POPULATION, MILLION_RATE_PER_CLIENT, MILLION_SHARDS, SCHEME,
};
use sofb_sim::metrics::{EngineCounters, HostCounters};
use sofbyz::obs::TraceConfig;
use sofbyz::scenario::{run_grid, run_observed, GridPoint};

/// Metric drift beyond this fails `--check`.
const TOLERANCE: f64 = 1e-9;

fn json_num(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.3}"),
        _ => "null".to_string(),
    }
}

struct VariantRow {
    name: String,
    throughput: f64,
    mean_ms: Option<f64>,
    p50_ms: Option<f64>,
    p99_ms: Option<f64>,
    msgs_per_batch: f64,
    wall_ms: f64,
    engine: EngineCounters,
}

fn measure() -> Vec<VariantRow> {
    let report = run_grid(&bench_flat(), default_workers()).expect("flat smoke grid is valid");
    report
        .points
        .iter()
        .map(|p: &GridPoint| {
            let name = p.label("kind").expect("kind axis").to_string();
            eprintln!(
                "{name}: throughput {:.1} req/proc/s, latency p50 {} / p99 {} ms ({:.0} ms wall)",
                p.report.throughput_per_process,
                json_num(p.report.global.p50_ms),
                json_num(p.report.global.p99_ms),
                p.wall_ms,
            );
            VariantRow {
                name,
                throughput: p.report.throughput_per_process,
                mean_ms: p.report.global.mean_ms,
                p50_ms: p.report.global.p50_ms,
                p99_ms: p.report.global.p99_ms,
                msgs_per_batch: p.report.msgs_per_batch,
                wall_ms: p.wall_ms,
                engine: p.report.engine,
            }
        })
        .collect()
}

/// The short window the per-phase breakdown traces over — the
/// breakdown is about *where time goes*, not absolute throughput, so a
/// few seconds of sim time per variant is plenty.
const PHASE_WINDOW: Window = Window {
    warmup_s: 0,
    run_s: 2,
    drain_s: 3,
};

struct PhaseRow {
    variant: String,
    /// `(phase name, record count, summed busy sim-time ns)` in sorted
    /// name order — deterministic, but not gated (no key here appears in
    /// `extract_metrics`, and no `"name":` line resets the variant
    /// prefix).
    phases: Vec<(String, u64, u64)>,
}

/// One short traced run per variant: engine dispatch spans plus derived
/// protocol phase spans, aggregated by record name.
fn measure_phases() -> Vec<PhaseRow> {
    ProtocolKind::ALL
        .into_iter()
        .map(|kind| {
            let scenario = bench_scenario(kind, F, SCHEME, INTERVAL_MS, SEED, PHASE_WINDOW);
            let run = run_observed(&scenario, &TraceConfig::default()).expect("phase run is valid");
            let mut agg: BTreeMap<String, (u64, u64)> = BTreeMap::new();
            for rec in &run.records {
                let slot = agg.entry(rec.name.clone()).or_default();
                slot.0 += 1;
                slot.1 += rec.dur_ns;
            }
            eprintln!(
                "{kind} phases: {} record(s) across {} name(s)",
                run.records.len(),
                agg.len()
            );
            PhaseRow {
                variant: kind.to_string(),
                phases: agg.into_iter().map(|(k, (n, ns))| (k, n, ns)).collect(),
            }
        })
        .collect()
}

struct ShardedRow {
    name: String,
    shards: usize,
    aggregate_throughput: f64,
    mean_ms: Option<f64>,
    p50_ms: Option<f64>,
    p99_ms: Option<f64>,
    msgs_per_batch: f64,
    wall_ms: f64,
    engine: EngineCounters,
}

fn measure_sharded() -> Vec<ShardedRow> {
    let report =
        run_grid(&bench_sharded(), default_workers()).expect("sharded smoke grid is valid");
    report
        .points
        .iter()
        .map(|p| {
            let shards: usize = p.label("shards").expect("shards axis").parse().unwrap();
            eprintln!(
                "SC×{shards}: aggregate {:.1} req/s, global p50 {} / p99 {} ms ({:.0} ms wall)",
                p.report.aggregate_throughput,
                json_num(p.report.global.p50_ms),
                json_num(p.report.global.p99_ms),
                p.wall_ms,
            );
            ShardedRow {
                name: format!("SC/{shards}"),
                shards,
                aggregate_throughput: p.report.aggregate_throughput,
                mean_ms: p.report.global.mean_ms,
                p50_ms: p.report.global.p50_ms,
                p99_ms: p.report.global.p99_ms,
                msgs_per_batch: p.report.msgs_per_batch,
                wall_ms: p.wall_ms,
                engine: p.report.engine,
            }
        })
        .collect()
}

struct ScalingRow {
    world_workers: usize,
    committed: usize,
    wall_ms: f64,
    engine: EngineCounters,
}

/// Runs the `million_clients` grid on ONE grid worker — the world-worker
/// axis is the concurrency under test, so grid-level parallelism must
/// not contaminate the wall clock. Both points compute the identical
/// world (the 1-vs-N determinism invariant); only the wall time moves.
fn measure_parallel() -> Vec<ScalingRow> {
    let report = run_grid(&million_clients(), 1).expect("million_clients grid is valid");
    report
        .points
        .iter()
        .map(|p| {
            let world_workers: usize = p
                .label("world_workers")
                .expect("world_workers axis")
                .parse()
                .unwrap();
            eprintln!(
                "million_clients ×{world_workers} world worker(s): {} events, {:.0} ms wall",
                p.report.engine.events_processed, p.wall_ms,
            );
            ScalingRow {
                world_workers,
                committed: p.report.committed_requests(),
                wall_ms: p.wall_ms,
                engine: p.report.engine,
            }
        })
        .collect()
}

/// Renders one row's host-performance object: deterministic engine
/// counters plus wall-derived rates. Everything here is excluded from
/// the `--check` gate (none of its keys appear in `extract_metrics`).
fn render_row_host(body: &mut String, engine: EngineCounters, wall_ms: f64) {
    let host = HostCounters {
        engine,
        wall_ns: (wall_ms * 1e6) as u64,
        allocations: 0,
    };
    writeln!(body, "      \"host\": {{").unwrap();
    writeln!(
        body,
        "        \"events_processed\": {},",
        engine.events_processed
    )
    .unwrap();
    writeln!(body, "        \"heap_pushes\": {},", engine.heap_pushes).unwrap();
    writeln!(
        body,
        "        \"arena_high_water\": {},",
        engine.arena_high_water
    )
    .unwrap();
    writeln!(body, "        \"sim_ns\": {},", engine.sim_ns).unwrap();
    writeln!(
        body,
        "        \"events_per_sec\": {:.0},",
        host.events_per_sec()
    )
    .unwrap();
    writeln!(body, "        \"sim_per_wall\": {:.1}", host.sim_per_wall()).unwrap();
    writeln!(body, "      }}").unwrap();
}

fn render(
    rows: &[VariantRow],
    phases: &[PhaseRow],
    sharded: &[ShardedRow],
    scaling: &[ScalingRow],
    process: &HostCounters,
) -> String {
    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"schema\": \"sofbyz-bench-protocols/v3\",").unwrap();
    writeln!(body, "  \"f\": {F},").unwrap();
    writeln!(body, "  \"interval_ms\": {INTERVAL_MS},").unwrap();
    writeln!(body, "  \"seed\": {SEED},").unwrap();
    writeln!(body, "  \"scheme\": \"{SCHEME}\",").unwrap();
    writeln!(
        body,
        "  \"window_s\": {{\"warmup\": {}, \"run\": {}, \"drain\": {}}},",
        WINDOW.warmup_s, WINDOW.run_s, WINDOW.drain_s
    )
    .unwrap();
    writeln!(body, "  \"variants\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        writeln!(body, "    {{").unwrap();
        writeln!(body, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(
            body,
            "      \"throughput_req_per_proc_s\": {:.3},",
            r.throughput
        )
        .unwrap();
        writeln!(body, "      \"latency_ms\": {{").unwrap();
        writeln!(body, "        \"mean\": {},", json_num(r.mean_ms)).unwrap();
        writeln!(body, "        \"p50\": {},", json_num(r.p50_ms)).unwrap();
        writeln!(body, "        \"p99\": {}", json_num(r.p99_ms)).unwrap();
        writeln!(body, "      }},").unwrap();
        writeln!(body, "      \"msgs_per_batch\": {:.3},", r.msgs_per_batch).unwrap();
        writeln!(body, "      \"wall_ms\": {:.1},", r.wall_ms).unwrap();
        render_row_host(&mut body, r.engine, r.wall_ms);
        writeln!(body, "    }}{}", if i + 1 < rows.len() { "," } else { "" }).unwrap();
    }
    writeln!(body, "  ],").unwrap();
    // Per-phase breakdown: deterministic sim-time totals from a short
    // traced run per variant. Informational, not gated — none of its
    // keys (variant/phase/events/busy_ns) appears in `extract_metrics`.
    writeln!(
        body,
        "  \"phase_breakdown\": {{\"window_s\": {{\"warmup\": {}, \"run\": {}, \"drain\": {}}}, \
         \"points\": [",
        PHASE_WINDOW.warmup_s, PHASE_WINDOW.run_s, PHASE_WINDOW.drain_s
    )
    .unwrap();
    for (i, r) in phases.iter().enumerate() {
        writeln!(body, "    {{").unwrap();
        writeln!(body, "      \"variant\": \"{}\",", r.variant).unwrap();
        writeln!(body, "      \"phases\": [").unwrap();
        for (j, (phase, events, busy_ns)) in r.phases.iter().enumerate() {
            writeln!(
                body,
                "        {{\"phase\": \"{phase}\", \"events\": {events}, \"busy_ns\": {busy_ns}}}{}",
                if j + 1 < r.phases.len() { "," } else { "" }
            )
            .unwrap();
        }
        writeln!(body, "      ]").unwrap();
        writeln!(
            body,
            "    }}{}",
            if i + 1 < phases.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(body, "  ]}},").unwrap();
    writeln!(
        body,
        "  \"sharded\": {{\"f\": {SHARD_F}, \"rate_per_client_per_shard\": {SHARD_RATE_PER_CLIENT}, \
         \"window_s\": {{\"warmup\": {}, \"run\": {}, \"drain\": {}}}, \"points\": [",
        SHARD_WINDOW.warmup_s, SHARD_WINDOW.run_s, SHARD_WINDOW.drain_s
    )
    .unwrap();
    for (i, r) in sharded.iter().enumerate() {
        writeln!(body, "    {{").unwrap();
        writeln!(body, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(body, "      \"shards\": {},", r.shards).unwrap();
        writeln!(
            body,
            "      \"aggregate_throughput_req_s\": {:.3},",
            r.aggregate_throughput
        )
        .unwrap();
        writeln!(body, "      \"latency_ms\": {{").unwrap();
        writeln!(body, "        \"mean\": {},", json_num(r.mean_ms)).unwrap();
        writeln!(body, "        \"p50\": {},", json_num(r.p50_ms)).unwrap();
        writeln!(body, "        \"p99\": {}", json_num(r.p99_ms)).unwrap();
        writeln!(body, "      }},").unwrap();
        writeln!(body, "      \"msgs_per_batch\": {:.3},", r.msgs_per_batch).unwrap();
        writeln!(body, "      \"wall_ms\": {:.1},", r.wall_ms).unwrap();
        render_row_host(&mut body, r.engine, r.wall_ms);
        writeln!(
            body,
            "    }}{}",
            if i + 1 < sharded.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(body, "  ]}},").unwrap();
    // Parallel-scaling section: every key here is host-dependent or a
    // raw engine counter, none is gated by `extract_metrics` (and no
    // `"name"` lines appear, so the variant prefix is untouched) — the
    // section can move with the machine while --check stays exact.
    writeln!(
        body,
        "  \"parallel_scaling\": {{\"shards\": {MILLION_SHARDS}, \
         \"population\": {MILLION_POPULATION}, \
         \"rate_per_client\": {MILLION_RATE_PER_CLIENT}, \
         \"host_cores\": {}, \"points\": [",
        host_cores(),
    )
    .unwrap();
    for (i, r) in scaling.iter().enumerate() {
        let host = HostCounters {
            engine: r.engine,
            wall_ns: (r.wall_ms * 1e6) as u64,
            allocations: 0,
        };
        writeln!(body, "    {{").unwrap();
        writeln!(body, "      \"world_workers\": {},", r.world_workers).unwrap();
        writeln!(body, "      \"committed_requests\": {},", r.committed).unwrap();
        writeln!(
            body,
            "      \"events_processed\": {},",
            r.engine.events_processed
        )
        .unwrap();
        writeln!(body, "      \"wall_ms\": {:.1},", r.wall_ms).unwrap();
        writeln!(
            body,
            "      \"events_per_sec\": {:.0},",
            host.events_per_sec()
        )
        .unwrap();
        writeln!(body, "      \"sim_per_wall\": {:.1}", host.sim_per_wall()).unwrap();
        writeln!(
            body,
            "    }}{}",
            if i + 1 < scaling.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(
        body,
        "  ], \"speedup_events_per_sec_1_to_{}\": {:.2}}},",
        scaling.last().map_or(0, |r| r.world_workers),
        parallel_speedup(scaling),
    )
    .unwrap();
    writeln!(body, "  \"host\": {{").unwrap();
    writeln!(
        body,
        "    \"events_total\": {},",
        process.engine.events_processed
    )
    .unwrap();
    writeln!(
        body,
        "    \"wall_ms_total\": {:.1},",
        process.wall_ns as f64 / 1e6
    )
    .unwrap();
    writeln!(body, "    \"allocations_total\": {},", process.allocations).unwrap();
    writeln!(
        body,
        "    \"events_per_sec\": {:.0},",
        process.events_per_sec()
    )
    .unwrap();
    writeln!(body, "    \"sim_per_wall\": {:.1},", process.sim_per_wall()).unwrap();
    writeln!(
        body,
        "    \"allocs_per_event\": {:.4}",
        process.allocs_per_event()
    )
    .unwrap();
    writeln!(body, "  }}").unwrap();
    writeln!(body, "}}").unwrap();
    body
}

/// Cores available to this process — the ceiling on world-worker
/// speedup. Recorded next to the scaling points so a flat curve on a
/// one-core host reads as a host property, not a regression.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Events-per-wall-second ratio between the last and first scaling
/// points (1 → N world workers). The event counts are identical by the
/// determinism invariant, so this is wall-clock speedup.
fn parallel_speedup(scaling: &[ScalingRow]) -> f64 {
    match (scaling.first(), scaling.last()) {
        (Some(a), Some(b)) if a.wall_ms > 0.0 && b.wall_ms > 0.0 => a.wall_ms / b.wall_ms,
        _ => f64::NAN,
    }
}

/// Pulls `"key": value` numbers out of the committed JSON (the emitter
/// above is the only writer, so line-based extraction is sufficient —
/// no JSON dependency needed).
fn extract_metrics(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut variant = String::new();
    for line in json.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            variant = rest.trim_end_matches(['"', ','].as_slice()).to_string();
            continue;
        }
        for key in [
            "throughput_req_per_proc_s",
            "aggregate_throughput_req_s",
            "mean",
            "p50",
            "p99",
            "msgs_per_batch",
        ] {
            let Some(rest) = line.strip_prefix(&format!("\"{key}\": ")) else {
                continue;
            };
            let raw = rest.trim_end_matches(',');
            if raw == "null" {
                out.push((format!("{variant}.{key}"), f64::NAN));
            } else if let Ok(v) = raw.parse::<f64>() {
                out.push((format!("{variant}.{key}"), v));
            }
        }
    }
    out
}

fn check(
    rows: &[VariantRow],
    phases: &[PhaseRow],
    sharded: &[ShardedRow],
    scaling: &[ScalingRow],
    process: &HostCounters,
    committed_path: &str,
) -> Result<(), String> {
    let committed = std::fs::read_to_string(committed_path)
        .map_err(|e| format!("cannot read {committed_path}: {e}"))?;
    let want = extract_metrics(&committed);
    let got = extract_metrics(&render(rows, phases, sharded, scaling, process));
    if want.is_empty() {
        return Err(format!("{committed_path}: no metrics found"));
    }
    if want.len() != got.len() {
        return Err(format!(
            "metric count mismatch: committed {} vs regenerated {}",
            want.len(),
            got.len()
        ));
    }
    let mut drifts = Vec::new();
    for ((wk, wv), (gk, gv)) in want.iter().zip(&got) {
        if wk != gk {
            return Err(format!("metric order mismatch: {wk} vs {gk}"));
        }
        let same = (wv.is_nan() && gv.is_nan()) || (wv - gv).abs() <= TOLERANCE;
        if !same {
            drifts.push(format!("  {wk}: committed {wv} vs regenerated {gv}"));
        }
    }
    if drifts.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} metric(s) drifted beyond {TOLERANCE}:\n{}",
            drifts.len(),
            drifts.join("\n")
        ))
    }
}

fn main() {
    let mut checking = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => checking = true,
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag {flag} (supported: --check [path])");
                std::process::exit(2);
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => {
                eprintln!("error: unexpected extra argument {extra}");
                std::process::exit(2);
            }
        }
    }
    let path = path.unwrap_or_else(|| "BENCH_protocols.json".to_string());

    let wall_start = std::time::Instant::now();
    let allocs_before = alloc_counter::allocations();
    let rows = measure();
    let phases = measure_phases();
    let sharded = measure_sharded();
    let scaling = measure_parallel();
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let allocations = alloc_counter::allocations() - allocs_before;
    let engines = rows
        .iter()
        .map(|r| r.engine)
        .chain(sharded.iter().map(|r| r.engine))
        .chain(scaling.iter().map(|r| r.engine));
    let total = engines.fold(EngineCounters::default(), |acc, e| EngineCounters {
        events_processed: acc.events_processed + e.events_processed,
        heap_pushes: acc.heap_pushes + e.heap_pushes,
        arena_high_water: acc.arena_high_water.max(e.arena_high_water),
        sim_ns: acc.sim_ns + e.sim_ns,
    });
    let process = HostCounters {
        engine: total,
        wall_ns,
        allocations,
    };
    if sharded.len() >= 2 && sharded[0].aggregate_throughput > 0.0 {
        let scale = sharded[1].aggregate_throughput / sharded[0].aggregate_throughput;
        eprintln!(
            "sharded scaling 1 → {} shards: {scale:.2}× aggregate throughput",
            sharded[1].shards
        );
    }
    if scaling.len() >= 2 {
        eprintln!(
            "world-worker scaling 1 → {}: {:.2}× events/sec ({} events each run, {} core(s))",
            scaling.last().unwrap().world_workers,
            parallel_speedup(&scaling),
            scaling[0].engine.events_processed,
            host_cores(),
        );
    }
    eprintln!(
        "host: {:.0} events/s, {:.1} sim-s/wall-s, {:.4} allocs/event",
        process.events_per_sec(),
        process.sim_per_wall(),
        process.allocs_per_event()
    );
    if checking {
        match check(&rows, &phases, &sharded, &scaling, &process, &path) {
            Ok(()) => eprintln!("check passed: regenerated metrics match {path}"),
            Err(e) => {
                eprintln!("check FAILED against {path}:\n{e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Err(e) = std::fs::write(&path, render(&rows, &phases, &sharded, &scaling, &process)) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}
