//! Figure 4 regenerator: order latency vs batching interval for SC, BFT
//! and CT at f = 2, one panel per crypto technique — one declarative
//! `SweepGrid` (scheme × kind × interval), executed on worker threads.
//!
//! Expected shapes (paper §5): CT flat near 10 ms; SC and BFT rise
//! drastically below a saturation threshold; BFT's threshold sits at a
//! larger interval than SC's; steady-state BFT latency exceeds SC, with
//! the gap widening under DSA.

use sofb_bench::experiments::default_workers;
use sofb_bench::grids::{fig4, FIG_KINDS as KINDS};
use sofb_crypto::scheme::SchemeId;
use sofb_sim::metrics::{render_table, Series};
use sofbyz::scenario::run_grid;

fn main() {
    let f = 2;
    let report = run_grid(&fig4(), default_workers()).expect("figure 4 grid is valid");

    for (panel, scheme) in SchemeId::PAPER.iter().enumerate() {
        let mut series: Vec<Series> = Vec::new();
        for kind in KINDS {
            let mut s = Series::new(kind.to_string());
            for p in report
                .points_where("scheme", &scheme.to_string())
                .filter(|p| p.label("kind") == Some(&kind.to_string()))
            {
                let ms: f64 = p.label("interval_ms").unwrap().parse().unwrap();
                s.push(ms, p.report.global.mean_ms.unwrap_or(f64::NAN));
            }
            series.push(s);
        }
        println!(
            "## Figure 4({}) — order latency, f = {f}, {scheme}\n",
            char::from(b'a' + panel as u8)
        );
        println!(
            "{}",
            render_table("interval_ms", "order latency (ms)", &series)
        );
    }
}
