//! Figure 4 regenerator: order latency vs batching interval for SC, BFT
//! and CT at f = 2, one panel per crypto technique.
//!
//! Expected shapes (paper §5): CT flat near 10 ms; SC and BFT rise
//! drastically below a saturation threshold; BFT's threshold sits at a
//! larger interval than SC's; steady-state BFT latency exceeds SC, with
//! the gap widening under DSA.

use sofb_bench::experiments::{bft_point, ct_point, sc_point, Window};
use sofb_crypto::scheme::SchemeId;
use sofb_proto::topology::Variant;
use sofb_sim::metrics::{render_table, Series};

fn main() {
    let intervals: Vec<u64> = vec![40, 60, 80, 100, 150, 200, 250, 300, 400, 500];
    let window = Window::default();
    let f = 2;

    for (panel, scheme) in SchemeId::PAPER.iter().enumerate() {
        let mut sc = Series::new("SC");
        let mut bft = Series::new("BFT");
        let mut ct = Series::new("CT");
        for &ms in &intervals {
            let seed = 42 + ms;
            let p_sc = sc_point(f, Variant::Sc, *scheme, ms, seed, window);
            let p_bft = bft_point(f, *scheme, ms, seed, window);
            let p_ct = ct_point(f, ms, seed, window);
            sc.push(ms as f64, p_sc.latency_ms.unwrap_or(f64::NAN));
            bft.push(ms as f64, p_bft.latency_ms.unwrap_or(f64::NAN));
            ct.push(ms as f64, p_ct.latency_ms.unwrap_or(f64::NAN));
        }
        println!(
            "## Figure 4({}) — order latency, f = {f}, {scheme}\n",
            char::from(b'a' + panel as u8)
        );
        println!(
            "{}",
            render_table("interval_ms", "order latency (ms)", &[sc, bft, ct])
        );
    }
}
