//! Figure 5 regenerator: throughput vs batching interval for SC, BFT and
//! CT at f = 2, one panel per crypto technique — one declarative
//! `SweepGrid` (scheme × kind × interval), executed on worker threads.
//!
//! Expected shapes (paper §5): throughput low at large intervals, rising
//! as the interval shrinks, peaking at the saturation point and then
//! dropping for SC and BFT (BFT first); no drop for CT in the swept
//! range.

use sofb_bench::experiments::default_workers;
use sofb_bench::grids::{fig5, FIG_KINDS as KINDS};
use sofb_crypto::scheme::SchemeId;
use sofb_sim::metrics::{render_table, Series};
use sofbyz::scenario::run_grid;

fn main() {
    let f = 2;
    let report = run_grid(&fig5(), default_workers()).expect("figure 5 grid is valid");

    for (panel, scheme) in SchemeId::PAPER.iter().enumerate() {
        let mut series: Vec<Series> = Vec::new();
        for kind in KINDS {
            let mut s = Series::new(kind.to_string());
            for p in report
                .points_where("scheme", &scheme.to_string())
                .filter(|p| p.label("kind") == Some(&kind.to_string()))
            {
                let ms: f64 = p.label("interval_ms").unwrap().parse().unwrap();
                s.push(ms, p.report.throughput_per_process);
            }
            series.push(s);
        }
        println!(
            "## Figure 5({}) — throughput, f = {f}, {scheme}\n",
            char::from(b'a' + panel as u8)
        );
        println!(
            "{}",
            render_table(
                "interval_ms",
                "throughput (committed requests / process / s)",
                &series
            )
        );
    }
}
