//! Figure 5 regenerator: throughput vs batching interval for SC, BFT and
//! CT at f = 2, one panel per crypto technique.
//!
//! Expected shapes (paper §5): throughput low at large intervals, rising
//! as the interval shrinks, peaking at the saturation point and then
//! dropping for SC and BFT (BFT first); no drop for CT in the swept
//! range.

use sofb_bench::experiments::{bft_point, ct_point, sc_point, Window};
use sofb_crypto::scheme::SchemeId;
use sofb_proto::topology::Variant;
use sofb_sim::metrics::{render_table, Series};

fn main() {
    let intervals: Vec<u64> = vec![40, 60, 80, 100, 150, 200, 250, 300, 400, 500];
    let window = Window::default();
    let f = 2;

    for (panel, scheme) in SchemeId::PAPER.iter().enumerate() {
        let mut sc = Series::new("SC");
        let mut bft = Series::new("BFT");
        let mut ct = Series::new("CT");
        for &ms in &intervals {
            let seed = 142 + ms;
            sc.push(
                ms as f64,
                sc_point(f, Variant::Sc, *scheme, ms, seed, window).throughput,
            );
            bft.push(
                ms as f64,
                bft_point(f, *scheme, ms, seed, window).throughput,
            );
            ct.push(ms as f64, ct_point(f, ms, seed, window).throughput);
        }
        println!(
            "## Figure 5({}) — throughput, f = {f}, {scheme}\n",
            char::from(b'a' + panel as u8)
        );
        println!(
            "{}",
            render_table(
                "interval_ms",
                "throughput (committed requests / process / s)",
                &[sc, bft, ct]
            )
        );
    }
}
