//! Figure 5 regenerator: throughput vs batching interval for SC, BFT and
//! CT at f = 2, one panel per crypto technique — one declarative
//! `SweepGrid` (scheme × kind × interval), executed on worker threads.
//!
//! Expected shapes (paper §5): throughput low at large intervals, rising
//! as the interval shrinks, peaking at the saturation point and then
//! dropping for SC and BFT (BFT first); no drop for CT in the swept
//! range.

use sofb_bench::experiments::{bench_scenario, default_workers, Window};
use sofb_crypto::scheme::SchemeId;
use sofb_harness::ProtocolKind;
use sofb_sim::metrics::{render_table, Series};
use sofbyz::scenario::{run_grid, Axis, SweepGrid};

const KINDS: [ProtocolKind; 3] = [ProtocolKind::Sc, ProtocolKind::Bft, ProtocolKind::Ct];

fn main() {
    let intervals: [u64; 10] = [40, 60, 80, 100, 150, 200, 250, 300, 400, 500];
    let window = Window::default();
    let f = 2;

    // Seeds vary with the interval (the figure's historical seeding), so
    // the interval axis patches both fields at once.
    let mut interval_axis = Axis::new("interval_ms");
    for ms in intervals {
        interval_axis = interval_axis.value(ms.to_string(), move |s| {
            s.knobs.batching_interval = sofb_sim::time::SimDuration::from_ms(ms);
            s.knobs.seed = 142 + ms;
        });
    }
    let grid = SweepGrid::new(bench_scenario(
        ProtocolKind::Sc,
        f,
        SchemeId::Md5Rsa1024,
        intervals[0],
        142,
        window,
    ))
    .axis(Axis::schemes(&SchemeId::PAPER))
    .axis(Axis::kinds(&KINDS))
    .axis(interval_axis);
    let report = run_grid(&grid, default_workers()).expect("figure 5 grid is valid");

    for (panel, scheme) in SchemeId::PAPER.iter().enumerate() {
        let mut series: Vec<Series> = Vec::new();
        for kind in KINDS {
            let mut s = Series::new(kind.to_string());
            for p in report
                .points_where("scheme", &scheme.to_string())
                .filter(|p| p.label("kind") == Some(&kind.to_string()))
            {
                let ms: f64 = p.label("interval_ms").unwrap().parse().unwrap();
                s.push(ms, p.report.throughput_per_process);
            }
            series.push(s);
        }
        println!(
            "## Figure 5({}) — throughput, f = {f}, {scheme}\n",
            char::from(b'a' + panel as u8)
        );
        println!(
            "{}",
            render_table(
                "interval_ms",
                "throughput (committed requests / process / s)",
                &series
            )
        );
    }
}
