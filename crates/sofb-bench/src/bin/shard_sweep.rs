//! Horizontal-scaling sweep: shard count × offered load for all four
//! protocol variants — one declarative `SweepGrid` over the sharded
//! scenario (rate × kind × shard count), executed on worker threads.
//!
//! ```sh
//! cargo run --release -p sofb-bench --bin shard_sweep
//! ```
//!
//! For every variant and per-shard offered load, the sweep reports the
//! aggregate ordered-request throughput (req/s, each request counted
//! once) and the global p99 order latency at 1, 2 and 4 ordering groups
//! — the "one group" assumption of the paper's testbed turned into a
//! parameter. At fixed per-shard load the aggregate column should scale
//! near-linearly with the shard count while the latency column stays
//! flat: groups are independent, so the saturation point moves with the
//! world, not the coordinator.

use sofb_bench::experiments::default_workers;
use sofb_bench::grids::{shard_sweep, SHARD_SWEEP_RATES as RATES};
use sofb_harness::ProtocolKind;
use sofb_sim::metrics::{render_table, Series};
use sofbyz::scenario::run_grid;

fn main() {
    let report = run_grid(&shard_sweep(), default_workers()).expect("shard sweep grid is valid");

    for rate in RATES {
        let offered = 3.0 * rate;
        let mut tput: Vec<Series> = Vec::new();
        let mut p99: Vec<Series> = Vec::new();
        for kind in ProtocolKind::ALL {
            let mut t = Series::new(kind.to_string());
            let mut l = Series::new(kind.to_string());
            for p in report
                .points_where("rate", &format!("{rate}"))
                .filter(|p| p.label("kind") == Some(&kind.to_string()))
            {
                let shards: f64 = p.label("shards").unwrap().parse().unwrap();
                t.push(shards, p.report.aggregate_throughput);
                l.push(shards, p.report.global.p99_ms.unwrap_or(f64::NAN));
            }
            tput.push(t);
            p99.push(l);
        }
        println!("## offered load {offered:.0} req/s per shard");
        println!(
            "{}",
            render_table("shards", "aggregate throughput (req/s)", &tput)
        );
        println!(
            "{}",
            render_table("shards", "global p99 latency (ms)", &p99)
        );
    }
}
