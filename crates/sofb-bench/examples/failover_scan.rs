//! Exhaustive fail-over configuration scan (development aid).
fn main() {
    use sofb_bench::experiments::failover_scenario;
    use sofb_crypto::scheme::SchemeId;
    use sofb_proto::topology::Variant;
    use sofbyz::scenario::run;
    let mut bad = 0;
    for scheme in SchemeId::PAPER {
        for variant in [Variant::Sc, Variant::Scr] {
            for pad_kb in [1usize, 2, 3, 4, 5] {
                for seed in 1000..1020 {
                    let s = failover_scenario(variant, scheme, pad_kb * 1024, seed);
                    let r = std::panic::catch_unwind(|| {
                        run(&s).expect("fail-over scenario is valid").failover_ms
                    });
                    match r {
                        Err(_) => {
                            println!("PANIC: {scheme} {variant:?} pad {pad_kb}KB seed {seed}");
                            bad += 1;
                        }
                        Ok(None) => {
                            println!("NONE : {scheme} {variant:?} pad {pad_kb}KB seed {seed}");
                            bad += 1;
                        }
                        Ok(Some(_)) => {}
                    }
                }
            }
        }
    }
    println!("scan complete: {bad} bad configurations");
}
