//! The `specs/` directory is not documentation — it is the same grids.
//!
//! Every committed `.scn` file must expand to *bit-identical* cells
//! (labels, seeds, fully patched scenarios) as its in-code constructor
//! in `sofb_bench::grids`; and for the cheap grids the executed
//! spec-driven `GridReport` must equal the in-code grid's report exactly
//! (measurement values compared at full precision, host wall time
//! excluded). A spec drifting from its grid — or a grid from its spec —
//! fails here, not in a figure three PRs later.

use sofb_bench::grids;
use sofb_spec::Spec;
use sofbyz::scenario::{run_grid, SweepGrid};

fn load(name: &str) -> Spec {
    let path = format!("{}/../../specs/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    Spec::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Same cells: order, labels, seeds and fully patched scenarios.
fn assert_cells_eq(name: &str, spec_grid: &SweepGrid, code_grid: &SweepGrid) {
    let a = spec_grid.cells().expect("spec grid expands");
    let b = code_grid.cells().expect("in-code grid expands");
    assert_eq!(a.len(), b.len(), "{name}: cell counts differ");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.labels, y.labels, "{name}: labels differ at {}", x.index);
        assert_eq!(x.seed, y.seed, "{name}: seeds differ at {}", x.index);
        assert_eq!(
            x.scenario, y.scenario,
            "{name}: scenarios differ at {}",
            x.index
        );
    }
}

fn assert_spec_matches(name: &str, code_grid: &SweepGrid) {
    let spec = load(name);
    assert_cells_eq(name, &spec.grid(false).expect("spec lowers"), code_grid);
}

#[test]
fn bench_protocols_spec_matches_in_code_grid() {
    assert_spec_matches("bench_protocols.scn", &grids::bench_flat());
}

#[test]
fn bench_protocols_sharded_spec_matches_in_code_grid() {
    assert_spec_matches("bench_protocols_sharded.scn", &grids::bench_sharded());
}

#[test]
fn fig4_spec_matches_in_code_grid() {
    assert_spec_matches("fig4.scn", &grids::fig4());
}

#[test]
fn fig5_spec_matches_in_code_grid() {
    assert_spec_matches("fig5.scn", &grids::fig5());
}

#[test]
fn fig6_spec_matches_in_code_grid() {
    assert_spec_matches("fig6.scn", &grids::fig6());
}

#[test]
fn f3_sweep_spec_matches_in_code_grid() {
    assert_spec_matches("f3_sweep.scn", &grids::f3_sweep());
}

#[test]
fn msg_counts_spec_matches_in_code_grid() {
    assert_spec_matches("msg_counts.scn", &grids::msg_counts());
}

#[test]
fn shard_sweep_spec_matches_in_code_grid() {
    assert_spec_matches("shard_sweep.scn", &grids::shard_sweep());
}

#[test]
fn million_clients_spec_matches_in_code_grid() {
    assert_spec_matches("million_clients.scn", &grids::million_clients());
}

#[test]
fn saturation_spec_matches_in_code_grids() {
    let spec = load("saturation.scn");
    assert_cells_eq(
        "saturation (full)",
        &spec.grid(false).unwrap(),
        &grids::saturation(&grids::SweepShape::full()),
    );
    assert_cells_eq(
        "saturation (smoke)",
        &spec.grid(true).unwrap(),
        &grids::saturation(&grids::SweepShape::smoke()),
    );
}

#[test]
fn gst_spec_matches_in_code_grids() {
    let spec = load("gst_sensitivity.scn");
    assert_cells_eq(
        "gst (full)",
        &spec.grid(false).unwrap(),
        &grids::gst(&grids::SweepShape::full()),
    );
    assert_cells_eq(
        "gst (smoke)",
        &spec.grid(true).unwrap(),
        &grids::gst(&grids::SweepShape::smoke()),
    );
}

// --- executed-report equivalence (the acceptance gate) -----------------
//
// Cell equality already proves the grids are the same data; these three
// run both sides end to end and compare the measured reports, pinning
// the whole spec → parse → lower → run → report pipeline. Chosen for
// run cost: the two-point sharded bench grid and the smoke-sized
// scenario_sweeps grids.

fn assert_runs_identically(name: &str, spec_grid: &SweepGrid, code_grid: &SweepGrid) {
    let spec_report = run_grid(spec_grid, 2).expect("spec grid runs");
    let code_report = run_grid(code_grid, 2).expect("in-code grid runs");
    assert!(
        spec_report.same_results(&code_report),
        "{name}: spec-driven report differs from the in-code grid's"
    );
}

#[test]
fn bench_sharded_spec_runs_identically() {
    let spec = load("bench_protocols_sharded.scn");
    assert_runs_identically(
        "bench_protocols_sharded.scn",
        &spec.grid(false).unwrap(),
        &grids::bench_sharded(),
    );
}

#[test]
fn saturation_smoke_spec_runs_identically() {
    let spec = load("saturation.scn");
    assert_runs_identically(
        "saturation.scn --smoke",
        &spec.grid(true).unwrap(),
        &grids::saturation(&grids::SweepShape::smoke()),
    );
}

#[test]
fn gst_smoke_spec_runs_identically() {
    let spec = load("gst_sensitivity.scn");
    assert_runs_identically(
        "gst_sensitivity.scn --smoke",
        &spec.grid(true).unwrap(),
        &grids::gst(&grids::SweepShape::smoke()),
    );
}
