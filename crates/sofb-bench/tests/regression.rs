//! Regression tests pinned to bugs found by the experiment sweeps.
//!
//! Deliberately exercised through the deprecated point-function facades:
//! they must keep reproducing the scenario runner's exact numbers until
//! they are removed.
#![allow(deprecated)]

use sofb_bench::experiments::{failover_point, sc_point, Window};
use sofb_crypto::scheme::SchemeId;
use sofb_proto::topology::Variant;

/// The Figure-6 sweep at RSA-1536 / 5 KB BackLogs found divergent commits:
/// processes kept acking stored orders during the view-change window, so
/// an order invisible to the view-change quorum could commit concurrently
/// with a Start that reused its sequence number. `failover_point` panics
/// on any total-order violation, so this simply must return a value.
#[test]
fn scr_large_backlog_failover_is_safe() {
    for seed in [1000u64, 1001, 1006, 1012] {
        let ms = failover_point(Variant::Scr, SchemeId::Md5Rsa1536, 5 * 1024, seed)
            .expect("fail-over completes");
        assert!(ms > 0.0 && ms < 5_000.0, "seed {seed}: {ms} ms");
    }
}

/// Same configuration under SC (the claim-the-slot fix applies to both
/// variants).
#[test]
fn sc_large_backlog_failover_is_safe() {
    for seed in [1000u64, 1010] {
        failover_point(Variant::Sc, SchemeId::Md5Rsa1536, 5 * 1024, seed)
            .expect("fail-over completes");
    }
}

/// The headline comparative result must not regress: SC beats BFT in the
/// steady state and the DSA gap exceeds the RSA gap.
#[test]
fn headline_orderings_hold() {
    let w = Window {
        warmup_s: 2,
        run_s: 6,
        drain_s: 10,
    };
    let sc_rsa = sc_point(2, Variant::Sc, SchemeId::Md5Rsa1024, 300, 3, w)
        .latency_ms
        .unwrap();
    let bft_rsa = sofb_bench::experiments::bft_point(2, SchemeId::Md5Rsa1024, 300, 3, w)
        .latency_ms
        .unwrap();
    let sc_dsa = sc_point(2, Variant::Sc, SchemeId::Sha1Dsa1024, 300, 3, w)
        .latency_ms
        .unwrap();
    let bft_dsa = sofb_bench::experiments::bft_point(2, SchemeId::Sha1Dsa1024, 300, 3, w)
        .latency_ms
        .unwrap();
    assert!(bft_rsa > sc_rsa, "RSA: BFT {bft_rsa} ≤ SC {sc_rsa}");
    assert!(bft_dsa > sc_dsa, "DSA: BFT {bft_dsa} ≤ SC {sc_dsa}");
    assert!(
        (bft_dsa - sc_dsa) > (bft_rsa - sc_rsa),
        "gap must widen under DSA: {} vs {}",
        bft_dsa - sc_dsa,
        bft_rsa - sc_rsa
    );
}
