//! Regression tests pinned to bugs found by the experiment sweeps,
//! exercised through the declarative scenario runner (the same path the
//! figure grids take).

use sofb_bench::experiments::{bench_scenario, failover_scenario, ProtocolKind, Window};
use sofb_crypto::scheme::SchemeId;
use sofb_proto::topology::Variant;
use sofbyz::scenario::RunScenario;

fn failover_ms(variant: Variant, scheme: SchemeId, pad: usize, seed: u64) -> Option<f64> {
    failover_scenario(variant, scheme, pad, seed)
        .run()
        .expect("fail-over scenario is valid")
        .failover_ms
}

/// The Figure-6 sweep at RSA-1536 / 5 KB BackLogs found divergent commits:
/// processes kept acking stored orders during the view-change window, so
/// an order invisible to the view-change quorum could commit concurrently
/// with a Start that reused its sequence number. The runner panics on any
/// total-order violation, so this simply must return a value.
#[test]
fn scr_large_backlog_failover_is_safe() {
    for seed in [1000u64, 1001, 1006, 1012] {
        let ms = failover_ms(Variant::Scr, SchemeId::Md5Rsa1536, 5 * 1024, seed)
            .expect("fail-over completes");
        assert!(ms > 0.0 && ms < 5_000.0, "seed {seed}: {ms} ms");
    }
}

/// Same configuration under SC (the claim-the-slot fix applies to both
/// variants).
#[test]
fn sc_large_backlog_failover_is_safe() {
    for seed in [1000u64, 1010] {
        failover_ms(Variant::Sc, SchemeId::Md5Rsa1536, 5 * 1024, seed)
            .expect("fail-over completes");
    }
}

/// The headline comparative result must not regress: SC beats BFT in the
/// steady state and the DSA gap exceeds the RSA gap.
#[test]
fn headline_orderings_hold() {
    let w = Window {
        warmup_s: 2,
        run_s: 6,
        drain_s: 10,
    };
    let mean = |kind, scheme| {
        bench_scenario(kind, 2, scheme, 300, 3, w)
            .run()
            .expect("benchmark scenario is valid")
            .global
            .mean_ms
            .unwrap()
    };
    let sc_rsa = mean(ProtocolKind::Sc, SchemeId::Md5Rsa1024);
    let bft_rsa = mean(ProtocolKind::Bft, SchemeId::Md5Rsa1024);
    let sc_dsa = mean(ProtocolKind::Sc, SchemeId::Sha1Dsa1024);
    let bft_dsa = mean(ProtocolKind::Bft, SchemeId::Sha1Dsa1024);
    assert!(bft_rsa > sc_rsa, "RSA: BFT {bft_rsa} ≤ SC {sc_rsa}");
    assert!(bft_dsa > sc_dsa, "DSA: BFT {bft_dsa} ≤ SC {sc_dsa}");
    assert!(
        (bft_dsa - sc_dsa) > (bft_rsa - sc_rsa),
        "gap must widen under DSA: {} vs {}",
        bft_dsa - sc_dsa,
        bft_rsa - sc_rsa
    );
}
