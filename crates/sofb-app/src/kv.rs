//! A deterministic replicated key-value store: the example service
//! replicated by the order protocols.

use std::collections::BTreeMap;

use sofb_crypto::sha256::Sha256;
use sofb_proto::codec::{CodecError, Decode, Decoder, Encode, Encoder};

use crate::state_machine::StateMachine;

/// A key-value operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Store `value` under `key`; replies with "OK".
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Read `key`; replies with the value or empty.
    Get {
        /// The key.
        key: Vec<u8>,
    },
    /// Remove `key`; replies with the removed value or empty.
    Del {
        /// The key.
        key: Vec<u8>,
    },
    /// Compare-and-swap: set `new` only if the current value is `expect`;
    /// replies with 1 (swapped) or 0.
    Cas {
        /// The key.
        key: Vec<u8>,
        /// Expected current value.
        expect: Vec<u8>,
        /// Replacement value.
        new: Vec<u8>,
    },
}

impl Encode for KvOp {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            KvOp::Put { key, value } => {
                enc.put_u8(0);
                enc.put_bytes(key);
                enc.put_bytes(value);
            }
            KvOp::Get { key } => {
                enc.put_u8(1);
                enc.put_bytes(key);
            }
            KvOp::Del { key } => {
                enc.put_u8(2);
                enc.put_bytes(key);
            }
            KvOp::Cas { key, expect, new } => {
                enc.put_u8(3);
                enc.put_bytes(key);
                enc.put_bytes(expect);
                enc.put_bytes(new);
            }
        }
    }
}

impl Decode for KvOp {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(match dec.get_u8()? {
            0 => KvOp::Put {
                key: dec.get_bytes()?,
                value: dec.get_bytes()?,
            },
            1 => KvOp::Get {
                key: dec.get_bytes()?,
            },
            2 => KvOp::Del {
                key: dec.get_bytes()?,
            },
            3 => KvOp::Cas {
                key: dec.get_bytes()?,
                expect: dec.get_bytes()?,
                new: dec.get_bytes()?,
            },
            d => return Err(CodecError::BadDiscriminant(d)),
        })
    }
}

/// The deterministic key-value store.
#[derive(Clone, Debug, Default)]
pub struct KvStore {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    version: u64,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Reads a key directly (local query, not ordered).
    pub fn get(&self, key: &[u8]) -> Option<&Vec<u8>> {
        self.map.get(key)
    }

    /// Applies a structured op.
    pub fn apply_op(&mut self, op: &KvOp) -> Vec<u8> {
        self.version += 1;
        match op {
            KvOp::Put { key, value } => {
                self.map.insert(key.clone(), value.clone());
                b"OK".to_vec()
            }
            KvOp::Get { key } => self.map.get(key).cloned().unwrap_or_default(),
            KvOp::Del { key } => self.map.remove(key).unwrap_or_default(),
            KvOp::Cas { key, expect, new } => {
                let matches = self.map.get(key).is_some_and(|v| v == expect);
                if matches {
                    self.map.insert(key.clone(), new.clone());
                    vec![1]
                } else {
                    vec![0]
                }
            }
        }
    }
}

impl StateMachine for KvStore {
    fn apply(&mut self, op: &[u8]) -> Vec<u8> {
        match KvOp::from_bytes(op) {
            Ok(op) => self.apply_op(&op),
            // Malformed ops must be handled deterministically too.
            Err(_) => b"ERR".to_vec(),
        }
    }

    fn state_digest(&self) -> Vec<u8> {
        let mut h = Sha256::new();
        h.update(&self.version.to_le_bytes());
        for (k, v) in &self.map {
            h.update(&(k.len() as u32).to_le_bytes());
            h.update(k);
            h.update(&(v.len() as u32).to_le_bytes());
            h.update(v);
        }
        h.finalize().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_roundtrip() {
        let ops = vec![
            KvOp::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
            KvOp::Get { key: b"k".to_vec() },
            KvOp::Del { key: b"k".to_vec() },
            KvOp::Cas {
                key: b"k".to_vec(),
                expect: b"v".to_vec(),
                new: b"w".to_vec(),
            },
        ];
        for op in ops {
            assert_eq!(KvOp::from_bytes(&op.to_bytes()).unwrap(), op);
        }
    }

    #[test]
    fn put_get_del() {
        let mut kv = KvStore::new();
        assert_eq!(
            kv.apply_op(&KvOp::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec()
            }),
            b"OK"
        );
        assert_eq!(kv.apply_op(&KvOp::Get { key: b"a".to_vec() }), b"1");
        assert_eq!(kv.apply_op(&KvOp::Del { key: b"a".to_vec() }), b"1");
        assert_eq!(kv.apply_op(&KvOp::Get { key: b"a".to_vec() }), b"");
        assert!(kv.is_empty());
    }

    #[test]
    fn cas_semantics() {
        let mut kv = KvStore::new();
        kv.apply_op(&KvOp::Put {
            key: b"x".to_vec(),
            value: b"1".to_vec(),
        });
        let swapped = kv.apply_op(&KvOp::Cas {
            key: b"x".to_vec(),
            expect: b"1".to_vec(),
            new: b"2".to_vec(),
        });
        assert_eq!(swapped, vec![1]);
        let failed = kv.apply_op(&KvOp::Cas {
            key: b"x".to_vec(),
            expect: b"1".to_vec(),
            new: b"3".to_vec(),
        });
        assert_eq!(failed, vec![0]);
        assert_eq!(kv.get(b"x").unwrap(), b"2");
    }

    #[test]
    fn state_digest_tracks_content_and_history() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        let op = KvOp::Put {
            key: b"k".to_vec(),
            value: b"v".to_vec(),
        };
        a.apply_op(&op);
        b.apply_op(&op);
        assert_eq!(a.state_digest(), b.state_digest());
        // Same final map via different histories → different digests
        // (version counts applications).
        b.apply_op(&op);
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn malformed_ops_are_deterministic() {
        let mut kv = KvStore::new();
        assert_eq!(StateMachine::apply(&mut kv, &[99, 1, 2]), b"ERR");
    }
}
