//! # sofb-app — the replicated service layer
//!
//! The ordering protocols deliver batches; this crate is what consumes
//! them: a deterministic state machine interface ([`state_machine`]), a
//! key-value service ([`kv`]), and seeded workload generators
//! ([`workload`]) for both the paper's opaque fixed-size requests and
//! structured KV operation mixes.
//!
//! # Examples
//!
//! ```
//! use sofb_app::kv::{KvOp, KvStore};
//! use sofb_app::state_machine::{Executor, StateMachine};
//! use sofb_proto::codec::Encode;
//! use sofb_proto::ids::SeqNo;
//!
//! let mut ex = Executor::new(KvStore::new());
//! let op = KvOp::Put { key: b"k".to_vec(), value: b"v".to_vec() };
//! let replies = ex.apply_batch(SeqNo(1), [op.to_bytes()]).unwrap();
//! assert_eq!(replies[0], b"OK");
//! assert_eq!(ex.machine().get(b"k").unwrap(), b"v");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kv;
pub mod state_machine;
pub mod workload;

pub use kv::{KvOp, KvStore};
pub use state_machine::{ExecError, Executor, StateMachine};
pub use workload::{KvMix, KvWorkload, OpaqueWorkload};
