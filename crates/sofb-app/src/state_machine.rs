//! The deterministic state machine interface (§2: "a service, constructed
//! as a deterministic state machine, is replicated over 2f+1 nodes").

use sofb_proto::ids::SeqNo;

/// A deterministic service: identical op sequences produce identical
/// states and replies at every replica.
pub trait StateMachine {
    /// Applies one operation, returning the reply bytes.
    fn apply(&mut self, op: &[u8]) -> Vec<u8>;

    /// A digest of the current state (for cross-replica comparison in
    /// tests and checkpointing).
    fn state_digest(&self) -> Vec<u8>;
}

/// Drives a [`StateMachine`] with committed batches, enforcing gap-free
/// in-order execution.
#[derive(Debug)]
pub struct Executor<S> {
    machine: S,
    next: SeqNo,
    applied_ops: u64,
}

impl<S: StateMachine> Executor<S> {
    /// Wraps a state machine; execution starts at sequence number 1.
    pub fn new(machine: S) -> Self {
        Executor {
            machine,
            next: SeqNo(1),
            applied_ops: 0,
        }
    }

    /// The next sequence number this executor expects.
    pub fn next_seq(&self) -> SeqNo {
        self.next
    }

    /// Total operations applied.
    pub fn applied_ops(&self) -> u64 {
        self.applied_ops
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &S {
        &self.machine
    }

    /// Applies the batch committed at `seq`, returning per-op replies.
    ///
    /// # Errors
    ///
    /// Returns an error (without applying anything) if `seq` is not the
    /// next expected sequence number — callers must buffer out-of-order
    /// commits.
    pub fn apply_batch(
        &mut self,
        seq: SeqNo,
        ops: impl IntoIterator<Item = impl AsRef<[u8]>>,
    ) -> Result<Vec<Vec<u8>>, ExecError> {
        if seq != self.next {
            return Err(ExecError::OutOfOrder {
                expected: self.next,
                got: seq,
            });
        }
        let replies: Vec<Vec<u8>> = ops
            .into_iter()
            .map(|op| {
                self.applied_ops += 1;
                self.machine.apply(op.as_ref())
            })
            .collect();
        self.next = seq.next();
        Ok(replies)
    }
}

/// Execution-order violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A batch arrived out of order.
    OutOfOrder {
        /// The sequence number the executor expected.
        expected: SeqNo,
        /// The sequence number offered.
        got: SeqNo,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::OutOfOrder { expected, got } => {
                write!(f, "batch out of order: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter machine for testing: each op adds its first byte.
    #[derive(Default, Debug)]
    struct Counter(u64);

    impl StateMachine for Counter {
        fn apply(&mut self, op: &[u8]) -> Vec<u8> {
            self.0 += u64::from(op.first().copied().unwrap_or(0));
            self.0.to_le_bytes().to_vec()
        }
        fn state_digest(&self) -> Vec<u8> {
            self.0.to_le_bytes().to_vec()
        }
    }

    #[test]
    fn in_order_execution() {
        let mut ex = Executor::new(Counter::default());
        let replies = ex.apply_batch(SeqNo(1), [[2u8], [3u8]]).unwrap();
        assert_eq!(replies.len(), 2);
        assert_eq!(ex.next_seq(), SeqNo(2));
        assert_eq!(ex.applied_ops(), 2);
        assert_eq!(ex.machine().0, 5);
    }

    #[test]
    fn out_of_order_rejected() {
        let mut ex = Executor::new(Counter::default());
        let err = ex.apply_batch(SeqNo(3), [[1u8]]).unwrap_err();
        assert_eq!(
            err,
            ExecError::OutOfOrder {
                expected: SeqNo(1),
                got: SeqNo(3)
            }
        );
        // Nothing applied.
        assert_eq!(ex.applied_ops(), 0);
    }

    #[test]
    fn deterministic_across_replicas() {
        let mut a = Executor::new(Counter::default());
        let mut b = Executor::new(Counter::default());
        for seq in 1..=5u64 {
            let ops = vec![vec![seq as u8], vec![(seq * 2) as u8]];
            a.apply_batch(SeqNo(seq), ops.clone()).unwrap();
            b.apply_batch(SeqNo(seq), ops).unwrap();
        }
        assert_eq!(a.machine().state_digest(), b.machine().state_digest());
    }
}
