//! Deterministic workload generators.
//!
//! The §5 experiments use fixed-size opaque requests at a configurable
//! offered load; the KV examples use structured operations. Both come
//! from here, seeded so runs are reproducible.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sofb_proto::codec::Encode;
use sofb_proto::ids::ClientId;
use sofb_proto::request::Request;

use crate::kv::KvOp;

/// Generates fixed-size opaque request payloads (the §5 workload).
#[derive(Debug)]
pub struct OpaqueWorkload {
    client: ClientId,
    size: usize,
    next_seq: u64,
    rng: StdRng,
}

impl OpaqueWorkload {
    /// Creates a generator of `size`-byte requests for `client`.
    pub fn new(client: ClientId, size: usize, seed: u64) -> Self {
        OpaqueWorkload {
            client,
            size,
            next_seq: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The next request.
    pub fn next_request(&mut self) -> Request {
        self.next_seq += 1;
        let mut payload = vec![0u8; self.size];
        self.rng.fill(payload.as_mut_slice());
        Request::new(self.client, self.next_seq, payload)
    }
}

/// Mix parameters for the KV workload.
#[derive(Clone, Copy, Debug)]
pub struct KvMix {
    /// Fraction of reads in \[0, 1\].
    pub read_ratio: f64,
    /// Number of distinct keys.
    pub key_space: u64,
    /// Value size in bytes.
    pub value_size: usize,
}

impl Default for KvMix {
    fn default() -> Self {
        KvMix {
            read_ratio: 0.5,
            key_space: 1_000,
            value_size: 64,
        }
    }
}

/// Generates KV operations with the configured read/write mix.
#[derive(Debug)]
pub struct KvWorkload {
    client: ClientId,
    mix: KvMix,
    next_seq: u64,
    rng: StdRng,
}

impl KvWorkload {
    /// Creates a generator for `client` with the given mix.
    pub fn new(client: ClientId, mix: KvMix, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&mix.read_ratio), "read ratio in [0,1]");
        KvWorkload {
            client,
            mix,
            next_seq: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The next structured operation.
    pub fn next_op(&mut self) -> KvOp {
        let key = format!("key-{:08}", self.rng.gen_range(0..self.mix.key_space)).into_bytes();
        if self.rng.gen_bool(self.mix.read_ratio) {
            KvOp::Get { key }
        } else {
            let mut value = vec![0u8; self.mix.value_size];
            self.rng.fill(value.as_mut_slice());
            KvOp::Put { key, value }
        }
    }

    /// The next operation packaged as an ordered request.
    pub fn next_request(&mut self) -> Request {
        self.next_seq += 1;
        let op = self.next_op();
        Request::new(self.client, self.next_seq, Bytes::from(op.to_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_proto::codec::Decode;

    #[test]
    fn opaque_requests_sized_and_unique() {
        let mut w = OpaqueWorkload::new(ClientId(1), 128, 9);
        let a = w.next_request();
        let b = w.next_request();
        assert_eq!(a.payload.len(), 128);
        assert_ne!(a.id, b.id);
        assert_ne!(a.payload, b.payload);
    }

    #[test]
    fn workloads_deterministic_by_seed() {
        let collect = |seed| {
            let mut w = KvWorkload::new(ClientId(0), KvMix::default(), seed);
            (0..10)
                .map(|_| w.next_request().payload)
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn kv_requests_decode_to_ops() {
        let mut w = KvWorkload::new(
            ClientId(2),
            KvMix {
                read_ratio: 0.0,
                ..KvMix::default()
            },
            3,
        );
        let r = w.next_request();
        let op = KvOp::from_bytes(&r.payload).unwrap();
        assert!(matches!(op, KvOp::Put { .. }), "write-only mix yields puts");
    }

    #[test]
    fn read_ratio_respected_roughly() {
        let mut w = KvWorkload::new(
            ClientId(0),
            KvMix {
                read_ratio: 0.9,
                ..KvMix::default()
            },
            11,
        );
        let reads = (0..1000)
            .filter(|_| matches!(w.next_op(), KvOp::Get { .. }))
            .count();
        assert!((850..=950).contains(&reads), "reads {reads}");
    }
}
