//! # sofb-core — the Streets-of-Byzantium order protocols
//!
//! Implements the paper's contribution: total-order protocols built on the
//! **signal-on-crash** process abstraction (a pair of Byzantine-prone
//! processes that mutually check each other and fail-signal on detection).
//!
//! * [`process`] — the SC protocol (normal part §4.1 + install part §4.2 +
//!   the §4.3 optimizations) and its SCR extension (§4.4);
//! * [`messages`] — the wire protocol;
//! * [`order_log`] — N1–N3 bookkeeping and commitment proofs;
//! * [`install`] — `NewBackLog` computation and verification;
//! * [`sim`] — deployment assembly inside the discrete-event simulator;
//! * [`analysis`] — the §5 measurements and safety checkers.
//!
//! # Examples
//!
//! ```
//! use sofb_core::analysis;
//! use sofb_core::sim::ScWorldBuilder;
//! use sofb_crypto::scheme::SchemeId;
//! use sofb_harness::ClientSpec; // one client-spec shape for every variant
//! use sofb_proto::topology::Variant;
//! use sofb_sim::time::SimTime;
//!
//! let mut deployment = ScWorldBuilder::new(1, Variant::Sc, SchemeId::Md5Rsa1024)
//!     .client(ClientSpec {
//!         rate_per_sec: 50.0,
//!         request_size: 100,
//!         stop_at: SimTime::from_secs(1),
//!     })
//!     .build();
//! deployment.start();
//! deployment.run_until(SimTime::from_secs(3));
//! let events = deployment.world.drain_events();
//! analysis::check_total_order(&events).expect("no divergent commits");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod checkpoint;
pub mod config;
pub mod events;
pub mod install;
pub mod messages;
pub mod order_log;
pub mod process;
pub mod sim;

pub use config::{Fault, ScConfig};
pub use events::ScEvent;
pub use messages::ScMsg;
pub use process::{PairStatus, ScProcess};
