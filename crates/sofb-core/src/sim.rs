//! Harness: assemble an SC/SCR deployment inside the discrete-event
//! simulator.
//!
//! Mirrors the paper's testbed shape: order processes connected by a
//! LAN-class asynchronous network, each pair additionally joined by a fast
//! dedicated link (§2), plus clients that multicast requests to every
//! process (§3).

use sofb_crypto::provider::{CryptoProvider, Dealer};
use sofb_crypto::scheme::SchemeId;
use sofb_proto::ids::{ClientId, ProcessId, Rank};
use sofb_proto::request::Request;
use sofb_proto::signed::Signed;
use sofb_proto::topology::{Candidate, Topology, Variant};
use sofb_sim::cpu::CpuModel;
use sofb_sim::delay::{LinkModel, NetworkModel};
use sofb_sim::engine::{Actor, Ctx, World};
use sofb_sim::time::{SimDuration, SimTime};

use crate::config::{Fault, ScConfig};
use crate::events::ScEvent;
use crate::messages::{FailSignalPayload, ScMsg};
use crate::process::ScProcess;

/// Timer tag used by the client actor.
const TIMER_CLIENT: u64 = 100;

/// A synthetic client: multicasts fixed-size requests to every order
/// process at a constant rate until `stop_at`.
#[derive(Debug)]
pub struct ClientActor {
    id: ClientId,
    n_processes: usize,
    request_size: usize,
    interval: SimDuration,
    stop_at: SimTime,
    next_seq: u64,
}

impl ClientActor {
    /// Creates a client issuing `rate_per_sec` requests of
    /// `request_size` bytes until `stop_at`.
    pub fn new(
        id: ClientId,
        n_processes: usize,
        request_size: usize,
        rate_per_sec: f64,
        stop_at: SimTime,
    ) -> Self {
        assert!(rate_per_sec > 0.0, "client rate must be positive");
        let interval = SimDuration((1e9 / rate_per_sec) as u64);
        ClientActor {
            id,
            n_processes,
            request_size,
            interval,
            stop_at,
            next_seq: 0,
        }
    }
}

impl Actor for ClientActor {
    type Msg = ScMsg;
    type Event = ScEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ScMsg, ScEvent>) {
        ctx.set_timer(self.interval, TIMER_CLIENT);
    }

    fn on_message(&mut self, _from: usize, _msg: ScMsg, _ctx: &mut Ctx<'_, ScMsg, ScEvent>) {
        // Clients ignore replies in this harness; commitment is observed
        // through the processes' events.
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, ScMsg, ScEvent>) {
        if tag != TIMER_CLIENT || ctx.now() >= self.stop_at {
            return;
        }
        self.next_seq += 1;
        let payload = vec![0xabu8; self.request_size];
        let req = Request::new(self.id, self.next_seq, payload);
        for p in 0..self.n_processes {
            ctx.send(p, ScMsg::Request(req.clone()));
        }
        ctx.set_timer(self.interval, TIMER_CLIENT);
    }
}

/// Specification of one synthetic client.
#[derive(Clone, Debug)]
pub struct ClientSpec {
    /// Requests per second.
    pub rate_per_sec: f64,
    /// Payload size in bytes.
    pub request_size: usize,
    /// Stop issuing at this virtual time.
    pub stop_at: SimTime,
}

/// Builder for a complete simulated SC/SCR deployment.
#[derive(Debug)]
pub struct ScWorldBuilder {
    f: u32,
    variant: Variant,
    scheme: SchemeId,
    seed: u64,
    batching_interval: SimDuration,
    order_timeout: SimDuration,
    backlog_pad: usize,
    checkpoint_interval: u64,
    time_checks: bool,
    cpu: CpuModel,
    faults: Vec<(ProcessId, Fault)>,
    clients: Vec<ClientSpec>,
    pair_link: LinkModel,
    lan_link: LinkModel,
}

impl ScWorldBuilder {
    /// Starts a builder for resilience `f` under the given variant and
    /// crypto scheme.
    pub fn new(f: u32, variant: Variant, scheme: SchemeId) -> Self {
        ScWorldBuilder {
            f,
            variant,
            scheme,
            seed: 42,
            batching_interval: SimDuration::from_ms(100),
            order_timeout: SimDuration::from_ms(1_000),
            backlog_pad: 0,
            checkpoint_interval: 64,
            time_checks: true,
            cpu: CpuModel::default(),
            faults: Vec::new(),
            clients: Vec::new(),
            pair_link: LinkModel::pair_link(),
            lan_link: LinkModel::lan_100mbit(),
        }
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the batching interval (the paper sweeps 40–500 ms).
    pub fn batching_interval(mut self, d: SimDuration) -> Self {
        self.batching_interval = d;
        self
    }

    /// Sets the shadow's proposal-timeliness estimate.
    pub fn order_timeout(mut self, d: SimDuration) -> Self {
        self.order_timeout = d;
        self
    }

    /// Pads BackLogs (Figure 6's size sweep).
    pub fn backlog_pad(mut self, pad: usize) -> Self {
        self.backlog_pad = pad;
        self
    }

    /// Sets the checkpoint interval (0 disables log truncation).
    pub fn checkpoint_interval(mut self, every: u64) -> Self {
        self.checkpoint_interval = every;
        self
    }

    /// Enables/disables time-domain detection (see `ScConfig`).
    pub fn time_checks(mut self, on: bool) -> Self {
        self.time_checks = on;
        self
    }

    /// Overrides the CPU model of every process node.
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Installs a fault plan on one process.
    pub fn fault(mut self, p: ProcessId, fault: Fault) -> Self {
        self.faults.push((p, fault));
        self
    }

    /// Adds a client.
    pub fn client(mut self, spec: ClientSpec) -> Self {
        self.clients.push(spec);
        self
    }

    /// Overrides the asynchronous-network link model (e.g. partial
    /// synchrony for SCR experiments).
    pub fn lan_link(mut self, link: LinkModel) -> Self {
        self.lan_link = link;
        self
    }

    /// Overrides the intra-pair link model.
    pub fn pair_link(mut self, link: LinkModel) -> Self {
        self.pair_link = link;
        self
    }

    /// Assembles the world.
    pub fn build(self) -> ScWorld {
        let topology = Topology::new(self.f, self.variant);
        let n = topology.n();

        // Network: LAN everywhere, fast dedicated links within pairs.
        let mut net = NetworkModel::uniform(self.lan_link.clone());
        for c in 1..=topology.candidate_count() {
            if let Candidate::Pair { replica, shadow } = topology.candidate(Rank(c)) {
                net = net.with_bidi_link(
                    replica.0 as usize,
                    shadow.0 as usize,
                    self.pair_link.clone(),
                );
            }
        }

        let mut world: World<ScMsg, ScEvent> = World::new(net, self.seed);

        // The trusted dealer hands out providers; counterparts pre-sign
        // each other's fail-signals (§3.2).
        let mut providers = Dealer::sim(self.scheme, n, self.seed ^ 0x5107);
        let mut presigned: Vec<Option<Signed<FailSignalPayload>>> = vec![None; n];
        for c in 1..=topology.candidate_count() {
            if let Candidate::Pair { replica, shadow } = topology.candidate(Rank(c)) {
                let payload = FailSignalPayload { pair: Rank(c) };
                presigned[replica.0 as usize] = Some(Signed::sign(
                    payload.clone(),
                    &mut providers[shadow.0 as usize],
                ));
                presigned[shadow.0 as usize] = Some(Signed::sign(
                    payload,
                    &mut providers[replica.0 as usize],
                ));
                // Pre-signing must not bill the simulation clock.
                providers[replica.0 as usize].take_cost_ns();
                providers[shadow.0 as usize].take_cost_ns();
            }
        }

        for (i, provider) in providers.into_iter().enumerate() {
            let me = ProcessId(i as u32);
            let fault = self
                .faults
                .iter()
                .find(|(p, _)| *p == me)
                .map(|(_, f)| f.clone())
                .unwrap_or_default();
            let cfg = ScConfig {
                topology,
                me,
                scheme: self.scheme,
                batching_interval: self.batching_interval,
                batch_max_bytes: 1024,
                order_timeout: self.order_timeout,
                heartbeat_period: SimDuration::from_ms(50),
                heartbeat_misses: 4,
                recovery_beats: 3,
                checkpoint_interval: self.checkpoint_interval,
                backlog_pad: self.backlog_pad,
                time_checks: self.time_checks,
                fault,
            };
            let process = ScProcess::new(cfg, Box::new(provider), presigned[i].take());
            world.add_node(Box::new(process), self.cpu);
        }

        let mut client_nodes = Vec::new();
        for (k, spec) in self.clients.iter().enumerate() {
            let client = ClientActor::new(
                ClientId(k as u32),
                n,
                spec.request_size,
                spec.rate_per_sec,
                spec.stop_at,
            );
            let idx = world.add_node(Box::new(client), CpuModel::zero());
            client_nodes.push(idx);
        }

        ScWorld {
            world,
            topology,
            client_nodes,
        }
    }
}

/// A built deployment.
pub struct ScWorld {
    /// The simulator world (drive with `start`/`run_until`).
    pub world: World<ScMsg, ScEvent>,
    /// The deployment layout.
    pub topology: Topology,
    /// Node indices of the synthetic clients.
    pub client_nodes: Vec<usize>,
}

impl ScWorld {
    /// Starts all nodes.
    pub fn start(&mut self) {
        self.world.start();
    }

    /// Runs until the given virtual time.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }
}
