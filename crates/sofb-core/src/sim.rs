//! Harness glue: the SC/SCR [`Protocol`] implementation and the
//! historical [`ScWorldBuilder`] facade.
//!
//! Deployment assembly itself — clients, network, fault scheduling — is
//! the generic [`sofb_harness::WorldBuilder`]; this module contributes
//! only what is SC-specific: the paper's testbed shape (a LAN everywhere
//! plus fast dedicated intra-pair links, §2), the trusted dealer's
//! pre-signed fail-signals (§3.2), and per-process `ScConfig` synthesis.

use sofb_crypto::provider::{CryptoProvider, Dealer};
use sofb_crypto::scheme::SchemeId;
use sofb_harness::{Deployment, FaultSpec, Knobs, Links, Protocol, WorldBuilder};
use sofb_proto::ids::{ProcessId, Rank};
use sofb_proto::signed::Signed;
use sofb_proto::topology::{Candidate, Topology, Variant};
use sofb_sim::cpu::CpuModel;
use sofb_sim::delay::{LinkModel, NetworkModel};
use sofb_sim::engine::{Actor, World};
use sofb_sim::time::{SimDuration, SimTime};

use crate::config::{Fault, ScConfig};
use crate::events::ScEvent;
use crate::messages::{FailSignalPayload, ScMsg};
use crate::process::ScProcess;

// The client-spec shape is the harness type — `sofb_core::sim::ClientSpec`
// is the same struct as `sofb_harness::ClientSpec`, re-exported here only
// so historical call sites keep compiling. New code should name the
// harness path (or go through `Scenario`).
pub use sofb_harness::{
    Arrival, ClientActor, ClientSpec, RouterConfigError, ShardLoad, ShardRouter, ShardedDeployment,
    ShardedWorldBuilder,
};

/// A sharded SC/SCR deployment: `S` independent SC ordering groups in
/// one world (choose SC vs SCR via
/// [`ShardedWorldBuilder::variant`]).
pub type ShardedScWorld = ShardedDeployment<ScProtocol>;

/// The SC/SCR protocol, as hosted by the generic harness.
///
/// `Knobs::variant` selects between the SC (`n = 3f+1`) and SCR
/// (`n = 3f+2`) layouts; scripted Byzantine misbehaviours are the
/// protocol's [`Fault`] scripts.
#[derive(Debug)]
pub struct ScProtocol;

impl Protocol for ScProtocol {
    type Msg = ScMsg;
    type Byz = Fault;

    const NAME: &'static str = "SC";

    fn node_count(knobs: &Knobs) -> usize {
        Topology::new(knobs.f, knobs.variant).n()
    }

    fn network(knobs: &Knobs, links: &Links) -> NetworkModel {
        // LAN everywhere, fast dedicated links within pairs.
        let topology = Topology::new(knobs.f, knobs.variant);
        let mut net = NetworkModel::uniform(links.lan.clone());
        for c in 1..=topology.candidate_count() {
            if let Candidate::Pair { replica, shadow } = topology.candidate(Rank(c)) {
                net = net.with_bidi_link(replica.0 as usize, shadow.0 as usize, links.pair.clone());
            }
        }
        net
    }

    fn build_nodes(
        knobs: &Knobs,
        byz: &[(ProcessId, Fault)],
    ) -> Vec<Box<dyn Actor<Msg = ScMsg, Event = ScEvent>>> {
        let topology = Topology::new(knobs.f, knobs.variant);
        let n = topology.n();

        // The trusted dealer hands out providers; counterparts pre-sign
        // each other's fail-signals (§3.2).
        let mut providers = Dealer::sim(knobs.scheme, n, knobs.seed ^ 0x5107);
        let mut presigned: Vec<Option<Signed<FailSignalPayload>>> = vec![None; n];
        for c in 1..=topology.candidate_count() {
            if let Candidate::Pair { replica, shadow } = topology.candidate(Rank(c)) {
                let payload = FailSignalPayload { pair: Rank(c) };
                presigned[replica.0 as usize] = Some(Signed::sign(
                    payload.clone(),
                    &mut providers[shadow.0 as usize],
                ));
                presigned[shadow.0 as usize] =
                    Some(Signed::sign(payload, &mut providers[replica.0 as usize]));
                // Pre-signing must not bill the simulation clock.
                providers[replica.0 as usize].take_cost_ns();
                providers[shadow.0 as usize].take_cost_ns();
            }
        }

        providers
            .into_iter()
            .enumerate()
            .map(|(i, provider)| {
                let me = ProcessId(i as u32);
                let fault = byz
                    .iter()
                    .find(|(p, _)| *p == me)
                    .map(|(_, f)| f.clone())
                    .unwrap_or_default();
                let cfg = ScConfig {
                    topology,
                    me,
                    scheme: knobs.scheme,
                    batching_interval: knobs.batching_interval,
                    batch_max_bytes: knobs.batch_max_bytes,
                    order_timeout: knobs.order_timeout,
                    heartbeat_period: knobs.heartbeat_period,
                    heartbeat_misses: knobs.heartbeat_misses,
                    recovery_beats: knobs.recovery_beats,
                    checkpoint_interval: knobs.checkpoint_interval,
                    backlog_pad: knobs.backlog_pad,
                    time_checks: knobs.time_checks,
                    fault,
                };
                let process = ScProcess::new(cfg, Box::new(provider), presigned[i].take());
                Box::new(process) as Box<dyn Actor<Msg = ScMsg, Event = ScEvent>>
            })
            .collect()
    }

    fn request_msg(req: sofb_proto::request::Request) -> ScMsg {
        ScMsg::Request(req)
    }

    fn value_fault(o: sofb_proto::ids::SeqNo) -> Option<Fault> {
        // The Figure-6 trigger: the coordinator corrupts the order
        // carrying sequence `o`, and its shadow fail-signals on the
        // value-domain check. This is what lets declarative scenarios
        // express the fail-over sweeps.
        Some(Fault::CorruptOrderAt(o))
    }
}

/// Builder for a complete simulated SC/SCR deployment (thin facade over
/// the generic [`WorldBuilder`]; kept so existing experiments, tests and
/// examples read unchanged).
#[derive(Debug)]
pub struct ScWorldBuilder {
    inner: WorldBuilder<ScProtocol>,
}

impl ScWorldBuilder {
    /// Starts a builder for resilience `f` under the given variant and
    /// crypto scheme.
    pub fn new(f: u32, variant: Variant, scheme: SchemeId) -> Self {
        ScWorldBuilder {
            inner: WorldBuilder::new(f).variant(variant).scheme(scheme),
        }
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.seed(seed);
        self
    }

    /// Sets the batching interval (the paper sweeps 40–500 ms).
    pub fn batching_interval(mut self, d: SimDuration) -> Self {
        self.inner = self.inner.batching_interval(d);
        self
    }

    /// Sets the shadow's proposal-timeliness estimate.
    pub fn order_timeout(mut self, d: SimDuration) -> Self {
        self.inner = self.inner.order_timeout(d);
        self
    }

    /// Pads BackLogs (Figure 6's size sweep).
    pub fn backlog_pad(mut self, pad: usize) -> Self {
        self.inner = self.inner.backlog_pad(pad);
        self
    }

    /// Sets the checkpoint interval (0 disables log truncation).
    pub fn checkpoint_interval(mut self, every: u64) -> Self {
        self.inner = self.inner.checkpoint_interval(every);
        self
    }

    /// Enables/disables time-domain detection (see `ScConfig`).
    pub fn time_checks(mut self, on: bool) -> Self {
        self.inner = self.inner.time_checks(on);
        self
    }

    /// Overrides the CPU model of every process node.
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.inner = self.inner.cpu(cpu);
        self
    }

    /// Installs a scripted Byzantine fault on one process.
    pub fn fault(mut self, p: ProcessId, fault: Fault) -> Self {
        self.inner = self.inner.fault(p, FaultSpec::Byzantine(fault));
        self
    }

    /// Installs any uniform fault (crash / mute / delay / Byzantine) on
    /// one process.
    pub fn fault_spec(mut self, p: ProcessId, spec: FaultSpec<Fault>) -> Self {
        self.inner = self.inner.fault(p, spec);
        self
    }

    /// Adds a constant-rate client.
    pub fn client(mut self, spec: ClientSpec) -> Self {
        self.inner = self.inner.client(spec);
        self
    }

    /// Adds an open-loop Poisson client.
    pub fn poisson_client(mut self, spec: ClientSpec) -> Self {
        self.inner = self.inner.poisson_client(spec);
        self
    }

    /// Overrides the asynchronous-network link model (e.g. partial
    /// synchrony for SCR experiments).
    pub fn lan_link(mut self, link: LinkModel) -> Self {
        self.inner = self.inner.lan_link(link);
        self
    }

    /// Overrides the intra-pair link model.
    pub fn pair_link(mut self, link: LinkModel) -> Self {
        self.inner = self.inner.pair_link(link);
        self
    }

    /// Assembles the world.
    pub fn build(self) -> ScWorld {
        let deployment: Deployment<ScProtocol> = self.inner.build();
        ScWorld {
            topology: Topology::new(deployment.knobs.f, deployment.knobs.variant),
            world: deployment.world,
            client_nodes: deployment.client_nodes,
        }
    }
}

/// A built SC/SCR deployment.
pub struct ScWorld {
    /// The simulator world (drive with `start`/`run_until`).
    pub world: World<ScMsg, ScEvent>,
    /// The deployment layout.
    pub topology: Topology,
    /// Node indices of the synthetic clients.
    pub client_nodes: Vec<usize>,
}

impl ScWorld {
    /// Starts all nodes.
    pub fn start(&mut self) {
        self.world.start();
    }

    /// Runs until the given virtual time.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }
}
