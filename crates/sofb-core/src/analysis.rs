//! Event-log analysis: the §5 measurements and the safety checks used by
//! tests.
//!
//! The implementation now lives in the protocol-agnostic harness layer
//! ([`sofb_harness::analysis`]) next to the [`ProtocolEvent`] vocabulary
//! it measures, so the scenario runner and every protocol crate share one
//! measurement pass. This module re-exports it under its historical path;
//! existing `sofb_core::analysis::…` call sites read unchanged.
//!
//! [`ProtocolEvent`]: sofb_harness::event::ProtocolEvent

pub use sofb_harness::analysis::*;
