//! The SC/SCR order process: one sans-io state machine per node.
//!
//! A process plays up to three roles simultaneously:
//!
//! * **order process** — receives client requests, acks authenticated
//!   orders in sequence, commits on an `n−f` quorum (normal part, §4.1);
//! * **pair member** — mutually checks its counterpart in the value and
//!   time domains and fail-signals on detection (§3);
//! * **coordinator member** — proposes orders (replica) or endorses them
//!   (shadow) while its candidate rank is installed (§4), and runs the
//!   install part (§4.2) or the SCR view change (§4.4) on coordinator
//!   failure.
//!
//! The state machine is driven through [`sofb_sim::engine::Actor`], so the
//! same code runs under the deterministic simulator and any other host.

use std::collections::{BTreeMap, HashMap, HashSet};

use sofb_crypto::provider::CryptoProvider;
use sofb_proto::backlog::RequestBacklog;
use sofb_proto::codec::Encode;
use sofb_proto::fasthash::IdHashMap;
use sofb_proto::ids::{ProcessId, Rank, SeqNo, ViewId};
use sofb_proto::pool::PooledBuf;
use sofb_proto::request::{BatchRef, Digest, Request, RequestId};
use sofb_proto::signed::{DoublySigned, Signed};
use sofb_proto::topology::{Candidate, Topology, Variant};
use sofb_sim::engine::{Actor, Ctx};
use sofb_sim::time::SimTime;

use crate::checkpoint::CheckpointTracker;
use crate::config::{Fault, ScConfig};
use crate::events::ScEvent;
use crate::install::compute_new_backlog;
use crate::messages::{
    AckPayload, BackLogPayload, FailSignalMsg, FailSignalPayload, HeartbeatPayload, OrderMsg,
    OrderPayload, ScMsg, StartMsg, StartPayload, StartSigPayload, UnwillingPayload,
    ViewChangePayload,
};
use crate::order_log::OrderLog;

/// Timer tags.
const TIMER_BATCH: u64 = 1;
const TIMER_SHADOW_CHECK: u64 = 2;
const TIMER_HEARTBEAT: u64 = 3;
const TIMER_HB_CHECK: u64 = 4;

/// Operative status of this process's pair (§4.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairStatus {
    /// Collaborating normally.
    Up,
    /// Fail-signalled; SCR pairs may recover from here.
    Down,
    /// Fail-signalled on a value-domain failure; never recovers.
    PermanentlyDown,
}

type ScCtx<'a> = Ctx<'a, ScMsg, ScEvent>;

/// One SC/SCR order process.
pub struct ScProcess {
    cfg: ScConfig,
    provider: Box<dyn CryptoProvider>,
    /// The fail-signal supplied at initialization, signed by the
    /// counterpart (§3.2). `None` for unpaired processes.
    presigned_fs: Option<Signed<FailSignalPayload>>,

    // ---- candidate / view state ----
    c: Rank,
    view: ViewId,
    installed: bool,
    halted: bool,
    /// Pairs with rank below this are dumb (set on installation, §4.3).
    dumb_below: Rank,

    // ---- request store ----
    requests: IdHashMap<RequestId, Request>,
    backlog: RequestBacklog<SimTime>,

    // ---- coordinator-replica state ----
    next_propose: SeqNo,
    // ---- shadow state ----
    next_endorse: SeqNo,
    stashed_proposal: Option<Signed<OrderPayload>>,

    // ---- order log ----
    log: OrderLog,
    next_to_ack: SeqNo,
    stashed_orders: Vec<OrderMsg>,

    // ---- pair state ----
    pair_status: Option<PairStatus>,
    hb_send_seq: u64,
    hb_recv_in_window: u32,
    hb_fresh_streak: u32,

    // ---- fail-signal bookkeeping ----
    fail_signalled: BTreeMap<Rank, FailSignalMsg>,
    my_fs_emitted: bool,

    // ---- install state ----
    backlogs: BTreeMap<ProcessId, Signed<BackLogPayload>>,
    start_msg: Option<StartMsg>,
    start_digest: Option<Digest>,
    start_sig_sent: bool,
    start_tuples: BTreeMap<ProcessId, Signed<StartSigPayload>>,
    start_cert: Option<Vec<Signed<StartSigPayload>>>,
    start_cert_issued: bool,
    start_acks: BTreeMap<ProcessId, Digest>,
    start_committed: bool,
    stashed_starts: Vec<StartMsg>,
    stashed_certs: Vec<(Rank, Vec<Signed<StartSigPayload>>)>,

    // ---- SCR view change ----
    view_changes: BTreeMap<ViewId, BTreeMap<ProcessId, Signed<ViewChangePayload>>>,
    unwilling_sent_for: Option<ViewId>,

    // ---- state transfer ----
    fetch_replies: BTreeMap<SeqNo, BTreeMap<ProcessId, OrderMsg>>,

    // ---- checkpointing / log truncation ----
    checkpoints: CheckpointTracker,
}

impl ScProcess {
    /// Creates a process from its configuration, crypto provider, and (for
    /// paired processes) the counterpart-signed fail-signal.
    pub fn new(
        cfg: ScConfig,
        provider: Box<dyn CryptoProvider>,
        presigned_fs: Option<Signed<FailSignalPayload>>,
    ) -> Self {
        let paired = cfg.topology.is_paired(cfg.me);
        assert_eq!(
            paired,
            presigned_fs.is_some(),
            "paired processes need a presigned fail-signal, unpaired must not have one"
        );
        ScProcess {
            provider,
            presigned_fs,
            c: Rank::FIRST,
            view: ViewId(1),
            installed: true,
            halted: false,
            dumb_below: Rank::FIRST,
            requests: IdHashMap::default(),
            backlog: RequestBacklog::new(),
            next_propose: SeqNo(1),
            next_endorse: SeqNo(1),
            stashed_proposal: None,
            log: OrderLog::new(SeqNo(1)),
            next_to_ack: SeqNo(1),
            stashed_orders: Vec::new(),
            pair_status: paired.then_some(PairStatus::Up),
            hb_send_seq: 0,
            hb_recv_in_window: 0,
            hb_fresh_streak: 0,
            fail_signalled: BTreeMap::new(),
            my_fs_emitted: false,
            backlogs: BTreeMap::new(),
            start_msg: None,
            start_digest: None,
            start_sig_sent: false,
            start_tuples: BTreeMap::new(),
            start_cert: None,
            start_cert_issued: false,
            start_acks: BTreeMap::new(),
            start_committed: false,
            stashed_starts: Vec::new(),
            stashed_certs: Vec::new(),
            view_changes: BTreeMap::new(),
            unwilling_sent_for: None,
            fetch_replies: BTreeMap::new(),
            checkpoints: CheckpointTracker::new(cfg.checkpoint_interval),
            cfg,
        }
    }

    // ---------------------------------------------------------------
    // Role helpers
    // ---------------------------------------------------------------

    fn topo(&self) -> &Topology {
        &self.cfg.topology
    }

    fn me(&self) -> ProcessId {
        self.cfg.me
    }

    /// Current coordinator candidate.
    fn coordinator(&self) -> Candidate {
        self.topo().candidate(self.c)
    }

    /// True if this process is the proposing member of the current
    /// candidate.
    fn i_am_proposer(&self) -> bool {
        self.coordinator().proposer() == self.me()
    }

    /// True if this process is the endorsing member of the current
    /// candidate.
    fn i_am_endorser(&self) -> bool {
        self.coordinator().endorser() == Some(self.me())
    }

    /// My own pair's candidate rank, if I am a pair member.
    fn my_pair_rank(&self) -> Option<Rank> {
        self.topo().counterpart(self.me())?;
        self.topo().candidate_rank_of(self.me())
    }

    /// Pairs retired as dumb under the §4.3 optimization (SC only; SCR
    /// pairs can recover so nobody is retired). Retirement happens when a
    /// new coordinator is *installed* ("every time a new coordinator is
    /// installed, the processes of the old coordinator are turned into
    /// 'dumb' processes"), so the count keys on `dumb_below`, not on the
    /// in-flight candidate rank.
    fn retired_pairs(&self) -> u32 {
        match self.topo().variant() {
            Variant::Sc => (self.dumb_below.0 - 1).min(self.topo().f()),
            Variant::Scr => 0,
        }
    }

    /// True if this process may not transmit (member of a retired pair).
    fn is_dumb(&self) -> bool {
        if self.topo().variant() == Variant::Scr {
            return false;
        }
        self.my_pair_rank().is_some_and(|r| r < self.dumb_below)
    }

    /// True if `p` is eligible to contribute to quorums right now.
    fn eligible(&self, p: ProcessId) -> bool {
        if self.topo().variant() == Variant::Scr {
            return true;
        }
        let floor = self.dumb_below;
        match self.topo().candidate_rank_of(p) {
            Some(r) => {
                // The unpaired final candidate is never retired.
                r >= floor || self.topo().candidate(r).endorser().is_none()
            }
            None => true,
        }
    }

    /// Commit quorum for orders under the current candidate.
    fn ack_quorum(&self) -> usize {
        self.topo().effective_quorum(self.retired_pairs())
    }

    /// Quorum of BackLogs needed to install the current candidate (the
    /// pair being replaced is fail-signalled but not yet dumb).
    fn install_quorum(&self) -> usize {
        self.topo().effective_quorum(self.retired_pairs())
    }

    /// IN3/IN4 identifier-signature tuples required (`f−1` at the first
    /// fail-over, shrinking with retirement).
    fn tuples_needed(&self) -> usize {
        self.topo()
            .effective_f(self.retired_pairs())
            .saturating_sub(1)
    }

    // ---------------------------------------------------------------
    // Sending (dumb processes execute but do not transmit, §4.3)
    // ---------------------------------------------------------------

    fn send(&self, ctx: &mut ScCtx<'_>, to: ProcessId, msg: ScMsg) {
        if self.is_dumb() || self.halted {
            return;
        }
        ctx.send(to.0 as usize, msg);
    }

    fn multicast_all(&self, ctx: &mut ScCtx<'_>, msg: ScMsg) {
        if self.is_dumb() || self.halted {
            return;
        }
        for p in self.topo().all() {
            ctx.send(p.0 as usize, msg.clone());
        }
    }

    // ---------------------------------------------------------------
    // Startup
    // ---------------------------------------------------------------

    fn arm_role_timers(&self, ctx: &mut ScCtx<'_>) {
        if self.installed && self.i_am_proposer() {
            ctx.set_timer(self.cfg.batching_interval, TIMER_BATCH);
        }
        if self.installed && self.i_am_endorser() {
            ctx.set_timer(self.cfg.order_timeout, TIMER_SHADOW_CHECK);
        }
    }

    fn arm_pair_timers(&self, ctx: &mut ScCtx<'_>) {
        if self.pair_status.is_some() {
            ctx.set_timer(self.cfg.heartbeat_period, TIMER_HEARTBEAT);
            ctx.set_timer(
                self.cfg
                    .heartbeat_period
                    .saturating_mul(u64::from(self.cfg.heartbeat_misses)),
                TIMER_HB_CHECK,
            );
        }
    }

    // ---------------------------------------------------------------
    // Requests and batching
    // ---------------------------------------------------------------

    fn on_request(&mut self, req: Request, ctx: &mut ScCtx<'_>) {
        if self.requests.contains_key(&req.id) {
            return;
        }
        let id = req.id;
        self.requests.insert(id, req);
        self.backlog.note(id, ctx.now());
        // A stashed proposal may now be checkable.
        if let Some(p) = self.stashed_proposal.take() {
            self.endorse_proposal(p, ctx);
        }
    }

    /// Coordinator replica: form a batch (≤ `batch_max_bytes`) and propose.
    fn propose_batch(&mut self, ctx: &mut ScCtx<'_>) {
        if !(self.installed && self.i_am_proposer()) || self.halted {
            return;
        }
        if let Fault::MuteCoordinatorAt(at) = self.cfg.fault {
            if self.next_propose >= at {
                return;
            }
        }
        // Collect unordered requests up to the size cap.
        let mut members: Vec<RequestId> = Vec::new();
        let mut bytes = 0usize;
        while let Some((id, _)) = self.backlog.front() {
            let Some(req) = self.requests.get(&id) else {
                self.backlog.pop_front();
                continue;
            };
            if self.backlog.is_ordered(&id) {
                self.backlog.pop_front();
                continue;
            }
            let len = req.payload.len();
            if !members.is_empty() && bytes + len > self.cfg.batch_max_bytes {
                break;
            }
            members.push(id);
            bytes += len;
            self.backlog.pop_front();
            if bytes >= self.cfg.batch_max_bytes {
                break;
            }
        }
        if members.is_empty() {
            return;
        }
        // The paper stamps latency from "the instance the request is
        // batched": the batch tick. Under saturation the tick's firing
        // queues behind crypto work — that queueing is part of the
        // measured latency, so use the fire instant, not the service
        // start.
        let formed_at_ns = ctx.fired_at().unwrap_or(ctx.now()).as_ns();
        let refs: Vec<&Request> = members.iter().map(|id| &self.requests[id]).collect();
        let input = BatchRef::digest_input(&refs);
        let mut raw = self.provider.digest(&input);
        if let Fault::CorruptOrderAt(at) = self.cfg.fault {
            if self.next_propose == at {
                // Value-domain fault: flip a digest byte.
                if let Some(b) = raw.first_mut() {
                    *b ^= 0xff;
                }
            }
        }
        let digest = Digest::new(&raw);
        let o = self.next_propose;
        self.next_propose = o.next();
        self.backlog.mark_ordered(members.iter().copied());
        let payload = OrderPayload {
            c: self.c,
            o,
            batch: BatchRef {
                requests: members.into(),
                digest,
            },
            formed_at_ns,
        };
        ctx.emit(ScEvent::OrderProposed {
            o,
            batch_len: payload.batch.len(),
            formed_at_ns,
        });
        let signed = Signed::sign(payload, self.provider.as_mut());
        match self.coordinator() {
            Candidate::Pair { shadow, .. } => {
                // Phase 1 (1→1): propose to the shadow for endorsement.
                self.send(ctx, shadow, ScMsg::OrderProposal(signed));
            }
            Candidate::Unpaired(_) => {
                // The trusted final candidate multicasts solo orders
                // (including to itself; its ack follows in a later
                // callback so the order is not held back by it).
                let order = OrderMsg::Solo(signed);
                self.multicast_all(ctx, ScMsg::Order(order));
            }
        }
    }

    /// Shadow: validate the replica's proposal in the value domain and
    /// endorse it (§3.1), or fail-signal.
    fn endorse_proposal(&mut self, proposal: Signed<OrderPayload>, ctx: &mut ScCtx<'_>) {
        if !(self.installed && self.i_am_endorser()) || self.halted {
            return;
        }
        let Some(counterpart) = self.topo().counterpart(self.me()) else {
            return;
        };
        if proposal.signer != counterpart || !proposal.verify(self.provider.as_mut()) {
            return; // not from my replica / forged: ignore
        }
        if self.pair_status != Some(PairStatus::Up) {
            return;
        }
        let rubber_stamp = self.cfg.fault == Fault::RubberStamp;
        if !rubber_stamp {
            // Value-domain checks: correct rank, in-sequence, digest match.
            let p = &proposal.payload;
            if p.c != self.c || p.o != self.next_endorse {
                self.fail_signal(true, ctx);
                return;
            }
            let mut missing = false;
            let mut refs: Vec<&Request> = Vec::with_capacity(p.batch.requests.len());
            for id in p.batch.requests.iter() {
                match self.requests.get(id) {
                    Some(r) => refs.push(r),
                    None => {
                        missing = true;
                        break;
                    }
                }
            }
            if missing {
                // Requests lag the proposal on the fast pair link; re-check
                // when they arrive. (Not a failure: timeliness of requests
                // is the asynchronous network's business.)
                self.stashed_proposal = Some(proposal);
                return;
            }
            let input = BatchRef::digest_input(&refs);
            let expected = Digest::new(&self.provider.digest(&input));
            if expected != p.batch.digest {
                // Value-domain failure observed on the counterpart.
                self.fail_signal(true, ctx);
                return;
            }
        }
        self.next_endorse = proposal.payload.o.next();
        self.backlog
            .mark_ordered(proposal.payload.batch.requests.iter().copied());
        // Phase 2 (2→n): endorse and multicast. The multicast includes
        // this shadow itself: its own ack (a 28 ms signing under RSA-1024)
        // must happen in a later callback so the Order leaves the NIC as
        // soon as the endorsement is computed.
        let endorsed = DoublySigned::endorse(proposal, self.provider.as_mut());
        let order = OrderMsg::Endorsed(endorsed);
        self.multicast_all(ctx, ScMsg::Order(order));
    }

    // ---------------------------------------------------------------
    // Normal part: N1–N3 (§4.1)
    // ---------------------------------------------------------------

    /// Authenticates an order message against the claimed candidate.
    fn authenticate_order(&mut self, order: &OrderMsg) -> bool {
        let c = order.payload().c;
        if c.0 == 0 || c.0 > self.topo().candidate_count() {
            return false;
        }
        let candidate = self.topo().candidate(c);
        match order {
            OrderMsg::Endorsed(d) => {
                let Candidate::Pair { replica, shadow } = candidate else {
                    return false;
                };
                d.signed_by_pair(replica, shadow) && d.verify(self.provider.as_mut())
            }
            OrderMsg::Solo(s) => {
                let Candidate::Unpaired(p) = candidate else {
                    return false;
                };
                s.signer == p && s.verify(self.provider.as_mut())
            }
        }
    }

    /// Handles an authenticated order: store, then ack everything that is
    /// now in sequence.
    fn accept_order(&mut self, order: OrderMsg, ctx: &mut ScCtx<'_>) {
        let o = order.payload().o;
        self.backlog
            .mark_ordered(order.payload().batch.requests.iter().copied());
        if !self.log.store_order(order) {
            return; // duplicate (both pair members multicast)
        }
        self.ack_in_sequence(ctx);
        self.try_commit(o, ctx);
    }

    /// N1: multicast acks for every stored order that is next in sequence.
    fn ack_in_sequence(&mut self, ctx: &mut ScCtx<'_>) {
        // IN1: ordering activity is suspended between a coordinator's
        // fail-signal and the next installation. Acking a stored order
        // during that window would create commit evidence invisible to
        // the BackLog/ViewChange quorum the new coordinator computes its
        // Start from — the resulting commit could collide with start_o.
        if !self.installed {
            return;
        }
        loop {
            let o = self.next_to_ack;
            let Some(rec) = self.log.record(o) else {
                return;
            };
            if rec.acked {
                self.next_to_ack = o.next();
                continue;
            }
            let Some(order) = rec.order.clone() else {
                return;
            };
            self.log.record_mut(o).acked = true;
            self.next_to_ack = o.next();
            // N2 counts "ack or order ... from (n−f) distinct processes":
            // the signatories of the order itself already contribute, so
            // the coordinator pair does not send separate acks for its own
            // orders — each pair member signs once per batch, which is
            // precisely why SC saturates later than BFT (two signings per
            // replica per batch).
            let i_signed_it = order.signatories().contains(&self.me());
            if self.cfg.fault != Fault::DropAcks && !i_signed_it {
                let ack = Signed::sign(AckPayload { order }, self.provider.as_mut());
                self.multicast_all(ctx, ScMsg::Ack(ack));
            }
        }
    }

    fn on_ack(&mut self, ack: Signed<AckPayload>, ctx: &mut ScCtx<'_>) {
        if !ack.verify(self.provider.as_mut()) {
            return;
        }
        let o = ack.payload.o();
        // The embedded order lets lagging processes adopt it (N2 counts
        // "ack or order"). Authenticate it unless we already hold an
        // identical order.
        let already = self
            .log
            .record(o)
            .and_then(|r| r.order.as_ref())
            .is_some_and(|stored| stored.payload().batch.digest == *ack.payload.digest());
        if !already {
            let order = ack.payload.order.clone();
            if self.authenticate_order(&order) && self.installed && order.payload().c == self.c {
                self.accept_order(order, ctx);
            }
        }
        self.log.store_ack(ack);
        self.try_commit(o, ctx);
    }

    /// N2/N3: commit once `n−f` eligible processes support the order.
    fn try_commit(&mut self, o: SeqNo, ctx: &mut ScCtx<'_>) {
        let quorum = self.ack_quorum();
        let topo = *self.topo();
        let floor = self.dumb_below;
        let eligible = move |p: ProcessId| {
            if topo.variant() == Variant::Scr {
                return true;
            }
            match topo.candidate_rank_of(p) {
                Some(r) => r >= floor || topo.candidate(r).endorser().is_none(),
                None => true,
            }
        };
        if let Some(_proof) = self.log.try_commit(o, quorum, eligible) {
            let rec = self.log.record(o).expect("just committed");
            let order = rec.order.as_ref().expect("committed with order");
            let p = order.payload();
            ctx.emit(ScEvent::Committed {
                c: p.c,
                o,
                digest: p.batch.digest,
                requests: p.batch.len(),
                request_ids: p.batch.requests.clone(),
                formed_at_ns: p.formed_at_ns,
            });
            self.drive_checkpoints(ctx);
        }
    }

    // ---------------------------------------------------------------
    // Fail-signalling (§3.2)
    // ---------------------------------------------------------------

    /// Emits this pair's doubly-signed fail-signal.
    fn fail_signal(&mut self, value_domain: bool, ctx: &mut ScCtx<'_>) {
        let Some(presigned) = self.presigned_fs.clone() else {
            return;
        };
        if self.my_fs_emitted {
            // Already signalled; only escalate the status.
            if value_domain {
                self.pair_status = Some(PairStatus::PermanentlyDown);
            }
            return;
        }
        self.my_fs_emitted = true;
        self.pair_status = Some(if value_domain {
            PairStatus::PermanentlyDown
        } else {
            PairStatus::Down
        });
        let pair = presigned.payload.pair;
        let fs = DoublySigned::endorse(presigned, self.provider.as_mut());
        ctx.emit(ScEvent::FailSignalIssued { pair, value_domain });
        self.multicast_all(ctx, ScMsg::FailSignal(fs.clone()));
        self.handle_fail_signal(fs, ctx);
    }

    /// Validates a fail-signal: both signatures from the members of the
    /// claimed pair.
    fn authenticate_fail_signal(&mut self, fs: &FailSignalMsg) -> bool {
        let pair = fs.payload.pair;
        if pair.0 == 0 || pair.0 > self.topo().candidate_count() {
            return false;
        }
        let Candidate::Pair { replica, shadow } = self.topo().candidate(pair) else {
            return false;
        };
        fs.signed_by_pair(replica, shadow) && fs.verify(self.provider.as_mut())
    }

    fn handle_fail_signal(&mut self, fs: FailSignalMsg, ctx: &mut ScCtx<'_>) {
        let pair = fs.payload.pair;
        if self.fail_signalled.contains_key(&pair) {
            return;
        }
        self.fail_signalled.insert(pair, fs.clone());

        // Echo to the first signatory in case the second maliciously
        // omitted to inform its counterpart (§3.2).
        if !fs.signed_by_pair(
            self.me(),
            self.topo().counterpart(self.me()).unwrap_or(self.me()),
        ) {
            self.send(ctx, fs.first, ScMsg::FailSignal(fs.clone()));
        }

        // If my own pair fail-signalled (counterpart emitted it), stop
        // collaborating and broadcast my own copy too.
        if Some(pair) == self.my_pair_rank() && !self.my_fs_emitted {
            if let Some(presigned) = self.presigned_fs.clone() {
                self.my_fs_emitted = true;
                self.pair_status = Some(PairStatus::Down);
                let mine = DoublySigned::endorse(presigned, self.provider.as_mut());
                ctx.emit(ScEvent::FailSignalIssued {
                    pair,
                    value_domain: false,
                });
                self.multicast_all(ctx, ScMsg::FailSignal(mine));
            }
        }

        match self.topo().variant() {
            Variant::Sc => {
                if pair == self.c {
                    self.begin_install(ctx);
                }
            }
            Variant::Scr => {
                if pair == self.topo().view_candidate(self.view) {
                    self.begin_view_change(self.view.next(), ctx);
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Install part: IN1–IN5 (§4.2)
    // ---------------------------------------------------------------

    /// IN1: advance to the next candidate and multicast BackLog.
    fn begin_install(&mut self, ctx: &mut ScCtx<'_>) {
        // Advance past every fail-signalled candidate (ranks may have
        // fail-signalled out of order).
        let mut next = self.c.next();
        while self.fail_signalled.contains_key(&next) {
            next = next.next();
        }
        if next.0 > self.topo().candidate_count() {
            // Every candidate exhausted — cannot happen with ≤ f faults
            // under assumption 1, but halt defensively.
            self.halted = true;
            return;
        }
        let triggering = self
            .fail_signalled
            .get(&self.c)
            .cloned()
            .expect("install triggered by fail-signal");
        self.c = next;
        self.installed = false;
        self.reset_install_state();
        ctx.cancel_timer(TIMER_BATCH);
        ctx.cancel_timer(TIMER_SHADOW_CHECK);

        let payload = BackLogPayload {
            new_c: self.c,
            fail_signal: triggering,
            max_committed: self.log.max_committed_entry(),
            uncommitted: self.log.acked_uncommitted(),
            pad: vec![0u8; self.cfg.backlog_pad],
        };
        let signed = Signed::sign(payload, self.provider.as_mut());
        self.multicast_all(ctx, ScMsg::BackLog(signed));
    }

    fn reset_install_state(&mut self) {
        self.backlogs.clear();
        self.start_msg = None;
        self.start_digest = None;
        self.start_sig_sent = false;
        self.start_tuples.clear();
        self.start_cert = None;
        self.start_cert_issued = false;
        self.start_acks.clear();
        self.start_committed = false;
    }

    fn on_backlog(&mut self, bl: Signed<BackLogPayload>, ctx: &mut ScCtx<'_>) {
        if bl.payload.new_c != self.c || self.installed {
            // A backlog for a rank we haven't reached: the embedded
            // fail-signal will bring us up to date.
            let fs = bl.payload.fail_signal.clone();
            if self.authenticate_fail_signal(&fs) {
                self.handle_fail_signal(fs, ctx);
            }
            if bl.payload.new_c != self.c || self.installed {
                return;
            }
        }
        if !bl.verify(self.provider.as_mut()) {
            return;
        }
        self.backlogs.insert(bl.signer, bl);
        self.maybe_compute_start(ctx);
    }

    /// IN2 (proposer side): with `n−f` BackLogs, compute the Start.
    fn maybe_compute_start(&mut self, ctx: &mut ScCtx<'_>) {
        if self.installed || self.start_msg.is_some() || self.halted {
            return;
        }
        if !self.i_am_proposer() || self.backlogs.len() < self.install_quorum() {
            return;
        }
        let backlogs: Vec<Signed<BackLogPayload>> = self.backlogs.values().cloned().collect();
        let payloads: Vec<&BackLogPayload> = backlogs.iter().map(|b| &b.payload).collect();
        let f_plus_1 = self
            .topo()
            .effective_f(self.retired_pairs().saturating_sub(1))
            + 1;
        let (new_backlog, start_o) = compute_new_backlog(&payloads, f_plus_1);
        let payload = StartPayload {
            c: self.c,
            start_o,
            new_backlog,
        };
        let signed = Signed::sign(payload, self.provider.as_mut());
        match self.coordinator() {
            Candidate::Pair { shadow, .. } => {
                self.send(
                    ctx,
                    shadow,
                    ScMsg::StartProposal {
                        start: signed,
                        backlogs,
                    },
                );
            }
            Candidate::Unpaired(_) => {
                let start = StartMsg::Solo(signed);
                self.adopt_start(start.clone(), ctx);
                self.multicast_all(ctx, ScMsg::Start(start));
            }
        }
    }

    /// IN2 (endorser side): verify the proposer's Start against the
    /// BackLogs and endorse it.
    fn on_start_proposal(
        &mut self,
        start: Signed<StartPayload>,
        backlogs: Vec<Signed<BackLogPayload>>,
        ctx: &mut ScCtx<'_>,
    ) {
        if self.installed || !self.i_am_endorser() || self.halted {
            return;
        }
        let Some(counterpart) = self.topo().counterpart(self.me()) else {
            return;
        };
        if start.signer != counterpart || !start.verify(self.provider.as_mut()) {
            return;
        }
        if self.cfg.fault != Fault::RubberStamp {
            // Verify the backlog quorum and recompute NewBackLog.
            if backlogs.len() < self.install_quorum() {
                return;
            }
            // In SCR the backlogs arrive as re-wrapped view-change
            // payloads whose signatures were verified on the ViewChange
            // envelope; skip re-verification there (the conflict rule
            // below still checks content against our own set).
            let scr = self.topo().variant() == Variant::Scr;
            let mut senders = HashSet::new();
            for b in &backlogs {
                // Skip re-verifying a backlog identical to one already
                // authenticated on direct receipt (a real implementation
                // caches verification; without this the shadow pays the
                // whole quorum's signature checks twice on the fail-over
                // critical path).
                let already_verified = self
                    .backlogs
                    .get(&b.signer)
                    .is_some_and(|own| own.payload == b.payload && own.sig == b.sig);
                if b.payload.new_c != self.c
                    || !senders.insert(b.signer)
                    || (!scr && !already_verified && !b.verify(self.provider.as_mut()))
                {
                    self.fail_signal(true, ctx);
                    return;
                }
            }
            // Union the proposer's backlogs with those received directly —
            // the §4.2 conflicting-order check ("verification is done
            // using the BackLogs which p'c received directly").
            let mut union: BTreeMap<ProcessId, Signed<BackLogPayload>> = self.backlogs.clone();
            for b in &backlogs {
                union.entry(b.signer).or_insert_with(|| b.clone());
            }
            let union_payloads: Vec<&BackLogPayload> = union.values().map(|b| &b.payload).collect();
            let f_plus_1 = self
                .topo()
                .effective_f(self.retired_pairs().saturating_sub(1))
                + 1;
            let (expected_backlog, expected_o) = {
                let provided: Vec<&BackLogPayload> = backlogs.iter().map(|b| &b.payload).collect();
                compute_new_backlog(&provided, f_plus_1)
            };
            let p = &start.payload;
            let consistent = p.start_o == expected_o
                && p.new_backlog.len() == expected_backlog.len()
                && p.new_backlog
                    .iter()
                    .zip(&expected_backlog)
                    .all(|(a, b)| a.payload().o == b.payload().o);
            // Conflict rule: any chosen order that conflicts across the
            // union must appear in ≥ f+1 backlogs.
            let conflict_ok =
                crate::install::verify_choice(&p.new_backlog, &union_payloads, f_plus_1);
            if !consistent || !conflict_ok {
                self.fail_signal(true, ctx);
                return;
            }
        }
        let endorsed = DoublySigned::endorse(start, self.provider.as_mut());
        let start = StartMsg::Endorsed(endorsed);
        self.adopt_start(start.clone(), ctx);
        self.multicast_all(ctx, ScMsg::Start(start));
    }

    fn authenticate_start(&mut self, start: &StartMsg) -> bool {
        let c = start.payload().c;
        if c.0 == 0 || c.0 > self.topo().candidate_count() {
            return false;
        }
        let candidate = self.topo().candidate(c);
        match start {
            StartMsg::Endorsed(d) => {
                let Candidate::Pair { replica, shadow } = candidate else {
                    return false;
                };
                d.signed_by_pair(replica, shadow) && d.verify(self.provider.as_mut())
            }
            StartMsg::Solo(s) => {
                let Candidate::Unpaired(p) = candidate else {
                    return false;
                };
                s.signer == p && s.verify(self.provider.as_mut())
            }
        }
    }

    /// Stores an authenticated Start and performs IN3 (tuple signing).
    fn adopt_start(&mut self, start: StartMsg, ctx: &mut ScCtx<'_>) {
        if self.start_msg.is_some() || self.halted {
            return;
        }
        let digest = Digest::new(&self.provider.digest(&start.to_bytes_for_digest()));
        self.start_digest = Some(digest);
        self.start_msg = Some(start.clone());

        let in_coordinator = self.coordinator().contains(self.me());
        if self.tuples_needed() > 0 && !in_coordinator && !self.start_sig_sent {
            // IN3: send an identifier-signature tuple to the pair.
            self.start_sig_sent = true;
            let sig = Signed::sign(
                StartSigPayload {
                    c: self.c,
                    start_digest: digest,
                },
                self.provider.as_mut(),
            );
            let cand = self.coordinator();
            self.send(ctx, cand.proposer(), ScMsg::StartSig(sig.clone()));
            if let Some(endorser) = cand.endorser() {
                self.send(ctx, endorser, ScMsg::StartSig(sig));
            }
        }
        if in_coordinator && self.tuples_needed() == 0 {
            // f = 1: no tuples needed; the pair certifies immediately.
            self.issue_start_cert(ctx);
        }
        // A StartCert may have raced ahead of the Start.
        let stashed = std::mem::take(&mut self.stashed_certs);
        for (c, tuples) in stashed {
            self.on_start_cert(c, tuples, ctx);
        }
        self.maybe_install(ctx);
    }

    fn on_start_sig(&mut self, sig: Signed<StartSigPayload>, ctx: &mut ScCtx<'_>) {
        if sig.payload.c != self.c || !self.coordinator().contains(self.me()) {
            return;
        }
        if Some(&sig.payload.start_digest) != self.start_digest.as_ref() {
            return;
        }
        if self.coordinator().contains(sig.signer) || !sig.verify(self.provider.as_mut()) {
            return;
        }
        self.start_tuples.insert(sig.signer, sig);
        if self.start_tuples.len() >= self.tuples_needed() {
            self.issue_start_cert(ctx);
        }
    }

    /// IN4: the installing pair multicasts the collected tuples. This is
    /// the fail-over latency endpoint of §5 ("the instance the new
    /// coordinator issues a Start message with (f+1) identifier-signature
    /// tuples").
    fn issue_start_cert(&mut self, ctx: &mut ScCtx<'_>) {
        if self.start_cert_issued || self.halted {
            return;
        }
        let Some(start) = &self.start_msg else { return };
        self.start_cert_issued = true;
        let tuples: Vec<Signed<StartSigPayload>> = self.start_tuples.values().cloned().collect();
        ctx.emit(ScEvent::StartCertIssued {
            c: self.c,
            start_o: start.payload().start_o,
        });
        self.start_cert = Some(tuples.clone());
        self.multicast_all(ctx, ScMsg::StartCert { c: self.c, tuples });
        self.maybe_install(ctx);
    }

    fn on_start_cert(
        &mut self,
        c: Rank,
        tuples: Vec<Signed<StartSigPayload>>,
        ctx: &mut ScCtx<'_>,
    ) {
        if c != self.c || self.installed || self.start_cert.is_some() {
            return;
        }
        let Some(digest) = self.start_digest else {
            // Start not yet received (network jitter can reorder the
            // multicast pair); stash and re-validate once it arrives.
            self.stashed_certs.push((c, tuples));
            return;
        };
        let mut seen = HashSet::new();
        let mut valid = 0usize;
        for t in &tuples {
            if t.payload.c == c
                && t.payload.start_digest == digest
                && !self.coordinator().contains(t.signer)
                && seen.insert(t.signer)
                && t.verify(self.provider.as_mut())
            {
                valid += 1;
            }
        }
        if valid < self.tuples_needed() {
            return;
        }
        self.start_cert = Some(tuples);
        self.maybe_install(ctx);
    }

    /// IN5: with an authentic Start and the tuple certificate, install the
    /// new coordinator and run the normal part on the Start itself.
    fn maybe_install(&mut self, ctx: &mut ScCtx<'_>) {
        if self.installed || self.halted {
            return;
        }
        let (Some(start), Some(_)) = (&self.start_msg, &self.start_cert) else {
            return;
        };
        let start = start.clone();
        let start_o = start.payload().start_o;
        self.installed = true;
        if self.topo().variant() == Variant::Sc {
            self.dumb_below = self.c;
        }
        ctx.emit(ScEvent::Installed { c: self.c });

        // Sequencing resumes after the Start.
        self.next_propose = start_o.next();
        self.next_endorse = start_o.next();
        self.arm_role_timers(ctx);

        // N1 for the Start itself: multicast a start-ack.
        let digest = self.start_digest.expect("set with start");
        self.start_acks.insert(self.me(), digest);
        let ack = Signed::sign(
            StartSigPayload {
                c: self.c,
                start_digest: digest,
            },
            self.provider.as_mut(),
        );
        // Start-acks are StartSig messages rebroadcast to everyone (the
        // pair distinguishes them from IN3 tuples by the install state).
        self.multicast_all(ctx, ScMsg::StartSig(ack));
        self.next_to_ack = SeqNo(start_o.0.max(self.next_to_ack.0)).next();
        self.try_commit_start(start.clone(), ctx);

        // Re-process any orders that raced ahead of the installation.
        let stashed = std::mem::take(&mut self.stashed_orders);
        for order in stashed {
            if order.payload().c == self.c {
                self.accept_order(order, ctx);
            }
        }
    }

    fn on_start_ack(&mut self, sig: Signed<StartSigPayload>, ctx: &mut ScCtx<'_>) {
        if sig.payload.c != self.c || self.start_committed {
            return;
        }
        if Some(&sig.payload.start_digest) != self.start_digest.as_ref() {
            return;
        }
        if !sig.verify(self.provider.as_mut()) {
            return;
        }
        self.start_acks.insert(sig.signer, sig.payload.start_digest);
        if let Some(start) = self.start_msg.clone() {
            self.try_commit_start(start, ctx);
        }
    }

    fn try_commit_start(&mut self, start: StartMsg, ctx: &mut ScCtx<'_>) {
        if self.start_committed || !self.installed {
            return;
        }
        let mut voters: HashSet<ProcessId> = self
            .start_acks
            .keys()
            .copied()
            .filter(|p| self.eligible(*p))
            .collect();
        match &start {
            StartMsg::Endorsed(d) => {
                voters.insert(d.first);
                voters.insert(d.second);
            }
            StartMsg::Solo(s) => {
                voters.insert(s.signer);
            }
        }
        if voters.len() < self.ack_quorum() {
            return;
        }
        self.start_committed = true;
        let start_o = start.payload().start_o;
        let slot_was_committed = self.log.is_committed(start_o);
        // Claim the start_o slot in the log so no straggler acks for an
        // order the quorum never saw can commit something else there.
        self.log.record_mut(start_o).committed = true;
        // The Start itself occupies `start_o` in the total order (IN5
        // treats it "as an order message with sequence number start_o");
        // surface it as an empty-batch commit so executors see a gapless
        // sequence.
        if !slot_was_committed {
            ctx.emit(ScEvent::Committed {
                c: self.c,
                o: start_o,
                digest: self.start_digest.unwrap_or_default(),
                requests: 0,
                request_ids: Vec::new().into(),
                formed_at_ns: ctx.now().as_ns(),
            });
        }
        // Committing the Start commits every order it carries (IN5).
        for order in &start.payload().new_backlog {
            let o = order.payload().o;
            if self.log.is_committed(o) {
                continue;
            }
            let p = order.payload().clone();
            self.log
                .force_commit(order.clone(), crate::messages::CommitProof::default());
            self.backlog.mark_ordered(p.batch.requests.iter().copied());
            ctx.emit(ScEvent::Committed {
                c: p.c,
                o,
                digest: p.batch.digest,
                requests: p.batch.requests.len(),
                request_ids: p.batch.requests.clone(),
                formed_at_ns: p.formed_at_ns,
            });
        }
        // Fetch any committed orders we are still missing (the paper's
        // f+1-agreeing-copies recovery).
        let floor = start
            .payload()
            .new_backlog
            .iter()
            .map(|o| o.payload().o.0)
            .min()
            .unwrap_or(start.payload().start_o.0);
        let mut missing_from: Option<SeqNo> = None;
        for o in (self.log.first().0..floor).map(SeqNo) {
            if !self.log.is_committed(o) {
                missing_from = Some(o);
                break;
            }
        }
        if let Some(from) = missing_from {
            self.multicast_all(ctx, ScMsg::FetchCommitted { from });
        }
        self.drive_checkpoints(ctx);
    }

    // ---------------------------------------------------------------
    // State transfer
    // ---------------------------------------------------------------

    fn on_fetch(&mut self, from: SeqNo, requester: ProcessId, ctx: &mut ScCtx<'_>) {
        for order in self.log.committed_from(from).into_iter().take(64) {
            self.send(ctx, requester, ScMsg::CommittedOrder(order));
        }
    }

    fn on_committed_order(&mut self, order: OrderMsg, sender: ProcessId, ctx: &mut ScCtx<'_>) {
        let o = order.payload().o;
        if self.log.is_committed(o) || !self.authenticate_order(&order) {
            return;
        }
        // f+1 agreeing copies prove some correct process vouches for it.
        let f_plus_1 = self.topo().effective_f(self.retired_pairs()) + 1;
        let entry = self.fetch_replies.entry(o).or_default();
        entry.insert(sender, order);
        let mut counts: HashMap<Digest, usize> = HashMap::new();
        for om in entry.values() {
            *counts.entry(om.payload().batch.digest).or_insert(0) += 1;
        }
        let Some((digest, _)) = counts.into_iter().find(|(_, n)| *n >= f_plus_1) else {
            return;
        };
        let order = entry
            .values()
            .find(|om| om.payload().batch.digest == digest)
            .cloned()
            .expect("counted above");
        self.fetch_replies.remove(&o);
        let p = order.payload().clone();
        self.log
            .force_commit(order, crate::messages::CommitProof::default());
        ctx.emit(ScEvent::Committed {
            c: p.c,
            o,
            digest: p.batch.digest,
            requests: p.batch.requests.len(),
            request_ids: p.batch.requests.clone(),
            formed_at_ns: p.formed_at_ns,
        });
        self.drive_checkpoints(ctx);
    }

    // ---------------------------------------------------------------
    // SCR view change (§4.4)
    // ---------------------------------------------------------------

    fn begin_view_change(&mut self, v: ViewId, ctx: &mut ScCtx<'_>) {
        if v <= self.view && self.installed {
            return;
        }
        if self
            .view_changes
            .get(&v)
            .is_some_and(|m| m.contains_key(&self.me()))
        {
            return;
        }
        let Some(fs) = self.fail_signalled.values().next_back().cloned() else {
            return;
        };
        let backlog = BackLogPayload {
            new_c: self.topo().view_candidate(v),
            fail_signal: fs,
            max_committed: self.log.max_committed_entry(),
            uncommitted: self.log.acked_uncommitted(),
            pad: vec![0u8; self.cfg.backlog_pad],
        };
        let vc = Signed::sign(ViewChangePayload { v, backlog }, self.provider.as_mut());
        let me = self.me();
        self.view_changes
            .entry(v)
            .or_default()
            .insert(me, vc.clone());
        self.multicast_all(ctx, ScMsg::ViewChange(vc));
        self.process_view_change_state(v, ctx);
    }

    fn on_view_change(&mut self, vc: Signed<ViewChangePayload>, ctx: &mut ScCtx<'_>) {
        let v = vc.payload.v;
        if v <= self.view && self.installed {
            return;
        }
        if !vc.verify(self.provider.as_mut()) {
            return;
        }
        self.view_changes
            .entry(v)
            .or_default()
            .insert(vc.signer, vc);
        // Join the view change once f+1 processes vouch for it (at least
        // one correct process saw the fail-signal).
        let f_plus_1 = self.topo().f() as usize + 1;
        if self.view_changes[&v].len() >= f_plus_1 {
            self.begin_view_change(v, ctx);
        }
        self.process_view_change_state(v, ctx);
    }

    fn process_view_change_state(&mut self, v: ViewId, ctx: &mut ScCtx<'_>) {
        let quorum = self.topo().commit_quorum();
        let count = self.view_changes.get(&v).map_or(0, |m| m.len());
        if count < quorum {
            return;
        }
        let candidate = self.topo().view_candidate(v);
        let cand = self.topo().candidate(candidate);
        if !cand.contains(self.me()) {
            // Move to the new view; installation completes via Start.
            if v > self.view {
                self.view = v;
                self.c = candidate;
                self.installed = false;
                self.reset_install_state();
                ctx.emit(ScEvent::ViewChanged { v });
            }
            return;
        }
        // I am a member of the candidate pair for view v.
        if self.pair_status != Some(PairStatus::Up) {
            if self.unwilling_sent_for != Some(v) {
                self.unwilling_sent_for = Some(v);
                if let Some(fs) = self.fail_signalled.get(&candidate).cloned().or_else(|| {
                    self.presigned_fs
                        .clone()
                        .map(|pre| DoublySigned::endorse(pre, self.provider.as_mut()))
                }) {
                    let u = Signed::sign(
                        UnwillingPayload { v, fail_signal: fs },
                        self.provider.as_mut(),
                    );
                    ctx.emit(ScEvent::UnwillingSent { v });
                    self.multicast_all(ctx, ScMsg::Unwilling(u));
                }
            }
            return;
        }
        if v > self.view {
            self.view = v;
            self.c = candidate;
            self.installed = false;
            self.reset_install_state();
            ctx.emit(ScEvent::ViewChanged { v });
        }
        if self.i_am_proposer() && self.start_msg.is_none() {
            // Compute Start from the view-change backlogs (IN2).
            let vcs = &self.view_changes[&v];
            let payloads: Vec<BackLogPayload> =
                vcs.values().map(|s| s.payload.backlog.clone()).collect();
            let payload_refs: Vec<&BackLogPayload> = payloads.iter().collect();
            let f_plus_1 = self.topo().f() as usize + 1;
            let (new_backlog, start_o) = compute_new_backlog(&payload_refs, f_plus_1);
            let payload = StartPayload {
                c: self.c,
                start_o,
                new_backlog,
            };
            let signed = Signed::sign(payload, self.provider.as_mut());
            if let Candidate::Pair { shadow, .. } = cand {
                // Reuse the SC endorsement path: ship the backlogs as
                // signed BackLog messages reconstructed from view changes.
                let backlogs: Vec<Signed<BackLogPayload>> = vcs
                    .values()
                    .map(|s| Signed {
                        payload: s.payload.backlog.clone(),
                        signer: s.signer,
                        sig: PooledBuf::empty(), // shadow revalidates from its own set
                    })
                    .collect();
                self.send(
                    ctx,
                    shadow,
                    ScMsg::StartProposal {
                        start: signed,
                        backlogs,
                    },
                );
            }
        }
    }

    fn on_unwilling(&mut self, u: Signed<UnwillingPayload>, ctx: &mut ScCtx<'_>) {
        if self.topo().variant() != Variant::Scr {
            return;
        }
        let v = u.payload.v;
        let candidate = self.topo().view_candidate(v);
        if !self.topo().candidate(candidate).contains(u.signer) {
            return;
        }
        if !u.verify(self.provider.as_mut()) {
            return;
        }
        // Echo to the pair and move to the next view (§4.4).
        let cand = self.topo().candidate(candidate);
        self.send(ctx, cand.proposer(), ScMsg::Unwilling(u.clone()));
        if let Some(endorser) = cand.endorser() {
            self.send(ctx, endorser, ScMsg::Unwilling(u.clone()));
        }
        self.fail_signalled
            .entry(candidate)
            .or_insert(u.payload.fail_signal.clone());
        self.begin_view_change(v.next(), ctx);
    }

    // ---------------------------------------------------------------
    // Pair heartbeats (time-domain checking and SCR recovery)
    // ---------------------------------------------------------------

    fn on_heartbeat(&mut self, hb: Signed<HeartbeatPayload>) {
        let Some(counterpart) = self.topo().counterpart(self.me()) else {
            return;
        };
        // Heartbeats travel only on the fast pair link and are
        // MAC-authenticated (Assumption 2's MACs) — public-key signatures
        // on a 20 Hz liveness beat would dominate each node's CPU.
        if hb.signer != counterpart
            || !self
                .provider
                .verify_mac(counterpart.0, &hb.payload.to_bytes(), &hb.sig)
        {
            return;
        }
        self.hb_recv_in_window += 1;
        self.hb_fresh_streak += 1;
    }

    fn heartbeat_tick(&mut self, ctx: &mut ScCtx<'_>) {
        if self.pair_status.is_none() || self.halted {
            return;
        }
        let Some(counterpart) = self.topo().counterpart(self.me()) else {
            return;
        };
        self.hb_send_seq += 1;
        let payload = HeartbeatPayload {
            pair: self.my_pair_rank().unwrap_or(Rank(0)),
            seq: self.hb_send_seq,
        };
        let tag = self.provider.mac(counterpart.0, &payload.to_bytes());
        let hb = Signed {
            payload,
            signer: self.me(),
            sig: tag.into(),
        };
        // Heartbeats flow even while Down so SCR pairs can recover; they
        // bypass the dumb-process gag because they never touch the
        // asynchronous network (fast pair link only).
        if !self.halted {
            ctx.send(counterpart.0 as usize, ScMsg::Heartbeat(hb));
        }
        ctx.set_timer(self.cfg.heartbeat_period, TIMER_HEARTBEAT);
    }

    fn heartbeat_check(&mut self, ctx: &mut ScCtx<'_>) {
        if self.pair_status.is_none() || self.halted {
            return;
        }
        let received = self.hb_recv_in_window;
        self.hb_recv_in_window = 0;
        match self.pair_status {
            Some(PairStatus::Up) if received == 0 && self.cfg.time_checks => {
                // Time-domain failure: the counterpart missed the
                // window the delay estimate promised.
                self.hb_fresh_streak = 0;
                self.fail_signal(false, ctx);
            }
            Some(PairStatus::Down)
                if self.topo().variant() == Variant::Scr
                // SCR recovery: sustained fresh heartbeats restore `up`.
                && self.hb_fresh_streak >= self.cfg.recovery_beats =>
            {
                self.pair_status = Some(PairStatus::Up);
                self.my_fs_emitted = false;
                if let Some(pair) = self.my_pair_rank() {
                    ctx.emit(ScEvent::PairRecovered { pair });
                }
            }
            _ => {}
        }
        ctx.set_timer(
            self.cfg
                .heartbeat_period
                .saturating_mul(u64::from(self.cfg.heartbeat_misses)),
            TIMER_HB_CHECK,
        );
    }

    /// Shadow timeliness check: unordered requests older than the delay
    /// estimate mean the coordinator replica is not deciding orders
    /// (time-domain failure, §3.1).
    fn shadow_check(&mut self, ctx: &mut ScCtx<'_>) {
        if self.installed
            && self.i_am_endorser()
            && self.pair_status == Some(PairStatus::Up)
            && !self.halted
        {
            let now = ctx.now();
            let overdue = self.cfg.time_checks
                && self
                    .backlog
                    .oldest_waiting()
                    .is_some_and(|t| now.since(t) > self.cfg.order_timeout);
            if overdue {
                self.fail_signal(false, ctx);
                return;
            }
            ctx.set_timer(self.cfg.order_timeout, TIMER_SHADOW_CHECK);
        }
    }

    // ---------------------------------------------------------------
    // Checkpointing (log truncation; see crate::checkpoint)
    // ---------------------------------------------------------------

    /// Chains newly contiguous commits into the running checkpoint digest
    /// and announces at boundaries. Call after any commit.
    fn drive_checkpoints(&mut self, ctx: &mut ScCtx<'_>) {
        if !self.checkpoints.enabled() {
            return;
        }
        loop {
            let next = self.checkpoints.chained_up_to().next();
            if !self.log.is_committed(next) {
                return;
            }
            // Slots claimed by an install Start have no stored order; all
            // correct processes chain them with the empty digest, keeping
            // the running digests aligned.
            let digest = self
                .log
                .record(next)
                .and_then(|r| r.order.as_ref())
                .map(|om| om.payload().batch.digest)
                .unwrap_or_default();
            if let Some(payload) =
                self.checkpoints
                    .chain_commit(next, &digest, self.provider.as_mut())
            {
                // Vote for our own checkpoint and tell everyone.
                let quorum = self.ack_quorum();
                if let Some(stable) = self.checkpoints.record_vote(self.me(), &payload, quorum) {
                    self.stabilize_checkpoint(stable, ctx);
                }
                let signed = Signed::sign(payload, self.provider.as_mut());
                self.multicast_all(ctx, ScMsg::Checkpoint(signed));
            }
        }
    }

    fn on_checkpoint(
        &mut self,
        vote: Signed<crate::checkpoint::CheckpointPayload>,
        ctx: &mut ScCtx<'_>,
    ) {
        if !self.checkpoints.enabled() || !vote.verify(self.provider.as_mut()) {
            return;
        }
        let quorum = self.ack_quorum();
        if let Some(stable) = self
            .checkpoints
            .record_vote(vote.signer, &vote.payload, quorum)
        {
            self.stabilize_checkpoint(stable, ctx);
        }
    }

    fn stabilize_checkpoint(&mut self, stable: SeqNo, ctx: &mut ScCtx<'_>) {
        // Keep the stable boundary record itself: BackLogs still need the
        // max-committed entry with its proof.
        self.log.truncate_below(stable);
        self.fetch_replies = self.fetch_replies.split_off(&stable);
        ctx.emit(ScEvent::CheckpointStable { o: stable });
    }

    // ---------------------------------------------------------------
    // Introspection for tests and harnesses
    // ---------------------------------------------------------------

    /// The current candidate rank.
    pub fn current_rank(&self) -> Rank {
        self.c
    }

    /// The current SCR view.
    pub fn current_view(&self) -> ViewId {
        self.view
    }

    /// True once the current candidate is installed.
    pub fn is_installed(&self) -> bool {
        self.installed
    }

    /// This pair's status, if paired.
    pub fn pair_status(&self) -> Option<PairStatus> {
        self.pair_status
    }

    /// The order log (committed prefix inspection).
    pub fn log(&self) -> &OrderLog {
        &self.log
    }

    /// Number of requests known but not yet ordered.
    pub fn unordered_len(&self) -> usize {
        self.backlog.waiting_len()
    }
}

impl StartMsg {
    /// The byte string identifying a Start for tuples and acks.
    fn to_bytes_for_digest(&self) -> Vec<u8> {
        self.to_bytes()
    }
}

impl Actor for ScProcess {
    type Msg = ScMsg;
    type Event = ScEvent;

    fn on_start(&mut self, ctx: &mut ScCtx<'_>) {
        self.arm_role_timers(ctx);
        self.arm_pair_timers(ctx);
    }

    fn on_message(&mut self, from: usize, msg: ScMsg, ctx: &mut ScCtx<'_>) {
        if self.halted {
            return;
        }
        let sender = ProcessId(from as u32);
        match msg {
            ScMsg::Request(req) => self.on_request(req, ctx),
            ScMsg::OrderProposal(p) => self.endorse_proposal(p, ctx),
            ScMsg::Order(order) => {
                if !self.authenticate_order(&order) {
                    return;
                }
                let oc = order.payload().c;
                if !self.installed || oc != self.c {
                    if oc >= self.c {
                        // IN1: ignore orders until installation; stash the
                        // ones from the incoming coordinator.
                        self.stashed_orders.push(order);
                    }
                    return;
                }
                self.accept_order(order, ctx);
            }
            ScMsg::Ack(ack) => self.on_ack(ack, ctx),
            ScMsg::FailSignal(fs) => {
                if self.authenticate_fail_signal(&fs) {
                    self.handle_fail_signal(fs, ctx);
                }
            }
            ScMsg::BackLog(bl) => self.on_backlog(bl, ctx),
            ScMsg::StartProposal { start, backlogs } => {
                self.on_start_proposal(start, backlogs, ctx)
            }
            ScMsg::Start(start) => {
                if !self.authenticate_start(&start) {
                    return;
                }
                if start.payload().c != self.c {
                    self.stashed_starts.push(start);
                    return;
                }
                if self.start_msg.is_none() {
                    self.adopt_start(start, ctx);
                } else {
                    self.maybe_install(ctx);
                }
            }
            ScMsg::StartSig(sig) => {
                // Before installation these are IN3 tuples for the pair;
                // after, they are start-acks (N1 on the Start).
                if self.installed || self.start_acks.contains_key(&self.me()) {
                    self.on_start_ack(sig, ctx);
                } else if self.coordinator().contains(self.me()) {
                    self.on_start_sig(sig.clone(), ctx);
                    self.on_start_ack(sig, ctx);
                } else {
                    self.on_start_ack(sig, ctx);
                }
            }
            ScMsg::StartCert { c, tuples } => self.on_start_cert(c, tuples, ctx),
            ScMsg::Heartbeat(hb) => self.on_heartbeat(hb),
            ScMsg::ViewChange(vc) => {
                if self.topo().variant() == Variant::Scr {
                    self.on_view_change(vc, ctx);
                }
            }
            ScMsg::Unwilling(u) => self.on_unwilling(u, ctx),
            ScMsg::FetchCommitted { from } => self.on_fetch(from, sender, ctx),
            ScMsg::CommittedOrder(order) => self.on_committed_order(order, sender, ctx),
            ScMsg::Checkpoint(vote) => self.on_checkpoint(vote, ctx),
        }
        // Drain stashed starts that have become current.
        if !self.stashed_starts.is_empty() && self.start_msg.is_none() {
            let mut stashed = std::mem::take(&mut self.stashed_starts);
            stashed.retain(|s| s.payload().c >= self.c);
            if let Some(pos) = stashed.iter().position(|s| s.payload().c == self.c) {
                let start = stashed.remove(pos);
                self.adopt_start(start, ctx);
            }
            self.stashed_starts = stashed;
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut ScCtx<'_>) {
        if self.halted {
            return;
        }
        match tag {
            TIMER_BATCH => {
                self.propose_batch(ctx);
                if self.installed && self.i_am_proposer() {
                    ctx.set_timer(self.cfg.batching_interval, TIMER_BATCH);
                }
            }
            TIMER_SHADOW_CHECK => self.shadow_check(ctx),
            TIMER_HEARTBEAT => self.heartbeat_tick(ctx),
            TIMER_HB_CHECK => self.heartbeat_check(ctx),
            _ => {}
        }
    }

    fn take_cost_ns(&mut self) -> u64 {
        self.provider.take_cost_ns()
    }
}

impl std::fmt::Debug for ScProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScProcess")
            .field("me", &self.cfg.me)
            .field("c", &self.c)
            .field("view", &self.view)
            .field("installed", &self.installed)
            .field("max_committed", &self.log.max_committed())
            .finish()
    }
}
