//! The per-process order log: orders seen, acks gathered, commits made.
//!
//! Implements the bookkeeping behind the normal part N1–N3 (§4.1): an
//! order may be committed once `ack`s or `order`s from `n−f` distinct
//! eligible processes support the same `(o, D(m))` binding, and the
//! supporting messages are retained as the *proof of commitment* that
//! later travels in BackLogs.

use std::collections::BTreeMap;

use sofb_proto::ids::{ProcessId, SeqNo};
use sofb_proto::request::Digest;
use sofb_proto::signed::Signed;

use crate::messages::{AckPayload, CommitProof, OrderMsg};

/// State tracked for one sequence number.
#[derive(Clone, Debug, Default)]
pub struct OrderRecord {
    /// The authenticated order, once received.
    pub order: Option<OrderMsg>,
    /// Acks by signer (each with the digest it vouched for).
    pub acks: BTreeMap<ProcessId, Signed<AckPayload>>,
    /// Whether this process has multicast its own ack (N1 done).
    pub acked: bool,
    /// Whether this sequence number is committed (N3 done).
    pub committed: bool,
    /// The retained proof of commitment.
    pub proof: Option<CommitProof>,
}

/// The order log of one process.
#[derive(Clone, Debug)]
pub struct OrderLog {
    records: BTreeMap<SeqNo, OrderRecord>,
    /// The first sequence number (orders below it predate this process's
    /// participation; 1 in normal deployments).
    first: SeqNo,
    max_committed: Option<SeqNo>,
}

impl Default for OrderLog {
    fn default() -> Self {
        Self::new(SeqNo(1))
    }
}

impl OrderLog {
    /// Creates a log whose first expected sequence number is `first`.
    pub fn new(first: SeqNo) -> Self {
        OrderLog {
            records: BTreeMap::new(),
            first,
            max_committed: None,
        }
    }

    /// The record for `o`, creating it if absent.
    pub fn record_mut(&mut self, o: SeqNo) -> &mut OrderRecord {
        self.records.entry(o).or_default()
    }

    /// The record for `o`, if any.
    pub fn record(&self, o: SeqNo) -> Option<&OrderRecord> {
        self.records.get(&o)
    }

    /// Stores an authenticated order; returns `false` if an order was
    /// already present for this sequence number (duplicates are normal:
    /// both pair members multicast).
    pub fn store_order(&mut self, order: OrderMsg) -> bool {
        let o = order.payload().o;
        let rec = self.record_mut(o);
        if rec.order.is_some() {
            return false;
        }
        rec.order = Some(order);
        true
    }

    /// Stores an authenticated ack (idempotent per signer).
    pub fn store_ack(&mut self, ack: Signed<AckPayload>) {
        let o = ack.payload.o();
        let rec = self.record_mut(o);
        rec.acks.entry(ack.signer).or_insert(ack);
    }

    /// Counts distinct eligible processes supporting `(o, digest)`:
    /// ack signers whose ack vouches for `digest`, plus the signatories of
    /// the stored order itself (an `order` counts like an `ack` in N2).
    pub fn evidence(
        &self,
        o: SeqNo,
        digest: &Digest,
        eligible: impl Fn(ProcessId) -> bool,
    ) -> usize {
        let Some(rec) = self.records.get(&o) else {
            return 0;
        };
        let mut voters: Vec<ProcessId> = Vec::new();
        for (signer, ack) in &rec.acks {
            if ack.payload.digest() == digest && eligible(*signer) {
                voters.push(*signer);
            }
        }
        if let Some(order) = &rec.order {
            if &order.payload().batch.digest == digest {
                for s in order.signatories() {
                    if eligible(s) && !voters.contains(&s) {
                        voters.push(s);
                    }
                }
            }
        }
        voters.len()
    }

    /// Attempts to commit `o`: requires a stored order and `quorum`
    /// eligible supporters of its digest. Returns the proof on the
    /// *transition* to committed (None if already committed or not ready).
    pub fn try_commit(
        &mut self,
        o: SeqNo,
        quorum: usize,
        eligible: impl Fn(ProcessId) -> bool,
    ) -> Option<CommitProof> {
        let rec = self.records.get(&o)?;
        if rec.committed {
            return None;
        }
        let order = rec.order.clone()?;
        let digest = order.payload().batch.digest;
        if self.evidence(o, &digest, &eligible) < quorum {
            return None;
        }
        let rec = self.records.get_mut(&o).expect("checked above");
        let proof = CommitProof {
            acks: rec
                .acks
                .values()
                .filter(|a| a.payload.digest() == &digest)
                .cloned()
                .collect(),
        };
        rec.committed = true;
        rec.proof = Some(proof.clone());
        if self.max_committed.is_none_or(|m| o > m) {
            self.max_committed = Some(o);
        }
        Some(proof)
    }

    /// Directly marks `o` committed with the given order (used when a
    /// commitment is adopted from an install's NewBackLog or a state
    /// transfer, where the proof travelled with the message).
    pub fn force_commit(&mut self, order: OrderMsg, proof: CommitProof) {
        let o = order.payload().o;
        let rec = self.record_mut(o);
        rec.order.get_or_insert(order);
        rec.committed = true;
        rec.proof.get_or_insert(proof);
        if self.max_committed.is_none_or(|m| o > m) {
            self.max_committed = Some(o);
        }
    }

    /// Largest committed sequence number.
    pub fn max_committed(&self) -> Option<SeqNo> {
        self.max_committed
    }

    /// The committed order with the largest sequence number, with proof.
    pub fn max_committed_entry(&self) -> Option<(OrderMsg, CommitProof)> {
        let o = self.max_committed?;
        let rec = self.records.get(&o)?;
        Some((rec.order.clone()?, rec.proof.clone().unwrap_or_default()))
    }

    /// True if `o` is committed.
    pub fn is_committed(&self, o: SeqNo) -> bool {
        self.records.get(&o).is_some_and(|r| r.committed)
    }

    /// All acked-but-uncommitted orders (BackLog item (c), §4.2 IN1).
    pub fn acked_uncommitted(&self) -> Vec<OrderMsg> {
        self.records
            .values()
            .filter(|r| r.acked && !r.committed)
            .filter_map(|r| r.order.clone())
            .collect()
    }

    /// Committed orders with sequence number ≥ `from` (state transfer).
    pub fn committed_from(&self, from: SeqNo) -> Vec<OrderMsg> {
        self.records
            .range(from..)
            .filter(|(_, r)| r.committed)
            .filter_map(|(_, r)| r.order.clone())
            .collect()
    }

    /// First sequence number of this log.
    pub fn first(&self) -> SeqNo {
        self.first
    }

    /// Discards every record strictly below `floor` (log truncation at a
    /// stable checkpoint). The commit cursor state is unaffected — only
    /// retained history shrinks.
    pub fn truncate_below(&mut self, floor: SeqNo) {
        self.records = self.records.split_off(&floor);
        if self.first < floor {
            self.first = floor;
        }
    }

    /// Number of retained records (tests assert GC keeps this bounded).
    pub fn retained(&self) -> usize {
        self.records.len()
    }

    /// Sequence numbers with a stored order but no commit yet.
    pub fn pending(&self) -> Vec<SeqNo> {
        self.records
            .iter()
            .filter(|(_, r)| r.order.is_some() && !r.committed)
            .map(|(o, _)| *o)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_crypto::provider::{Dealer, SimProvider};
    use sofb_crypto::scheme::SchemeId;
    use sofb_proto::ids::{ClientId, Rank};
    use sofb_proto::request::{BatchRef, RequestId};
    use sofb_proto::signed::DoublySigned;

    use crate::messages::OrderPayload;

    fn providers(n: usize) -> Vec<SimProvider> {
        Dealer::sim(SchemeId::Md5Rsa1024, n, 5)
    }

    fn order(provs: &mut [SimProvider], o: u64, digest: Vec<u8>) -> OrderMsg {
        let payload = OrderPayload {
            c: Rank(1),
            o: SeqNo(o),
            batch: BatchRef {
                requests: vec![RequestId {
                    client: ClientId(1),
                    seq: o,
                }]
                .into(),
                digest: Digest::new(&digest),
            },
            formed_at_ns: 0,
        };
        let signed = Signed::sign(payload, &mut provs[0]);
        // Shadow is the last provider in these tests.
        let n = provs.len();
        OrderMsg::Endorsed(DoublySigned::endorse(signed, &mut provs[n - 1]))
    }

    fn ack(provs: &mut [SimProvider], i: usize, order: &OrderMsg) -> Signed<AckPayload> {
        Signed::sign(
            AckPayload {
                order: order.clone(),
            },
            &mut provs[i],
        )
    }

    #[test]
    fn store_order_dedupes() {
        let mut provs = providers(4);
        let mut log = OrderLog::default();
        let om = order(&mut provs, 1, vec![1]);
        assert!(log.store_order(om.clone()));
        assert!(!log.store_order(om));
    }

    #[test]
    fn commit_requires_order_and_quorum() {
        let mut provs = providers(5);
        let mut log = OrderLog::default();
        let om = order(&mut provs, 1, vec![1]);
        // Acks alone (no stored order) never commit.
        log.store_ack(ack(&mut provs, 1, &om));
        log.store_ack(ack(&mut provs, 2, &om));
        assert!(log.try_commit(SeqNo(1), 3, |_| true).is_none());
        // Storing the order adds its two signatories as evidence.
        log.store_order(om.clone());
        // Evidence: acks {p1, p2} + signatories {p0, p4} = 4.
        assert_eq!(
            log.evidence(SeqNo(1), &om.payload().batch.digest, |_| true),
            4
        );
        let proof = log.try_commit(SeqNo(1), 4, |_| true).unwrap();
        assert_eq!(proof.acks.len(), 2);
        assert!(log.is_committed(SeqNo(1)));
        assert_eq!(log.max_committed(), Some(SeqNo(1)));
        // Second commit attempt is a no-op.
        assert!(log.try_commit(SeqNo(1), 1, |_| true).is_none());
    }

    #[test]
    fn evidence_respects_eligibility() {
        let mut provs = providers(5);
        let mut log = OrderLog::default();
        let om = order(&mut provs, 1, vec![1]);
        log.store_order(om.clone());
        log.store_ack(ack(&mut provs, 1, &om));
        let d = &om.payload().batch.digest.clone();
        assert_eq!(log.evidence(SeqNo(1), d, |_| true), 3);
        // Exclude the order signatories (p0 and p4): only p1's ack counts.
        assert_eq!(
            log.evidence(SeqNo(1), d, |p| p != ProcessId(0) && p != ProcessId(4)),
            1
        );
    }

    #[test]
    fn evidence_distinguishes_digests() {
        let mut provs = providers(5);
        let mut log = OrderLog::default();
        let om_a = order(&mut provs, 1, vec![0xa]);
        let om_b = order(&mut provs, 1, vec![0xb]);
        log.store_order(om_a.clone());
        log.store_ack(ack(&mut provs, 1, &om_b));
        // The conflicting ack does not support digest a.
        assert_eq!(log.evidence(SeqNo(1), &Digest::new(&[0xa]), |_| true), 2);
        assert_eq!(log.evidence(SeqNo(1), &Digest::new(&[0xb]), |_| true), 1);
    }

    #[test]
    fn acked_uncommitted_listing() {
        let mut provs = providers(4);
        let mut log = OrderLog::default();
        let om = order(&mut provs, 3, vec![3]);
        log.store_order(om.clone());
        log.record_mut(SeqNo(3)).acked = true;
        assert_eq!(log.acked_uncommitted().len(), 1);
        log.force_commit(om, CommitProof::default());
        assert!(log.acked_uncommitted().is_empty());
    }

    #[test]
    fn force_commit_and_state_transfer() {
        let mut provs = providers(4);
        let mut log = OrderLog::default();
        for o in [1u64, 2, 3] {
            let om = order(&mut provs, o, vec![o as u8]);
            log.force_commit(om, CommitProof::default());
        }
        assert_eq!(log.max_committed(), Some(SeqNo(3)));
        assert_eq!(log.committed_from(SeqNo(2)).len(), 2);
        let (om, _) = log.max_committed_entry().unwrap();
        assert_eq!(om.payload().o, SeqNo(3));
    }

    #[test]
    fn pending_lists_uncommitted_with_orders() {
        let mut provs = providers(4);
        let mut log = OrderLog::default();
        log.store_order(order(&mut provs, 2, vec![2]));
        assert_eq!(log.pending(), vec![SeqNo(2)]);
    }
}
