//! Wire messages of the SC/SCR order protocols.
//!
//! Message taxonomy (paper sections in parentheses):
//!
//! * [`OrderPayload`] — `order<c, o, D(m)>` (§4), batched (§4.3);
//! * [`AckPayload`] — the N1 ack, carrying the order it acknowledges;
//! * [`FailSignalPayload`] — the pre-supplied fail-signal (§3.2);
//! * [`BackLogPayload`] / [`StartPayload`] / [`StartSigPayload`] — the
//!   install part IN1–IN5 (§4.2);
//! * [`HeartbeatPayload`] — intra-pair timeliness checking (§3.1, §4.4);
//! * [`ViewChangePayload`] / [`UnwillingPayload`] — the SCR extension
//!   (§4.4).
//!
//! Every payload has a canonical encoding ([`Encode`]) so signatures are
//! reproducible, and the top-level [`ScMsg`] reports its encoded length as
//! its simulated wire size.

use sofb_proto::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use sofb_proto::ids::{ProcessId, Rank, SeqNo, ViewId};
use sofb_proto::request::{BatchRef, Digest, Request, RequestId};
use sofb_proto::signed::{DoublySigned, Signed};
use sofb_sim::engine::WireSize;

use crate::checkpoint::CheckpointPayload;

/// An order decision `order<c, o, D(m)>`, extended with the member request
/// ids (batching, §4.3) and the batch-formation timestamp (the latency
/// measurement origin, §5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderPayload {
    /// Coordinator candidate rank that issued the order.
    pub c: Rank,
    /// The assigned sequence number.
    pub o: SeqNo,
    /// The ordered batch (request ids + digest).
    pub batch: BatchRef,
    /// Virtual time at which the coordinator formed the batch
    /// (nanoseconds; measurement metadata, included under the signature).
    pub formed_at_ns: u64,
}

impl Encode for OrderPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'O');
        self.c.encode(enc);
        self.o.encode(enc);
        self.batch.encode(enc);
        enc.put_u64(self.formed_at_ns);
    }
}

impl Decode for OrderPayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'O')?;
        Ok(OrderPayload {
            c: Rank::decode(dec)?,
            o: SeqNo::decode(dec)?,
            batch: BatchRef::decode(dec)?,
            formed_at_ns: dec.get_u64()?,
        })
    }
}

/// An order as it travels: endorsed by a pair, or solo-signed by the
/// unpaired `(f+1)`-th candidate (SC only; trusted by SC2 exhaustion).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OrderMsg {
    /// Doubly-signed by the coordinator pair.
    Endorsed(DoublySigned<OrderPayload>),
    /// Singly-signed by the final unpaired candidate.
    Solo(Signed<OrderPayload>),
}

impl OrderMsg {
    /// The order content.
    pub fn payload(&self) -> &OrderPayload {
        match self {
            OrderMsg::Endorsed(d) => &d.payload,
            OrderMsg::Solo(s) => &s.payload,
        }
    }

    /// The processes whose signatures the message carries.
    pub fn signatories(&self) -> Vec<ProcessId> {
        match self {
            OrderMsg::Endorsed(d) => vec![d.first, d.second],
            OrderMsg::Solo(s) => vec![s.signer],
        }
    }
}

impl Encode for OrderMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            OrderMsg::Endorsed(d) => {
                enc.put_u8(0);
                d.encode(enc);
            }
            OrderMsg::Solo(s) => {
                enc.put_u8(1);
                s.encode(enc);
            }
        }
    }
}

impl Decode for OrderMsg {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(OrderMsg::Endorsed(DoublySigned::decode(dec)?)),
            1 => Ok(OrderMsg::Solo(Signed::decode(dec)?)),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

/// The N1 acknowledgement; per the paper it "also contains the received
/// order" so that an ack can stand in for the order at lagging processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AckPayload {
    /// The acknowledged order.
    pub order: OrderMsg,
}

impl AckPayload {
    /// The acknowledged sequence number.
    pub fn o(&self) -> SeqNo {
        self.order.payload().o
    }

    /// The acknowledged batch digest.
    pub fn digest(&self) -> &Digest {
        &self.order.payload().batch.digest
    }
}

impl Encode for AckPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'A');
        self.order.encode(enc);
    }
}

impl Decode for AckPayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'A')?;
        Ok(AckPayload {
            order: OrderMsg::decode(dec)?,
        })
    }
}

/// The fail-signal content each paired process is supplied with at
/// initialization, signed by its counterpart (§3.2). The detector
/// double-signs it on emission, so the doubly-signed fail-signal proves one
/// member of the pair judged the pair broken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailSignalPayload {
    /// The candidate rank of the pair that is fail-signalling.
    pub pair: Rank,
}

impl Encode for FailSignalPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'F');
        self.pair.encode(enc);
    }
}

impl Decode for FailSignalPayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'F')?;
        Ok(FailSignalPayload {
            pair: Rank::decode(dec)?,
        })
    }
}

/// A doubly-signed fail-signal.
pub type FailSignalMsg = DoublySigned<FailSignalPayload>;

/// Commitment proof: the `n−f` distinct acks/orders retained at N3.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CommitProof {
    /// The retained acks (order signatories may substitute for acks).
    pub acks: Vec<Signed<AckPayload>>,
}

impl Encode for CommitProof {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_seq(&self.acks);
    }
}

impl Decode for CommitProof {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(CommitProof {
            acks: dec.get_seq()?,
        })
    }
}

/// The IN1 BackLog: the triggering fail-signal, the sender's maximum
/// committed order with proof, and its acked-but-uncommitted orders.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackLogPayload {
    /// The rank being installed (after IN1's increment).
    pub new_c: Rank,
    /// The fail-signal that triggered the installation.
    pub fail_signal: FailSignalMsg,
    /// The committed order with the largest sequence number, with proof.
    pub max_committed: Option<(OrderMsg, CommitProof)>,
    /// Acked but uncommitted orders.
    pub uncommitted: Vec<OrderMsg>,
    /// Experiment knob: padding to sweep BackLog size (Figure 6).
    pub pad: Vec<u8>,
}

impl Encode for BackLogPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'B');
        self.new_c.encode(enc);
        self.fail_signal.encode(enc);
        match &self.max_committed {
            None => enc.put_u8(0),
            Some((order, proof)) => {
                enc.put_u8(1);
                order.encode(enc);
                proof.encode(enc);
            }
        }
        enc.put_seq(&self.uncommitted);
        enc.put_bytes(&self.pad);
    }
}

impl Decode for BackLogPayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'B')?;
        let new_c = Rank::decode(dec)?;
        let fail_signal = FailSignalMsg::decode(dec)?;
        let max_committed = match dec.get_u8()? {
            0 => None,
            1 => Some((OrderMsg::decode(dec)?, CommitProof::decode(dec)?)),
            d => return Err(CodecError::BadDiscriminant(d)),
        };
        let uncommitted = dec.get_seq()?;
        let pad = dec.get_bytes()?;
        Ok(BackLogPayload {
            new_c,
            fail_signal,
            max_committed,
            uncommitted,
            pad,
        })
    }
}

/// The IN2 Start message content: the new coordinator's `NewBackLog` and
/// the sequence number `start_o` the Start itself is committed under.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StartPayload {
    /// The installing rank.
    pub c: Rank,
    /// Sequence number of the Start message itself.
    pub start_o: SeqNo,
    /// Orders carried over (max-committed order first if any, then
    /// uncommitted orders above it).
    pub new_backlog: Vec<OrderMsg>,
}

impl Encode for StartPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'S');
        self.c.encode(enc);
        self.start_o.encode(enc);
        enc.put_seq(&self.new_backlog);
    }
}

impl Decode for StartPayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'S')?;
        Ok(StartPayload {
            c: Rank::decode(dec)?,
            start_o: SeqNo::decode(dec)?,
            new_backlog: dec.get_seq()?,
        })
    }
}

/// A Start as it travels (endorsed by the new pair, or solo from the
/// unpaired final candidate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StartMsg {
    /// Doubly-signed by the installing pair.
    Endorsed(DoublySigned<StartPayload>),
    /// Singly-signed by the unpaired final candidate.
    Solo(Signed<StartPayload>),
}

impl StartMsg {
    /// The start content.
    pub fn payload(&self) -> &StartPayload {
        match self {
            StartMsg::Endorsed(d) => &d.payload,
            StartMsg::Solo(s) => &s.payload,
        }
    }
}

impl Encode for StartMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            StartMsg::Endorsed(d) => {
                enc.put_u8(0);
                d.encode(enc);
            }
            StartMsg::Solo(s) => {
                enc.put_u8(1);
                s.encode(enc);
            }
        }
    }
}

impl Decode for StartMsg {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(StartMsg::Endorsed(DoublySigned::decode(dec)?)),
            1 => Ok(StartMsg::Solo(Signed::decode(dec)?)),
            d => Err(CodecError::BadDiscriminant(d)),
        }
    }
}

/// The IN3 identifier-signature tuple: a process's signature over the
/// Start it accepted, addressed to the installing pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StartSigPayload {
    /// The installing rank.
    pub c: Rank,
    /// Digest of the Start's canonical encoding.
    pub start_digest: Digest,
}

impl Encode for StartSigPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'T');
        self.c.encode(enc);
        self.start_digest.encode(enc);
    }
}

impl Decode for StartSigPayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'T')?;
        Ok(StartSigPayload {
            c: Rank::decode(dec)?,
            start_digest: Digest::decode(dec)?,
        })
    }
}

/// Intra-pair heartbeat for timeliness checking (and SCR recovery).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeartbeatPayload {
    /// The pair's candidate rank.
    pub pair: Rank,
    /// Monotone heartbeat counter.
    pub seq: u64,
}

impl Encode for HeartbeatPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'H');
        self.pair.encode(enc);
        enc.put_u64(self.seq);
    }
}

impl Decode for HeartbeatPayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'H')?;
        Ok(HeartbeatPayload {
            pair: Rank::decode(dec)?,
            seq: dec.get_u64()?,
        })
    }
}

/// SCR view-change vote: the proposed view plus the voter's backlog
/// (§4.4 reuses "the view-change part of BFT" with the SC backlog
/// contents standing in for BFT's P sets).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewChangePayload {
    /// The proposed view.
    pub v: ViewId,
    /// The voter's backlog (max committed + uncommitted orders).
    pub backlog: BackLogPayload,
}

impl Encode for ViewChangePayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'V');
        self.v.encode(enc);
        self.backlog.encode(enc);
    }
}

impl Decode for ViewChangePayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'V')?;
        Ok(ViewChangePayload {
            v: ViewId::decode(dec)?,
            backlog: BackLogPayload::decode(dec)?,
        })
    }
}

/// SCR `Unwilling(v)`: the candidate pair for view `v` declines (its pair
/// status is not `up`), attaching its fail-signal as evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnwillingPayload {
    /// The declined view.
    pub v: ViewId,
    /// The pair's fail-signal.
    pub fail_signal: FailSignalMsg,
}

impl Encode for UnwillingPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'U');
        self.v.encode(enc);
        self.fail_signal.encode(enc);
    }
}

impl Decode for UnwillingPayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'U')?;
        Ok(UnwillingPayload {
            v: ViewId::decode(dec)?,
            fail_signal: FailSignalMsg::decode(dec)?,
        })
    }
}

/// The complete SC/SCR message set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScMsg {
    /// A client request (clients multicast to all processes).
    Request(Request),
    /// Coordinator replica → its shadow: proposed order (1-signed).
    OrderProposal(Signed<OrderPayload>),
    /// Endorsed (or solo) order, multicast to all.
    Order(OrderMsg),
    /// N1 ack.
    Ack(Signed<AckPayload>),
    /// Doubly-signed fail-signal (also used as the echo).
    FailSignal(FailSignalMsg),
    /// IN1 backlog.
    BackLog(Signed<BackLogPayload>),
    /// IN2: new coordinator replica → its shadow, with the backlogs used.
    StartProposal {
        /// The 1-signed Start.
        start: Signed<StartPayload>,
        /// The `n−f` backlogs the Start was computed from.
        backlogs: Vec<Signed<BackLogPayload>>,
    },
    /// IN2 output: endorsed (or solo) Start, multicast to all.
    Start(StartMsg),
    /// IN3 identifier-signature tuple, sent to the installing pair.
    StartSig(Signed<StartSigPayload>),
    /// IN4: the installing pair's multicast of `f−1` collected tuples.
    StartCert {
        /// The installing rank.
        c: Rank,
        /// The collected tuples.
        tuples: Vec<Signed<StartSigPayload>>,
    },
    /// Intra-pair heartbeat.
    Heartbeat(Signed<HeartbeatPayload>),
    /// SCR view-change vote.
    ViewChange(Signed<ViewChangePayload>),
    /// SCR unwilling-candidate notice (also used as the echo).
    Unwilling(Signed<UnwillingPayload>),
    /// State transfer: ask for committed orders from `from` upward.
    FetchCommitted {
        /// First sequence number wanted.
        from: SeqNo,
    },
    /// State transfer reply: a committed order.
    CommittedOrder(OrderMsg),
    /// Checkpoint vote (log truncation; see [`crate::checkpoint`]).
    Checkpoint(Signed<CheckpointPayload>),
}

impl Encode for ScMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ScMsg::Request(r) => {
                enc.put_u8(0);
                r.encode(enc);
            }
            ScMsg::OrderProposal(s) => {
                enc.put_u8(1);
                s.encode(enc);
            }
            ScMsg::Order(o) => {
                enc.put_u8(2);
                o.encode(enc);
            }
            ScMsg::Ack(a) => {
                enc.put_u8(3);
                a.encode(enc);
            }
            ScMsg::FailSignal(f) => {
                enc.put_u8(4);
                f.encode(enc);
            }
            ScMsg::BackLog(b) => {
                enc.put_u8(5);
                b.encode(enc);
            }
            ScMsg::StartProposal { start, backlogs } => {
                enc.put_u8(6);
                start.encode(enc);
                enc.put_seq(backlogs);
            }
            ScMsg::Start(s) => {
                enc.put_u8(7);
                s.encode(enc);
            }
            ScMsg::StartSig(s) => {
                enc.put_u8(8);
                s.encode(enc);
            }
            ScMsg::StartCert { c, tuples } => {
                enc.put_u8(9);
                c.encode(enc);
                enc.put_seq(tuples);
            }
            ScMsg::Heartbeat(h) => {
                enc.put_u8(10);
                h.encode(enc);
            }
            ScMsg::ViewChange(v) => {
                enc.put_u8(11);
                v.encode(enc);
            }
            ScMsg::Unwilling(u) => {
                enc.put_u8(12);
                u.encode(enc);
            }
            ScMsg::FetchCommitted { from } => {
                enc.put_u8(13);
                from.encode(enc);
            }
            ScMsg::CommittedOrder(o) => {
                enc.put_u8(14);
                o.encode(enc);
            }
            ScMsg::Checkpoint(c) => {
                enc.put_u8(15);
                c.encode(enc);
            }
        }
    }
}

impl Decode for ScMsg {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(match dec.get_u8()? {
            0 => ScMsg::Request(Request::decode(dec)?),
            1 => ScMsg::OrderProposal(Signed::decode(dec)?),
            2 => ScMsg::Order(OrderMsg::decode(dec)?),
            3 => ScMsg::Ack(Signed::decode(dec)?),
            4 => ScMsg::FailSignal(FailSignalMsg::decode(dec)?),
            5 => ScMsg::BackLog(Signed::decode(dec)?),
            6 => ScMsg::StartProposal {
                start: Signed::decode(dec)?,
                backlogs: dec.get_seq()?,
            },
            7 => ScMsg::Start(StartMsg::decode(dec)?),
            8 => ScMsg::StartSig(Signed::decode(dec)?),
            9 => ScMsg::StartCert {
                c: Rank::decode(dec)?,
                tuples: dec.get_seq()?,
            },
            10 => ScMsg::Heartbeat(Signed::decode(dec)?),
            11 => ScMsg::ViewChange(Signed::decode(dec)?),
            12 => ScMsg::Unwilling(Signed::decode(dec)?),
            13 => ScMsg::FetchCommitted {
                from: SeqNo::decode(dec)?,
            },
            14 => ScMsg::CommittedOrder(OrderMsg::decode(dec)?),
            15 => ScMsg::Checkpoint(Signed::decode(dec)?),
            d => return Err(CodecError::BadDiscriminant(d)),
        })
    }
}

impl WireSize for ScMsg {
    fn wire_len(&self) -> usize {
        // Canonical encoding length plus a small transport header.
        self.encoded_len() + 28
    }
}

/// Convenience constructor for the batch reference used by orders.
pub fn make_batch_ref(requests: &[&Request], digest: Digest) -> BatchRef {
    BatchRef {
        requests: requests.iter().map(|r| r.id).collect(),
        digest,
    }
}

/// Looks up the member requests of a batch in a request store, if all are
/// present.
pub fn resolve_batch<'a>(
    batch: &BatchRef,
    store: &'a std::collections::HashMap<RequestId, Request>,
) -> Option<Vec<&'a Request>> {
    batch.requests.iter().map(|id| store.get(id)).collect()
}

fn expect_tag(dec: &mut Decoder<'_>, tag: u8) -> Result<(), CodecError> {
    let got = dec.get_u8()?;
    if got != tag {
        return Err(CodecError::BadDiscriminant(got));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_crypto::provider::Dealer;
    use sofb_crypto::scheme::SchemeId;
    use sofb_proto::ids::ClientId;

    fn sample_order_payload() -> OrderPayload {
        OrderPayload {
            c: Rank(1),
            o: SeqNo(5),
            batch: BatchRef {
                requests: vec![RequestId {
                    client: ClientId(1),
                    seq: 1,
                }]
                .into(),
                digest: Digest::new(&[1, 2, 3, 4]),
            },
            formed_at_ns: 123_456,
        }
    }

    #[test]
    fn order_payload_roundtrip() {
        let p = sample_order_payload();
        assert_eq!(OrderPayload::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn all_message_variants_roundtrip() {
        let mut provs = Dealer::sim(SchemeId::Md5Rsa1024, 4, 9);
        let op = sample_order_payload();
        let signed_order = Signed::sign(op.clone(), &mut provs[0]);
        let endorsed = DoublySigned::endorse(signed_order.clone(), &mut provs[1]);
        let order = OrderMsg::Endorsed(endorsed.clone());
        let fs_inner = Signed::sign(FailSignalPayload { pair: Rank(1) }, &mut provs[1]);
        let fs = DoublySigned::endorse(fs_inner, &mut provs[0]);
        let backlog = BackLogPayload {
            new_c: Rank(2),
            fail_signal: fs.clone(),
            max_committed: Some((order.clone(), CommitProof::default())),
            uncommitted: vec![order.clone()],
            pad: vec![0; 64],
        };
        let start = StartPayload {
            c: Rank(2),
            start_o: SeqNo(6),
            new_backlog: vec![order.clone()],
        };

        let msgs = vec![
            ScMsg::Request(Request::new(ClientId(1), 1, &b"x"[..])),
            ScMsg::OrderProposal(signed_order.clone()),
            ScMsg::Order(order.clone()),
            ScMsg::Ack(Signed::sign(
                AckPayload {
                    order: order.clone(),
                },
                &mut provs[2],
            )),
            ScMsg::FailSignal(fs.clone()),
            ScMsg::BackLog(Signed::sign(backlog.clone(), &mut provs[2])),
            ScMsg::StartProposal {
                start: Signed::sign(start.clone(), &mut provs[1]),
                backlogs: vec![Signed::sign(backlog.clone(), &mut provs[3])],
            },
            ScMsg::Start(StartMsg::Endorsed(DoublySigned::endorse(
                Signed::sign(start.clone(), &mut provs[1]),
                &mut provs[0],
            ))),
            ScMsg::StartSig(Signed::sign(
                StartSigPayload {
                    c: Rank(2),
                    start_digest: Digest::new(&[9]),
                },
                &mut provs[3],
            )),
            ScMsg::StartCert {
                c: Rank(2),
                tuples: vec![],
            },
            ScMsg::Heartbeat(Signed::sign(
                HeartbeatPayload {
                    pair: Rank(1),
                    seq: 3,
                },
                &mut provs[0],
            )),
            ScMsg::ViewChange(Signed::sign(
                ViewChangePayload {
                    v: ViewId(2),
                    backlog: backlog.clone(),
                },
                &mut provs[2],
            )),
            ScMsg::Unwilling(Signed::sign(
                UnwillingPayload {
                    v: ViewId(2),
                    fail_signal: fs,
                },
                &mut provs[1],
            )),
            ScMsg::FetchCommitted { from: SeqNo(3) },
            ScMsg::CommittedOrder(order),
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            assert_eq!(ScMsg::from_bytes(&bytes).unwrap(), m, "{m:?}");
            assert_eq!(m.wire_len(), bytes.len() + 28);
        }
    }

    #[test]
    fn ack_payload_accessors() {
        let mut provs = Dealer::sim(SchemeId::Md5Rsa1024, 2, 9);
        let signed = Signed::sign(sample_order_payload(), &mut provs[0]);
        let order = OrderMsg::Endorsed(DoublySigned::endorse(signed, &mut provs[1]));
        let ack = AckPayload { order };
        assert_eq!(ack.o(), SeqNo(5));
        assert_eq!(ack.digest().as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn order_msg_signatories() {
        let mut provs = Dealer::sim(SchemeId::Md5Rsa1024, 2, 9);
        let signed = Signed::sign(sample_order_payload(), &mut provs[0]);
        let solo = OrderMsg::Solo(signed.clone());
        assert_eq!(solo.signatories(), vec![ProcessId(0)]);
        let endorsed = OrderMsg::Endorsed(DoublySigned::endorse(signed, &mut provs[1]));
        assert_eq!(endorsed.signatories(), vec![ProcessId(0), ProcessId(1)]);
    }

    #[test]
    fn backlog_pad_inflates_size() {
        let mut provs = Dealer::sim(SchemeId::Md5Rsa1024, 2, 9);
        let fs_inner = Signed::sign(FailSignalPayload { pair: Rank(1) }, &mut provs[1]);
        let fs = DoublySigned::endorse(fs_inner, &mut provs[0]);
        let small = BackLogPayload {
            new_c: Rank(2),
            fail_signal: fs.clone(),
            max_committed: None,
            uncommitted: vec![],
            pad: vec![],
        };
        let big = BackLogPayload {
            pad: vec![0; 4096],
            ..small.clone()
        };
        assert_eq!(big.encoded_len(), small.encoded_len() + 4096);
    }

    #[test]
    fn corrupted_buffer_rejected() {
        let mut provs = Dealer::sim(SchemeId::Md5Rsa1024, 2, 9);
        let m = ScMsg::OrderProposal(Signed::sign(sample_order_payload(), &mut provs[0]));
        let mut bytes = m.to_bytes();
        bytes[0] = 200; // bogus discriminant
        assert!(ScMsg::from_bytes(&bytes).is_err());
    }
}
