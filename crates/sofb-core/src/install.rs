//! IN2's `NewBackLog` computation and the endorser's verification rule.
//!
//! From §4.2: the new coordinator "computes NewBackLog by first including
//! the order that has the largest sequence number (o) amongst all the
//! max_committed orders received in the (n−f) BackLogs ... then includes
//! every uncommitted order present in any of the (n−f) BackLogs with
//! sequence no. > max{max_committed}".
//!
//! When two authentic doubly-signed orders conflict at the same sequence
//! number (possible only because the old pair had a faulty member), the
//! "right" order — one that might have been committed by some correct
//! process — is the one appearing in at least `f+1` backlogs; if neither
//! reaches `f+1`, no correct process can have committed either, and the
//! coordinator picks deterministically (smallest digest).

use std::collections::BTreeMap;

use sofb_proto::ids::SeqNo;
use sofb_proto::request::Digest;

use crate::messages::{BackLogPayload, OrderMsg};

/// Computes `(NewBackLog, start_o)` from a quorum of BackLogs.
///
/// `f_plus_1` is the committed-order evidence threshold (effective `f+1`).
pub fn compute_new_backlog(
    backlogs: &[&BackLogPayload],
    f_plus_1: usize,
) -> (Vec<OrderMsg>, SeqNo) {
    // Highest committed order across the quorum.
    let max_committed: Option<&OrderMsg> = backlogs
        .iter()
        .filter_map(|b| b.max_committed.as_ref().map(|(o, _)| o))
        .max_by_key(|o| o.payload().o);
    let max_o = max_committed.map_or(SeqNo(0), |o| o.payload().o);

    // Candidate uncommitted orders above max_o, with per-(o, digest)
    // support counts (each backlog counts once per binding).
    let mut by_seq: BTreeMap<SeqNo, BTreeMap<Digest, (OrderMsg, usize)>> = BTreeMap::new();
    for b in backlogs {
        let mut seen_in_this: Vec<(SeqNo, Digest)> = Vec::new();
        for order in &b.uncommitted {
            let o = order.payload().o;
            if o <= max_o {
                continue;
            }
            let d = order.payload().batch.digest;
            if seen_in_this.contains(&(o, d)) {
                continue;
            }
            seen_in_this.push((o, d));
            let entry = by_seq.entry(o).or_default();
            let slot = entry.entry(d).or_insert_with(|| (order.clone(), 0));
            slot.1 += 1;
        }
    }

    let mut new_backlog: Vec<OrderMsg> = Vec::new();
    if let Some(mc) = max_committed {
        new_backlog.push(mc.clone());
    }
    let mut expected = max_o.next();
    for (o, candidates) in by_seq {
        if o != expected {
            // A gap means no correct process acked the gap sequence
            // (acks are in-sequence), so nothing beyond it can have been
            // acked by a correct process either; stop.
            break;
        }
        let chosen = choose(&candidates, f_plus_1);
        new_backlog.push(chosen);
        expected = o.next();
    }
    let last = new_backlog
        .last()
        .map_or(SeqNo(0), |o| o.payload().o)
        .0
        .max(max_o.0);
    (new_backlog, SeqNo(last + 1))
}

/// Picks the right order among conflicting candidates for one sequence
/// number.
fn choose(candidates: &BTreeMap<Digest, (OrderMsg, usize)>, f_plus_1: usize) -> OrderMsg {
    // Any digest with f+1 support may have been committed somewhere.
    for (_, (order, count)) in candidates.iter() {
        if *count >= f_plus_1 {
            return order.clone();
        }
    }
    // No digest can have been committed: deterministic pick (the
    // BTreeMap's smallest digest).
    candidates
        .values()
        .next()
        .expect("choose called with at least one candidate")
        .0
        .clone()
}

/// The endorser's check of a proposed NewBackLog (§4.2's conflicting-order
/// verification): for every chosen order, if some digest at the same
/// sequence number has `f+1`-backlog support in the endorser's own view,
/// the chosen digest must be one of those supported.
pub fn verify_choice(
    chosen: &[OrderMsg],
    own_backlogs: &[&BackLogPayload],
    f_plus_1: usize,
) -> bool {
    for order in chosen {
        let o = order.payload().o;
        let d = &order.payload().batch.digest;
        // Count support per digest at this sequence number.
        let mut counts: BTreeMap<&Digest, usize> = BTreeMap::new();
        for b in own_backlogs {
            let mut seen: Vec<&Digest> = Vec::new();
            for u in b
                .uncommitted
                .iter()
                .chain(b.max_committed.iter().map(|(om, _)| om))
            {
                if u.payload().o == o {
                    let ud = &u.payload().batch.digest;
                    if !seen.contains(&ud) {
                        seen.push(ud);
                        *counts.entry(ud).or_insert(0) += 1;
                    }
                }
            }
        }
        let committed_possible: Vec<&&Digest> = counts
            .iter()
            .filter(|(_, n)| **n >= f_plus_1)
            .map(|(d, _)| d)
            .collect();
        if !committed_possible.is_empty() && !committed_possible.iter().any(|cd| **cd == d) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_crypto::provider::{Dealer, SimProvider};
    use sofb_crypto::scheme::SchemeId;
    use sofb_proto::ids::{ClientId, Rank};
    use sofb_proto::request::{BatchRef, RequestId};
    use sofb_proto::signed::{DoublySigned, Signed};

    use crate::messages::{CommitProof, FailSignalPayload, OrderPayload};

    fn providers() -> Vec<SimProvider> {
        Dealer::sim(SchemeId::Md5Rsa1024, 8, 3)
    }

    fn order(provs: &mut [SimProvider], o: u64, digest: u8) -> OrderMsg {
        let payload = OrderPayload {
            c: Rank(1),
            o: SeqNo(o),
            batch: BatchRef {
                requests: vec![RequestId {
                    client: ClientId(1),
                    seq: o,
                }]
                .into(),
                digest: Digest::new(&[digest]),
            },
            formed_at_ns: 0,
        };
        let s = Signed::sign(payload, &mut provs[0]);
        OrderMsg::Endorsed(DoublySigned::endorse(s, &mut provs[5]))
    }

    fn fs(provs: &mut [SimProvider]) -> crate::messages::FailSignalMsg {
        let inner = Signed::sign(FailSignalPayload { pair: Rank(1) }, &mut provs[5]);
        DoublySigned::endorse(inner, &mut provs[0])
    }

    fn backlog(
        provs: &mut [SimProvider],
        max_committed: Option<OrderMsg>,
        uncommitted: Vec<OrderMsg>,
    ) -> BackLogPayload {
        BackLogPayload {
            new_c: Rank(2),
            fail_signal: fs(provs),
            max_committed: max_committed.map(|o| (o, CommitProof::default())),
            uncommitted,
            pad: Vec::new(),
        }
    }

    #[test]
    fn empty_backlogs_yield_start_at_one() {
        let mut provs = providers();
        let b1 = backlog(&mut provs, None, vec![]);
        let b2 = backlog(&mut provs, None, vec![]);
        let (nb, start_o) = compute_new_backlog(&[&b1, &b2], 3);
        assert!(nb.is_empty());
        assert_eq!(start_o, SeqNo(1));
    }

    #[test]
    fn carries_max_committed_and_uncommitted() {
        let mut provs = providers();
        let committed = order(&mut provs, 3, 3);
        let u4 = order(&mut provs, 4, 4);
        let u5 = order(&mut provs, 5, 5);
        let b1 = backlog(&mut provs, Some(committed.clone()), vec![u4.clone()]);
        let b2 = backlog(&mut provs, None, vec![u4.clone(), u5.clone()]);
        let (nb, start_o) = compute_new_backlog(&[&b1, &b2], 3);
        let seqs: Vec<u64> = nb.iter().map(|o| o.payload().o.0).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        assert_eq!(start_o, SeqNo(6));
    }

    #[test]
    fn ignores_uncommitted_below_max_committed() {
        let mut provs = providers();
        let committed = order(&mut provs, 5, 5);
        let stale = order(&mut provs, 4, 4);
        let b1 = backlog(&mut provs, Some(committed), vec![stale]);
        let (nb, start_o) = compute_new_backlog(&[&b1], 2);
        assert_eq!(nb.len(), 1);
        assert_eq!(nb[0].payload().o, SeqNo(5));
        assert_eq!(start_o, SeqNo(6));
    }

    #[test]
    fn conflicting_orders_resolved_by_f_plus_1_support() {
        let mut provs = providers();
        let good = order(&mut provs, 1, 0xaa);
        let bad = order(&mut provs, 1, 0xbb);
        // `good` appears in 3 backlogs (f+1 = 3), `bad` in 1.
        let b1 = backlog(&mut provs, None, vec![good.clone()]);
        let b2 = backlog(&mut provs, None, vec![good.clone()]);
        let b3 = backlog(&mut provs, None, vec![good.clone()]);
        let b4 = backlog(&mut provs, None, vec![bad.clone()]);
        let (nb, _) = compute_new_backlog(&[&b1, &b2, &b3, &b4], 3);
        assert_eq!(nb.len(), 1);
        assert_eq!(nb[0].payload().batch.digest, Digest::new(&[0xaa]));
    }

    #[test]
    fn conflict_without_quorum_resolved_deterministically() {
        let mut provs = providers();
        let a = order(&mut provs, 1, 0x0a);
        let b = order(&mut provs, 1, 0x0b);
        let b1 = backlog(&mut provs, None, vec![a.clone()]);
        let b2 = backlog(&mut provs, None, vec![b.clone()]);
        let (nb1, _) = compute_new_backlog(&[&b1, &b2], 3);
        let (nb2, _) = compute_new_backlog(&[&b2, &b1], 3);
        // Deterministic regardless of backlog order: smallest digest.
        assert_eq!(nb1[0].payload().batch.digest, Digest::new(&[0x0a]));
        assert_eq!(nb2[0].payload().batch.digest, Digest::new(&[0x0a]));
    }

    #[test]
    fn gap_truncates_carryover() {
        let mut provs = providers();
        let u2 = order(&mut provs, 2, 2);
        // Sequence 1 is missing entirely: nothing can be carried.
        let b1 = backlog(&mut provs, None, vec![u2]);
        let (nb, start_o) = compute_new_backlog(&[&b1], 2);
        assert!(nb.is_empty());
        assert_eq!(start_o, SeqNo(1));
    }

    #[test]
    fn verify_choice_accepts_honest_and_rejects_dishonest() {
        let mut provs = providers();
        let good = order(&mut provs, 1, 0xaa);
        let bad = order(&mut provs, 1, 0xbb);
        let b1 = backlog(&mut provs, None, vec![good.clone()]);
        let b2 = backlog(&mut provs, None, vec![good.clone()]);
        let b3 = backlog(&mut provs, None, vec![good.clone()]);
        let b4 = backlog(&mut provs, None, vec![bad.clone()]);
        let own: Vec<&BackLogPayload> = vec![&b1, &b2, &b3, &b4];
        assert!(verify_choice(std::slice::from_ref(&good), &own, 3));
        // Choosing `bad` when `good` has f+1 support must be rejected.
        assert!(!verify_choice(std::slice::from_ref(&bad), &own, 3));
        // With no quorum on either, any choice passes.
        let own_small: Vec<&BackLogPayload> = vec![&b1, &b4];
        assert!(verify_choice(&[bad], &own_small, 3));
    }

    #[test]
    fn verify_choice_counts_max_committed_as_support() {
        let mut provs = providers();
        let good = order(&mut provs, 1, 0xaa);
        let b1 = backlog(&mut provs, Some(good.clone()), vec![]);
        let b2 = backlog(&mut provs, Some(good.clone()), vec![]);
        let own: Vec<&BackLogPayload> = vec![&b1, &b2];
        assert!(verify_choice(&[good], &own, 2));
    }
}
