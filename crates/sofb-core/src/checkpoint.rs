//! Checkpointing and order-log truncation.
//!
//! The paper's protocols, like PBFT, cannot keep the whole order log
//! forever: acks and commitment proofs grow without bound. This module
//! adds the standard remedy (PBFT §4.3-style): every `interval` committed
//! sequence numbers a process multicasts a signed checkpoint binding the
//! *contiguous committed prefix* to a running digest; once `n−f` distinct
//! processes vouch for the same `(o, digest)`, the checkpoint is stable
//! and everything below it can be discarded.
//!
//! The running digest chains per-batch digests in sequence order, so two
//! processes agree on a checkpoint digest iff they committed identical
//! prefixes — a cheap cross-replica consistency audit as well as a GC
//! trigger.

use std::collections::BTreeMap;

use sofb_crypto::provider::CryptoProvider;
use sofb_proto::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use sofb_proto::ids::{ProcessId, SeqNo};
use sofb_proto::request::Digest;

/// A checkpoint vote: "I committed every sequence number up to `o`, and
/// the chained digest of that prefix is `digest`".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointPayload {
    /// Last sequence number of the checkpointed prefix.
    pub o: SeqNo,
    /// Chained digest over the prefix's batch digests.
    pub digest: Digest,
}

impl Encode for CheckpointPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'K');
        self.o.encode(enc);
        self.digest.encode(enc);
    }
}

impl Decode for CheckpointPayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let t = dec.get_u8()?;
        if t != b'K' {
            return Err(CodecError::BadDiscriminant(t));
        }
        Ok(CheckpointPayload {
            o: SeqNo::decode(dec)?,
            digest: Digest::decode(dec)?,
        })
    }
}

/// Per-process checkpoint state: the running prefix digest, collected
/// votes, and the latest stable checkpoint.
#[derive(Debug, Default)]
pub struct CheckpointTracker {
    /// Checkpoint every this many sequence numbers (0 = disabled).
    interval: u64,
    /// The contiguous prefix covered by `running` (chained so far).
    chained_up_to: SeqNo,
    /// Running chained digest.
    running: Digest,
    /// Collected votes per sequence number.
    votes: BTreeMap<SeqNo, BTreeMap<ProcessId, Digest>>,
    /// Latest stable checkpoint.
    stable: Option<(SeqNo, Digest)>,
    /// Last checkpoint this process announced.
    announced: SeqNo,
}

impl CheckpointTracker {
    /// Creates a tracker checkpointing every `interval` sequence numbers.
    pub fn new(interval: u64) -> Self {
        CheckpointTracker {
            interval,
            chained_up_to: SeqNo(0),
            running: Digest::empty(),
            votes: BTreeMap::new(),
            stable: None,
            announced: SeqNo(0),
        }
    }

    /// True if checkpointing is enabled.
    pub fn enabled(&self) -> bool {
        self.interval > 0
    }

    /// The latest stable checkpoint, if any.
    pub fn stable(&self) -> Option<(SeqNo, &Digest)> {
        self.stable.as_ref().map(|(o, d)| (*o, d))
    }

    /// The prefix covered by the running digest.
    pub fn chained_up_to(&self) -> SeqNo {
        self.chained_up_to
    }

    /// Chains the next in-sequence commit into the running digest.
    /// Returns a payload to announce when a checkpoint boundary is hit.
    ///
    /// `o` must be exactly `chained_up_to + 1`; out-of-order calls are the
    /// caller's bug.
    ///
    /// # Panics
    ///
    /// Panics if `o` is not the next sequence number.
    pub fn chain_commit(
        &mut self,
        o: SeqNo,
        batch_digest: &Digest,
        provider: &mut dyn CryptoProvider,
    ) -> Option<CheckpointPayload> {
        assert_eq!(o, self.chained_up_to.next(), "commits must chain in order");
        let mut enc = Encoder::new();
        self.running.encode(&mut enc);
        o.encode(&mut enc);
        batch_digest.encode(&mut enc);
        self.running = Digest::new(&provider.digest(&enc.into_bytes()));
        self.chained_up_to = o;
        if self.enabled() && o.0.is_multiple_of(self.interval) && o > self.announced {
            self.announced = o;
            return Some(CheckpointPayload {
                o,
                digest: self.running,
            });
        }
        None
    }

    /// Records a (verified) checkpoint vote. Returns the newly stabilized
    /// sequence number when `quorum` distinct processes agree on
    /// `(o, digest)`.
    pub fn record_vote(
        &mut self,
        voter: ProcessId,
        payload: &CheckpointPayload,
        quorum: usize,
    ) -> Option<SeqNo> {
        if self.stable.as_ref().is_some_and(|(s, _)| payload.o <= *s) {
            return None;
        }
        let entry = self.votes.entry(payload.o).or_default();
        entry.insert(voter, payload.digest);
        let agreeing = entry.values().filter(|d| **d == payload.digest).count();
        if agreeing >= quorum {
            self.stable = Some((payload.o, payload.digest));
            // Older vote sets are moot.
            self.votes = self.votes.split_off(&payload.o.next());
            return Some(payload.o);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_crypto::provider::{Dealer, SimProvider};
    use sofb_crypto::scheme::SchemeId;

    fn provider() -> SimProvider {
        Dealer::sim(SchemeId::Md5Rsa1024, 1, 1).remove(0)
    }

    fn d(b: u8) -> Digest {
        Digest::new(&[b])
    }

    #[test]
    fn chaining_is_order_sensitive() {
        let mut p = provider();
        let mut a = CheckpointTracker::new(2);
        let mut b = CheckpointTracker::new(2);
        a.chain_commit(SeqNo(1), &d(1), &mut p);
        let ca = a.chain_commit(SeqNo(2), &d(2), &mut p).expect("boundary");
        b.chain_commit(SeqNo(1), &d(2), &mut p);
        let cb = b.chain_commit(SeqNo(2), &d(1), &mut p).expect("boundary");
        assert_ne!(
            ca.digest, cb.digest,
            "different prefixes, different digests"
        );
    }

    #[test]
    fn identical_prefixes_agree() {
        let mut p = provider();
        let mut a = CheckpointTracker::new(3);
        let mut b = CheckpointTracker::new(3);
        for o in 1..=3u64 {
            let da = a.chain_commit(SeqNo(o), &d(o as u8), &mut p);
            let db = b.chain_commit(SeqNo(o), &d(o as u8), &mut p);
            assert_eq!(da, db);
        }
    }

    #[test]
    fn boundary_announcements_only() {
        let mut p = provider();
        let mut t = CheckpointTracker::new(2);
        assert!(t.chain_commit(SeqNo(1), &d(1), &mut p).is_none());
        assert!(t.chain_commit(SeqNo(2), &d(2), &mut p).is_some());
        assert!(t.chain_commit(SeqNo(3), &d(3), &mut p).is_none());
        assert!(t.chain_commit(SeqNo(4), &d(4), &mut p).is_some());
    }

    #[test]
    fn disabled_tracker_never_announces() {
        let mut p = provider();
        let mut t = CheckpointTracker::new(0);
        for o in 1..=8u64 {
            assert!(t.chain_commit(SeqNo(o), &d(o as u8), &mut p).is_none());
        }
        assert!(!t.enabled());
    }

    #[test]
    #[should_panic(expected = "must chain in order")]
    fn out_of_order_chaining_panics() {
        let mut p = provider();
        let mut t = CheckpointTracker::new(2);
        t.chain_commit(SeqNo(2), &d(2), &mut p);
    }

    #[test]
    fn votes_stabilize_at_quorum() {
        let mut t = CheckpointTracker::new(2);
        let payload = CheckpointPayload {
            o: SeqNo(4),
            digest: d(9),
        };
        assert!(t.record_vote(ProcessId(0), &payload, 3).is_none());
        assert!(t.record_vote(ProcessId(1), &payload, 3).is_none());
        // Duplicate voter does not advance the count.
        assert!(t.record_vote(ProcessId(1), &payload, 3).is_none());
        assert_eq!(t.record_vote(ProcessId(2), &payload, 3), Some(SeqNo(4)));
        assert_eq!(t.stable().map(|(o, _)| o), Some(SeqNo(4)));
        // Older/equal checkpoints are ignored once stable.
        assert!(t.record_vote(ProcessId(3), &payload, 1).is_none());
    }

    #[test]
    fn divergent_votes_do_not_stabilize() {
        let mut t = CheckpointTracker::new(2);
        let good = CheckpointPayload {
            o: SeqNo(2),
            digest: d(1),
        };
        let bad = CheckpointPayload {
            o: SeqNo(2),
            digest: d(2),
        };
        assert!(t.record_vote(ProcessId(0), &good, 2).is_none());
        assert!(t.record_vote(ProcessId(1), &bad, 2).is_none());
        // A third vote agreeing with `good` stabilizes it.
        assert_eq!(t.record_vote(ProcessId(2), &good, 2), Some(SeqNo(2)));
    }

    #[test]
    fn payload_codec_roundtrip() {
        let p = CheckpointPayload {
            o: SeqNo(64),
            digest: d(7),
        };
        assert_eq!(CheckpointPayload::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn signed_checkpoint_verifies() {
        use sofb_proto::signed::Signed;
        let mut provs = Dealer::sim(SchemeId::Md5Rsa1024, 2, 5);
        let p = CheckpointPayload {
            o: SeqNo(8),
            digest: d(3),
        };
        let s = Signed::sign(p, &mut provs[0]);
        assert!(s.verify(&mut provs[1]));
    }
}
