//! Observations the protocol emits for harnesses and tests.
//!
//! The event vocabulary now lives in the protocol-agnostic harness layer
//! ([`sofb_harness::event::ProtocolEvent`]) so that SC/SCR, BFT and CT
//! all emit the same observations and one analysis module measures every
//! variant. This module re-exports it under its historical name.

pub use sofb_harness::event::ProtocolEvent;

/// The SC/SCR protocol's observation type (alias of the uniform
/// harness-level event; BFT and CT emit the same type).
pub type ScEvent = ProtocolEvent;
