//! Per-process protocol configuration and fault injection plans.

use sofb_crypto::scheme::SchemeId;
use sofb_proto::ids::{ProcessId, SeqNo};
use sofb_proto::topology::Topology;
use sofb_sim::time::SimDuration;

/// A scripted misbehaviour for experiments and tests.
///
/// Faults model the paper's §5 fault-injection study ("a single
/// value-domain fault was injected") plus the additional behaviours the
/// property tests explore.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Fault {
    /// Behave correctly.
    #[default]
    None,
    /// As coordinator replica, propose a corrupted batch digest for the
    /// given sequence number (value-domain fault; the shadow detects it
    /// on endorsement checking).
    CorruptOrderAt(SeqNo),
    /// As coordinator replica, silently stop proposing orders once the
    /// given sequence number is reached (time-domain fault; the shadow's
    /// delay estimate expires).
    MuteCoordinatorAt(SeqNo),
    /// As shadow, endorse without checking (a Byzantine shadow colluding
    /// with nobody — used to show a single faulty endorser cannot violate
    /// safety because the replica's first signature still binds content).
    RubberStamp,
    /// Drop every ack this process would send (liveness pressure; safety
    /// must hold regardless).
    DropAcks,
}

/// Static configuration of one SC/SCR order process.
#[derive(Clone, Debug)]
pub struct ScConfig {
    /// Deployment layout.
    pub topology: Topology,
    /// This process.
    pub me: ProcessId,
    /// Digest/signature scheme in force.
    pub scheme: SchemeId,
    /// Batching interval (§4.3; swept 40–500 ms in §5).
    pub batching_interval: SimDuration,
    /// Maximum batch payload bytes (fixed at 1 KB in §5).
    pub batch_max_bytes: usize,
    /// The shadow's delay estimate for coordinator proposals: how long
    /// unordered requests may sit before the shadow declares a
    /// time-domain failure.
    pub order_timeout: SimDuration,
    /// Intra-pair heartbeat period.
    pub heartbeat_period: SimDuration,
    /// Consecutive missed heartbeats before a time-domain suspicion.
    pub heartbeat_misses: u32,
    /// Consecutive fresh heartbeats before an SCR pair recovers to `up`.
    pub recovery_beats: u32,
    /// Checkpoint (and truncate the order log) every this many committed
    /// sequence numbers; 0 disables checkpointing.
    pub checkpoint_interval: u64,
    /// Padding added to BackLog messages (Figure 6's size sweep).
    pub backlog_pad: usize,
    /// Enable time-domain failure detection (heartbeat windows, proposal
    /// timeliness). The paper's best-case experiments (§5) are defined as
    /// "no failures and also no suspicions of failures"; under assumption
    /// 3(a)(i) estimates are accurate so non-faulty processes are never
    /// suspected — the latency/throughput harness models that by turning
    /// detection off, while the fail-over harness turns it on.
    pub time_checks: bool,
    /// Scripted misbehaviour.
    pub fault: Fault,
}

impl ScConfig {
    /// A configuration with the paper's defaults for the given process.
    pub fn new(topology: Topology, me: ProcessId, scheme: SchemeId) -> Self {
        ScConfig {
            topology,
            me,
            scheme,
            batching_interval: SimDuration::from_ms(100),
            batch_max_bytes: 1024,
            order_timeout: SimDuration::from_ms(500),
            heartbeat_period: SimDuration::from_ms(20),
            heartbeat_misses: 3,
            recovery_beats: 3,
            checkpoint_interval: 64,
            backlog_pad: 0,
            time_checks: true,
            fault: Fault::None,
        }
    }

    /// Enables or disables time-domain failure detection.
    pub fn with_time_checks(mut self, on: bool) -> Self {
        self.time_checks = on;
        self
    }

    /// Sets the batching interval.
    pub fn with_batching_interval(mut self, d: SimDuration) -> Self {
        self.batching_interval = d;
        self
    }

    /// Sets the fault plan.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the BackLog padding.
    pub fn with_backlog_pad(mut self, pad: usize) -> Self {
        self.backlog_pad = pad;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_proto::topology::Variant;

    #[test]
    fn builder_chain() {
        let t = Topology::new(2, Variant::Sc);
        let cfg = ScConfig::new(t, ProcessId(0), SchemeId::Md5Rsa1024)
            .with_batching_interval(SimDuration::from_ms(40))
            .with_fault(Fault::CorruptOrderAt(SeqNo(3)))
            .with_backlog_pad(2048);
        assert_eq!(cfg.batching_interval, SimDuration::from_ms(40));
        assert_eq!(cfg.fault, Fault::CorruptOrderAt(SeqNo(3)));
        assert_eq!(cfg.backlog_pad, 2048);
        assert_eq!(cfg.batch_max_bytes, 1024);
    }
}
