//! End-to-end protocol tests on the simulator: fail-free ordering,
//! value-domain fail-over, time-domain fail-over, candidate exhaustion to
//! the unpaired coordinator, and the SCR extension.

use sofb_core::analysis;
use sofb_core::config::Fault;
use sofb_core::events::ScEvent;
use sofb_core::sim::{ClientSpec, ScWorldBuilder};
use sofb_crypto::scheme::SchemeId;
use sofb_proto::ids::{ProcessId, Rank, SeqNo};
use sofb_proto::topology::{Topology, Variant};
use sofb_sim::time::{SimDuration, SimTime};

fn client(rate: f64, stop_s: u64) -> ClientSpec {
    ClientSpec {
        rate_per_sec: rate,
        request_size: 100,
        stop_at: SimTime::from_secs(stop_s),
    }
}

#[test]
fn failfree_ordering_commits_everywhere() {
    let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .client(client(100.0, 2))
        .seed(7)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(4));
    let events = d.world.drain_events();

    analysis::check_total_order(&events).unwrap();
    // No failures => no fail-signals, no installs beyond rank 1.
    assert!(!events
        .iter()
        .any(|e| matches!(e.event, ScEvent::FailSignalIssued { .. })));
    // Every process commits a healthy prefix.
    let n = d.topology.n();
    let nodes: Vec<usize> = (0..n).collect();
    let prefix = analysis::common_committed_prefix(&events, &nodes).expect("all nodes commit");
    assert!(prefix >= SeqNo(10), "common prefix too short: {prefix:?}");
    // ~100 req/s for 2 s must be fully ordered.
    let latencies = analysis::order_latencies(&events);
    assert!(!latencies.is_empty());
    for (o, ms) in &latencies {
        assert!(*ms < 200.0, "latency at {o:?} is {ms} ms");
    }
}

#[test]
fn failfree_no_duplicate_request_ordering() {
    let mut d = ScWorldBuilder::new(1, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(40))
        .client(client(200.0, 1))
        .seed(11)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(3));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();

    // The per-sequence batches committed at node 3 (an unpaired replica)
    // must not repeat requests: count total committed requests vs client
    // issuance.
    let committed_reqs: usize = events
        .iter()
        .filter(|e| e.node == 3)
        .filter_map(|e| match &e.event {
            ScEvent::Committed { requests, .. } => Some(*requests),
            _ => None,
        })
        .sum();
    // 200 req/s for 1 s: allow the tail batch to be in flight.
    assert!((190..=200).contains(&committed_reqs), "{committed_reqs}");
}

#[test]
fn value_domain_fault_triggers_failover_and_preserves_safety() {
    // The rank-1 coordinator replica corrupts the digest of its 5th order;
    // its shadow must detect, fail-signal, and rank 2 must take over.
    let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .client(client(100.0, 3))
        .fault(ProcessId(0), Fault::CorruptOrderAt(SeqNo(5)))
        .seed(13)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(6));
    let events = d.world.drain_events();

    analysis::check_total_order(&events).unwrap();
    let fs: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.event, ScEvent::FailSignalIssued { pair: Rank(1), .. }))
        .collect();
    assert!(
        !fs.is_empty(),
        "shadow must fail-signal the corrupted order"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, ScEvent::StartCertIssued { c: Rank(2), .. })),
        "rank 2 must issue its Start certificate"
    );
    let installed: Vec<usize> = events
        .iter()
        .filter(|e| matches!(e.event, ScEvent::Installed { c: Rank(2) }))
        .map(|e| e.node)
        .collect();
    assert!(
        installed.len() >= d.topology.commit_quorum() - 1,
        "most processes install rank 2: {installed:?}"
    );
    // Ordering continues under the new coordinator.
    let post_install_commits = events
        .iter()
        .any(|e| matches!(&e.event, ScEvent::Committed { c: Rank(2), .. }));
    assert!(post_install_commits, "rank 2 must order new batches");
    // Fail-over latency is measurable.
    let ms = analysis::failover_latency_ms(&events).expect("measurable fail-over");
    assert!(ms > 0.0 && ms < 2_000.0, "fail-over {ms} ms");
}

#[test]
fn time_domain_fault_muted_coordinator_detected() {
    // The rank-1 coordinator goes silent after 3 orders; the shadow's
    // delay estimate expires and it fail-signals (time-domain).
    let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .order_timeout(SimDuration::from_ms(400))
        .client(client(100.0, 3))
        .fault(ProcessId(0), Fault::MuteCoordinatorAt(SeqNo(4)))
        .seed(17)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(6));
    let events = d.world.drain_events();

    analysis::check_total_order(&events).unwrap();
    let fs = events
        .iter()
        .find(|e| {
            matches!(e.event, ScEvent::FailSignalIssued { pair: Rank(1), value_domain }
            if !value_domain)
        })
        .expect("time-domain fail-signal");
    // The shadow (process 5 for f=2) is the detector.
    assert_eq!(fs.node, 5);
    assert!(events
        .iter()
        .any(|e| matches!(e.event, ScEvent::Installed { c: Rank(2) })));
}

#[test]
fn double_failover_reaches_unpaired_candidate() {
    // Both pairs fail in turn; the unpaired candidate (rank f+1 = 3,
    // process 2) must take over and order solo.
    let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .client(client(100.0, 4))
        .fault(ProcessId(0), Fault::CorruptOrderAt(SeqNo(3)))
        .fault(ProcessId(1), Fault::CorruptOrderAt(SeqNo(8)))
        .seed(19)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(10));
    let events = d.world.drain_events();

    analysis::check_total_order(&events).unwrap();
    assert!(events
        .iter()
        .any(|e| matches!(e.event, ScEvent::Installed { c: Rank(3) })));
    assert!(
        events
            .iter()
            .any(|e| matches!(&e.event, ScEvent::Committed { c: Rank(3), .. })),
        "the unpaired coordinator must order new batches"
    );
}

#[test]
fn rubber_stamp_shadow_cannot_break_safety() {
    // A Byzantine shadow that endorses without checking cannot cause
    // divergent commits: the replica is correct, so contents stay valid.
    let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .client(client(100.0, 2))
        .fault(ProcessId(5), Fault::RubberStamp)
        .seed(23)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(4));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    let latencies = analysis::order_latencies(&events);
    assert!(!latencies.is_empty());
}

#[test]
fn dropped_acks_do_not_break_safety_or_liveness_within_f() {
    // One process drops all its acks (f=2 tolerates it).
    let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .client(client(100.0, 2))
        .fault(ProcessId(3), Fault::DropAcks)
        .seed(29)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(4));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    // Other nodes still commit.
    let commits = analysis::commits_per_node(&events);
    assert!(commits.get(&2).copied().unwrap_or(0) > 0);
}

#[test]
fn scr_failfree_behaves_like_sc() {
    let mut d = ScWorldBuilder::new(2, Variant::Scr, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .client(client(100.0, 2))
        .seed(31)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(4));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    let latencies = analysis::order_latencies(&events);
    assert!(
        latencies.len() >= 10,
        "SCR orders batches: {}",
        latencies.len()
    );
}

#[test]
fn scr_value_fault_view_change() {
    // SCR: coordinator pair 1 suffers a value-domain fault; view change
    // installs pair 2 and ordering continues.
    let mut d = ScWorldBuilder::new(2, Variant::Scr, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .client(client(100.0, 4))
        .fault(ProcessId(0), Fault::CorruptOrderAt(SeqNo(4)))
        .seed(37)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(8));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    assert!(events
        .iter()
        .any(|e| matches!(e.event, ScEvent::ViewChanged { .. })));
    assert!(
        events.iter().any(|e| matches!(
            &e.event,
            ScEvent::Committed { c, .. } if *c != Rank(1)
        )),
        "a later pair must order new batches"
    );
}

#[test]
fn deterministic_runs_with_same_seed() {
    let run = |seed: u64| {
        let mut d = ScWorldBuilder::new(1, Variant::Sc, SchemeId::Md5Rsa1024)
            .batching_interval(SimDuration::from_ms(50))
            .client(client(100.0, 1))
            .seed(seed)
            .build();
        d.start();
        d.run_until(SimTime::from_secs(2));
        let events = d.world.drain_events();
        events
            .iter()
            .filter_map(|e| match &e.event {
                ScEvent::Committed { o, digest, .. } => Some((e.time, e.node, *o, *digest)),
                _ => None,
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(99), run(99));
}

#[test]
fn topology_sanity_for_experiments() {
    // The f=2 topologies used throughout §5.
    let sc = Topology::new(2, Variant::Sc);
    assert_eq!(sc.n(), 7);
    let scr = Topology::new(2, Variant::Scr);
    assert_eq!(scr.n(), 8);
}
