//! Checkpointing integration: logs are truncated under sustained load,
//! checkpoint digests agree across replicas, and fail-over still works
//! from a truncated log.

use sofb_core::analysis;
use sofb_core::config::Fault;
use sofb_core::events::ScEvent;
use sofb_core::sim::{ClientSpec, ScWorldBuilder};
use sofb_crypto::scheme::SchemeId;
use sofb_proto::ids::{ProcessId, Rank, SeqNo};
use sofb_proto::topology::Variant;
use sofb_sim::time::{SimDuration, SimTime};

fn client(rate: f64, stop_s: u64) -> ClientSpec {
    ClientSpec {
        rate_per_sec: rate,
        request_size: 100,
        stop_at: SimTime::from_secs(stop_s),
    }
}

#[test]
fn checkpoints_stabilize_under_sustained_load() {
    let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(40))
        .checkpoint_interval(8)
        .client(client(300.0, 4))
        .seed(71)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(8));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();

    let stables: Vec<(usize, SeqNo)> = events
        .iter()
        .filter_map(|e| match e.event {
            ScEvent::CheckpointStable { o } => Some((e.node, o)),
            _ => None,
        })
        .collect();
    assert!(
        stables.len() >= d.topology.n(),
        "every process should stabilize at least one checkpoint: {stables:?}"
    );
    // Stable points advance (more than one boundary crossed).
    let max_stable = stables.iter().map(|(_, o)| *o).max().unwrap();
    assert!(max_stable >= SeqNo(16), "stable reached {max_stable:?}");
}

#[test]
fn checkpointing_disabled_emits_nothing() {
    let mut d = ScWorldBuilder::new(1, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .checkpoint_interval(0)
        .client(client(200.0, 2))
        .seed(73)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(4));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    assert!(!events
        .iter()
        .any(|e| matches!(e.event, ScEvent::CheckpointStable { .. })));
}

#[test]
fn failover_after_truncation_still_works() {
    // Enough traffic to cross several checkpoint boundaries before the
    // fault fires; the BackLogs then come from truncated logs.
    let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(40))
        .checkpoint_interval(8)
        .client(client(300.0, 6))
        .fault(ProcessId(0), Fault::CorruptOrderAt(SeqNo(40)))
        .seed(79)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(10));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();

    // Checkpoints stabilized before the fail-over...
    let first_stable = events
        .iter()
        .find(|e| matches!(e.event, ScEvent::CheckpointStable { .. }))
        .expect("checkpoints before the fault");
    let fs = events
        .iter()
        .find(|e| matches!(e.event, ScEvent::FailSignalIssued { .. }))
        .expect("fault detected");
    assert!(first_stable.time < fs.time, "truncation precedes fail-over");
    // ...and the install still succeeds and ordering continues.
    assert!(events
        .iter()
        .any(|e| matches!(e.event, ScEvent::Installed { c: Rank(2) })));
    assert!(events.iter().any(|e| matches!(
        &e.event,
        ScEvent::Committed { c: Rank(2), requests, .. } if *requests > 0
    )));
}

#[test]
fn scr_checkpoints_work_too() {
    let mut d = ScWorldBuilder::new(2, Variant::Scr, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(40))
        .checkpoint_interval(8)
        .client(client(300.0, 4))
        .seed(83)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(8));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    assert!(events
        .iter()
        .any(|e| matches!(e.event, ScEvent::CheckpointStable { .. })));
}
