//! Failure-injection tests beyond the scripted Byzantine faults: crashes,
//! batching limits, larger deployments, and the SCR Unwilling path.

use sofb_core::analysis;
use sofb_core::config::Fault;
use sofb_core::events::ScEvent;
use sofb_core::sim::{ClientSpec, ScWorldBuilder};
use sofb_crypto::scheme::SchemeId;
use sofb_proto::ids::{ProcessId, Rank, SeqNo};
use sofb_proto::topology::Variant;
use sofb_sim::time::{SimDuration, SimTime};

fn client(rate: f64, stop_s: u64) -> ClientSpec {
    ClientSpec {
        rate_per_sec: rate,
        request_size: 100,
        stop_at: SimTime::from_secs(stop_s),
    }
}

#[test]
fn crashed_coordinator_replica_detected_by_heartbeats() {
    // Crash p1 (the rank-1 coordinator replica) outright; its shadow's
    // heartbeat window expires (time-domain) and rank 2 takes over.
    let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .client(client(100.0, 4))
        .seed(41)
        .build();
    d.start();
    d.run_until(SimTime::from_ms(700));
    d.world.crash(0);
    d.run_until(SimTime::from_secs(8));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    assert!(
        events.iter().any(|e| matches!(
            e.event,
            ScEvent::FailSignalIssued {
                pair: Rank(1),
                value_domain: false
            }
        )),
        "shadow must detect the crash in the time domain"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e.event, ScEvent::Installed { c: Rank(2) })));
    assert!(events.iter().any(|e| matches!(
        &e.event,
        ScEvent::Committed { c: Rank(2), requests, .. } if *requests > 0
    )));
}

#[test]
fn crashed_shadow_detected_by_replica() {
    // Crash the rank-1 shadow (p'1, node 5): the replica stops receiving
    // heartbeats and fail-signals; installation proceeds.
    let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .client(client(100.0, 4))
        .seed(43)
        .build();
    d.start();
    d.run_until(SimTime::from_ms(700));
    d.world.crash(5);
    d.run_until(SimTime::from_secs(8));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    let detector = events
        .iter()
        .find(|e| matches!(e.event, ScEvent::FailSignalIssued { pair: Rank(1), .. }))
        .expect("replica must fail-signal");
    assert_eq!(detector.node, 0, "the surviving pair member detects");
    assert!(events
        .iter()
        .any(|e| matches!(e.event, ScEvent::Installed { c: Rank(2) })));
}

#[test]
fn crash_of_non_coordinator_process_is_tolerated_silently() {
    // An unpaired replica crashing must not trigger any fail-over —
    // quorums are sized for it.
    let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .client(client(100.0, 3))
        .seed(47)
        .build();
    d.start();
    d.run_until(SimTime::from_ms(500));
    d.world.crash(3);
    d.run_until(SimTime::from_secs(5));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    assert!(!events
        .iter()
        .any(|e| matches!(e.event, ScEvent::FailSignalIssued { .. })));
    // Ordering continues.
    let commits_after: usize = events
        .iter()
        .filter(|e| e.time > SimTime::from_secs(1))
        .filter(|e| matches!(e.event, ScEvent::Committed { .. }))
        .count();
    assert!(
        commits_after > 10,
        "commits after the crash: {commits_after}"
    );
}

#[test]
fn batches_respect_the_1kb_cap() {
    let mut d = ScWorldBuilder::new(1, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(100))
        .client(client(400.0, 2)) // far more than a batch per interval
        .seed(53)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(4));
    let events = d.world.drain_events();
    for ev in &events {
        if let ScEvent::OrderProposed { batch_len, .. } = &ev.event {
            // 100-byte requests, 1 KB cap → at most 10 per batch.
            assert!(*batch_len <= 10, "batch of {batch_len} exceeds the cap");
        }
    }
    analysis::check_total_order(&events).unwrap();
}

#[test]
fn f3_deployment_orders_and_fails_over() {
    // n = 10 (7 replicas + 3 shadows): double fail-over at f = 3.
    let mut d = ScWorldBuilder::new(3, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(60))
        .client(client(100.0, 4))
        .fault(ProcessId(0), Fault::CorruptOrderAt(SeqNo(3)))
        .fault(ProcessId(1), Fault::CorruptOrderAt(SeqNo(9)))
        .seed(59)
        .build();
    assert_eq!(d.topology.n(), 10);
    d.start();
    d.run_until(SimTime::from_secs(10));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    assert!(events
        .iter()
        .any(|e| matches!(e.event, ScEvent::Installed { c: Rank(3) })));
    assert!(events.iter().any(|e| matches!(
        &e.event,
        ScEvent::Committed { c: Rank(3), requests, .. } if *requests > 0
    )));
}

#[test]
fn scr_unwilling_candidate_skipped() {
    // SCR: crash pair-2's shadow early so pair 2 goes (and stays) Down;
    // then fail pair 1. The view change reaches pair 2, which must send
    // Unwilling, and pair 3 must end up coordinating.
    let mut d = ScWorldBuilder::new(2, Variant::Scr, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(60))
        .client(client(100.0, 5))
        .fault(ProcessId(0), Fault::CorruptOrderAt(SeqNo(6)))
        .seed(61)
        .build();
    d.start();
    d.run_until(SimTime::from_ms(200));
    d.world.crash(6); // p'2 — pair 2 can never be `up` again
    d.run_until(SimTime::from_secs(12));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, ScEvent::UnwillingSent { .. })),
        "pair 2 must decline the view"
    );
    assert!(
        events.iter().any(|e| matches!(
            &e.event,
            ScEvent::Committed { c: Rank(3), requests, .. } if *requests > 0
        )),
        "pair 3 must take over ordering"
    );
}

#[test]
fn two_simultaneous_request_streams_interleave_safely() {
    let mut d = ScWorldBuilder::new(2, Variant::Sc, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .client(client(120.0, 2))
        .client(client(80.0, 2))
        .seed(67)
        .build();
    d.start();
    d.run_until(SimTime::from_secs(5));
    let events = d.world.drain_events();
    analysis::check_total_order(&events).unwrap();
    // All issued requests get ordered: 120*2 + 80*2 = 400 (±batch tails).
    let committed: usize = events
        .iter()
        .filter(|e| e.node == 2)
        .filter_map(|e| match &e.event {
            ScEvent::Committed { requests, .. } => Some(*requests),
            _ => None,
        })
        .sum();
    assert!((380..=400).contains(&committed), "committed {committed}");
}
