//! Canonical binary encoding.
//!
//! Every payload that gets signed must have exactly one byte representation
//! on every process, so signatures verify identically everywhere. This
//! module provides a small deterministic writer/reader pair and the
//! [`Encode`]/[`Decode`] traits the protocol payloads implement.
//!
//! The format is little-endian, length-prefixed, with no padding or
//! alignment — deliberately trivial so that the encoded length doubles as
//! the simulated wire size.

use bytes::Bytes;

/// Serialize into the canonical byte form.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience: the canonical encoding as a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Encoded length in bytes (computed without materializing the
    /// encoding — see [`Encoder::counting`]).
    fn encoded_len(&self) -> usize {
        let mut enc = Encoder::counting();
        self.encode(&mut enc);
        enc.len()
    }
}

/// Deserialize from the canonical byte form.
pub trait Decode: Sized {
    /// Reads one value; errors on malformed or truncated input.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError>;

    /// Convenience: decodes a full buffer, requiring all bytes consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        if !dec.is_empty() {
            return Err(CodecError::TrailingBytes);
        }
        Ok(v)
    }
}

/// Decoding failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix exceeded sane bounds.
    LengthOverflow,
    /// An enum discriminant was not recognized.
    BadDiscriminant(u8),
    /// Input had bytes left over after a full decode.
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "unexpected end of input"),
            CodecError::LengthOverflow => write!(f, "length prefix too large"),
            CodecError::BadDiscriminant(d) => write!(f, "unrecognized discriminant {d}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Maximum single field length (16 MiB) — rejects absurd length prefixes
/// before allocation.
const MAX_FIELD: usize = 16 << 20;

/// The canonical writer.
///
/// A counting encoder ([`Encoder::counting`]) walks the same `encode`
/// path but only tallies lengths — no allocation, no copying. The
/// simulator computes a wire size for every single send and delivery, so
/// [`Encode::encoded_len`] runs in counting mode; this removed a full
/// serialization (plus its buffer churn) from the hottest path in the
/// engine.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
    count_only: bool,
    count: usize,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a length-counting encoder: `put_*` calls tally bytes
    /// without materializing them.
    pub fn counting() -> Self {
        Encoder {
            buf: Vec::new(),
            count_only: true,
            count: 0,
        }
    }

    /// Creates an encoder writing into `buf`'s storage (cleared first).
    /// Lets hot paths reuse one scratch vector across encodes instead of
    /// allocating per call — see [`with_encoded`].
    pub fn reuse(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Encoder {
            buf,
            count_only: false,
            count: 0,
        }
    }

    /// Finishes and returns the bytes (empty for a counting encoder).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        if self.count_only {
            self.count
        } else {
            self.buf.len()
        }
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        if self.count_only {
            self.count += 1;
        } else {
            self.buf.push(v);
        }
    }

    /// Writes a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        if self.count_only {
            self.count += 2;
        } else {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        if self.count_only {
            self.count += 4;
        } else {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        if self.count_only {
            self.count += 8;
        } else {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        if self.count_only {
            self.count += v.len();
        } else {
            self.buf.extend_from_slice(v);
        }
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a length-prefixed sequence.
    pub fn put_seq<T: Encode>(&mut self, items: &[T]) {
        self.put_u32(items.len() as u32);
        for item in items {
            item.encode(self);
        }
    }
}

/// The canonical reader.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf }
    }

    /// True when all input is consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Remaining bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::UnexpectedEnd);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.get_u32()? as usize;
        if len > MAX_FIELD {
            return Err(CodecError::LengthOverflow);
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a bool.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a length-prefixed sequence.
    pub fn get_seq<T: Decode>(&mut self) -> Result<Vec<T>, CodecError> {
        let len = self.get_u32()? as usize;
        if len > MAX_FIELD {
            return Err(CodecError::LengthOverflow);
        }
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }
}

thread_local! {
    /// Scratch vectors for [`with_encoded`]. A stack, not a single slot,
    /// so an `Encode` impl that itself encodes (nested `with_encoded`)
    /// composes instead of fighting over one buffer.
    static ENCODE_SCRATCH: std::cell::RefCell<Vec<Vec<u8>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` over the canonical encoding of `value` without allocating a
/// fresh buffer per call: the encoding is built in a thread-local scratch
/// vector that is returned for reuse afterwards. This is the sign/verify
/// hot path — every signature covers a payload encoding, and the
/// simulator signs and verifies on every protocol step.
pub fn with_encoded<T: Encode + ?Sized, R>(value: &T, f: impl FnOnce(&[u8]) -> R) -> R {
    with_encoded_suffix(value, &[], f)
}

/// Like [`with_encoded`], with `suffix` appended after the encoding —
/// the doubly-signed form signs `payload encoding ‖ first signature`.
pub fn with_encoded_suffix<T: Encode + ?Sized, R>(
    value: &T,
    suffix: &[u8],
    f: impl FnOnce(&[u8]) -> R,
) -> R {
    let scratch = ENCODE_SCRATCH
        .with(|s| s.borrow_mut().pop())
        .unwrap_or_default();
    let mut enc = Encoder::reuse(scratch);
    value.encode(&mut enc);
    let mut buf = enc.into_bytes();
    buf.extend_from_slice(suffix);
    let out = f(&buf);
    ENCODE_SCRATCH.with(|s| s.borrow_mut().push(buf));
    out
}

impl Encode for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.get_u64()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        dec.get_bytes()
    }
}

impl Encode for Bytes {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
}

impl Decode for Bytes {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Bytes::from(dec.get_bytes()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u16(1234);
        e.put_u32(567_890);
        e.put_u64(u64::MAX);
        e.put_bool(true);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u16().unwrap(), 1234);
        assert_eq!(d.get_u32().unwrap(), 567_890);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert!(d.get_bool().unwrap());
        assert!(d.is_empty());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut e = Encoder::new();
        e.put_bytes(b"hello");
        e.put_bytes(b"");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_bytes().unwrap(), b"hello");
        assert_eq!(d.get_bytes().unwrap(), b"");
    }

    #[test]
    fn truncated_input_errors() {
        let mut d = Decoder::new(&[1, 2]);
        assert_eq!(d.get_u32(), Err(CodecError::UnexpectedEnd));
        let mut d = Decoder::new(&[255, 255, 255, 255]);
        assert_eq!(d.get_bytes(), Err(CodecError::LengthOverflow));
    }

    #[test]
    fn seq_roundtrip() {
        let v: Vec<u64> = vec![1, 2, 3];
        let mut e = Encoder::new();
        e.put_seq(&v);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_seq::<u64>().unwrap(), v);
    }

    #[test]
    fn from_bytes_rejects_trailing() {
        let mut e = Encoder::new();
        e.put_u64(9);
        let mut bytes = e.into_bytes();
        bytes.push(0);
        assert_eq!(u64::from_bytes(&bytes), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn encoded_len_matches() {
        let v: Vec<u8> = vec![1, 2, 3, 4];
        assert_eq!(v.encoded_len(), 8);
    }
}
