//! A fast, non-cryptographic hasher for protocol-internal id sets.
//!
//! The hot path of every protocol variant maintains `HashSet<RequestId>`
//! / `HashMap<RequestId, Request>` tables touched once or more per
//! request per process. The standard library's default SipHash-1-3 is
//! keyed against HashDoS from untrusted input, which these tables never
//! see — keys are small fixed-width ids produced by the simulator itself
//! — so its per-lookup cost is pure overhead (it showed up as several
//! percent of a benchmark run). This is an FxHash-style multiply-xor
//! hasher: one wrapping multiply per word, quality adequate for id
//! distribution, an order of magnitude cheaper than SipHash on 12-byte
//! keys.
//!
//! The hasher is deterministic (no per-process random state), which also
//! keeps any incidental iteration order reproducible across runs —
//! protocol code must still never let map iteration order reach the
//! wire or the event log.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (FxHash construction, 64-bit).
#[derive(Clone, Copy, Debug, Default)]
pub struct IdHasher {
    state: u64,
}

/// The golden-ratio multiplier Fx uses to spread bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl IdHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`IdHasher`] — plug into `HashMap`/`HashSet` type
/// parameters.
pub type IdBuildHasher = BuildHasherDefault<IdHasher>;

/// `HashMap` keyed by simulator-internal ids.
pub type IdHashMap<K, V> = std::collections::HashMap<K, V, IdBuildHasher>;

/// `HashSet` of simulator-internal ids.
pub type IdHashSet<K> = std::collections::HashSet<K, IdBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::request::RequestId;

    #[test]
    fn distributes_request_ids() {
        let mut set: IdHashSet<RequestId> = IdHashSet::default();
        for client in 0..8u32 {
            for seq in 0..1_000u64 {
                set.insert(RequestId {
                    client: ClientId(client),
                    seq,
                });
            }
        }
        assert_eq!(set.len(), 8_000);
        assert!(set.contains(&RequestId {
            client: ClientId(3),
            seq: 500
        }));
    }

    #[test]
    fn deterministic_across_instances() {
        use std::hash::BuildHasher;
        let a = IdBuildHasher::default();
        let b = IdBuildHasher::default();
        let id = RequestId {
            client: ClientId(7),
            seq: 42,
        };
        assert_eq!(a.hash_one(id), b.hash_one(id));
    }

    #[test]
    fn unequal_tails_hash_differently() {
        use std::hash::BuildHasher;
        let h = IdBuildHasher::default();
        // Length padding keeps short byte strings with shared prefixes
        // apart.
        assert_ne!(h.hash_one([1u8, 0]), h.hash_one([1u8]));
    }
}
