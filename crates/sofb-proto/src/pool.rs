//! Pooled, shared message byte buffers.
//!
//! Signatures, MAC tags and digest inputs are created once per protocol
//! message but cloned once per *hop* — a multicast to `n` peers used to
//! deep-copy every byte buffer `n` times, and each copy was a fresh heap
//! allocation the destination freed after dispatch. [`PooledBuf`] makes
//! the per-hop clone a reference-count bump, and [`BufPool`] recycles the
//! backing storage when the last clone is dropped ("recycle on deliver"):
//! at steady state the same few vectors shuttle between the pool and the
//! in-flight messages, and signing a message allocates nothing.
//!
//! The pool is thread-local — worlds are single-threaded and a sweep
//! worker owns its world end to end, so buffers return to the pool of the
//! thread that is recycling them without any synchronization. The pool is
//! bounded (`MAX_POOLED`); beyond that, storage simply drops.

use std::cell::RefCell;
use std::sync::Arc;

use crate::codec::{CodecError, Decode, Decoder, Encode, Encoder};

/// Upper bound on pooled storages per thread; keeps a pathological burst
/// from pinning memory forever.
const MAX_POOLED: usize = 1024;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Handle to the thread-local recycled-storage pool.
#[derive(Debug)]
pub struct BufPool;

impl BufPool {
    /// Takes a cleared storage vector from the pool (or a fresh one when
    /// the pool is empty). Pair with [`PooledBuf::seal`] — or let the
    /// vector drop, which simply forfeits the recycled capacity.
    pub fn take() -> Vec<u8> {
        POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
    }

    /// Returns a storage vector to the pool.
    fn put(mut data: Vec<u8>) {
        if data.capacity() == 0 {
            return;
        }
        data.clear();
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < MAX_POOLED {
                p.push(data);
            }
        });
    }

    /// Number of storages currently pooled on this thread (test
    /// introspection).
    pub fn pooled() -> usize {
        POOL.with(|p| p.borrow().len())
    }
}

/// The shared backing storage; returns its vector to the pool when the
/// last [`PooledBuf`] clone drops.
#[derive(Debug)]
struct Storage {
    data: Vec<u8>,
}

impl Drop for Storage {
    fn drop(&mut self) {
        BufPool::put(std::mem::take(&mut self.data));
    }
}

/// An immutable, cheaply clonable byte buffer with pooled storage.
///
/// Semantically a `Vec<u8>` frozen at construction: it compares, hashes
/// and orders by content, and encodes exactly like a length-prefixed byte
/// string. Cloning bumps a reference count; dropping the last clone
/// recycles the storage through [`BufPool`].
#[derive(Clone, Debug, Default)]
pub struct PooledBuf {
    /// `None` is the canonical empty buffer (no storage, no recycling).
    inner: Option<Arc<Storage>>,
}

impl PooledBuf {
    /// The empty buffer. Allocation-free.
    pub fn empty() -> Self {
        PooledBuf { inner: None }
    }

    /// Freezes `data` (typically from [`BufPool::take`]) into a shared
    /// buffer. An empty vector returns straight to the pool.
    pub fn seal(data: Vec<u8>) -> Self {
        if data.is_empty() {
            BufPool::put(data);
            return Self::empty();
        }
        PooledBuf {
            inner: Some(Arc::new(Storage { data })),
        }
    }

    /// Copies `bytes` into pooled storage.
    pub fn copy_from(bytes: &[u8]) -> Self {
        if bytes.is_empty() {
            return Self::empty();
        }
        let mut data = BufPool::take();
        data.extend_from_slice(bytes);
        Self::seal(data)
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        self.inner.as_ref().map_or(&[], |s| s.data.as_slice())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_none()
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for PooledBuf {
    fn from(data: Vec<u8>) -> Self {
        Self::seal(data)
    }
}

impl From<&[u8]> for PooledBuf {
    fn from(bytes: &[u8]) -> Self {
        Self::copy_from(bytes)
    }
}

impl PartialEq for PooledBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for PooledBuf {}

impl PartialEq<[u8]> for PooledBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for PooledBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for PooledBuf {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for PooledBuf {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PooledBuf {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Encode for PooledBuf {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self.as_slice());
    }
}

impl Decode for PooledBuf {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self::seal(dec.get_bytes()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = PooledBuf::copy_from(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn storage_recycles_on_last_drop() {
        // Drain whatever earlier tests pooled, then check round-trips
        // reuse storage instead of growing the pool.
        while BufPool::pooled() > 0 {
            BufPool::take();
        }
        let a = PooledBuf::copy_from(b"first");
        let b = a.clone();
        drop(a);
        assert_eq!(BufPool::pooled(), 0, "clone still live");
        drop(b);
        assert_eq!(BufPool::pooled(), 1, "last drop must recycle");
        let c = PooledBuf::copy_from(b"second");
        assert_eq!(BufPool::pooled(), 0, "new buffer must reuse storage");
        assert_eq!(c.as_slice(), b"second");
    }

    #[test]
    fn empty_is_canonical_and_unpooled() {
        assert_eq!(PooledBuf::empty(), PooledBuf::copy_from(b""));
        assert_eq!(PooledBuf::empty().len(), 0);
        assert!(PooledBuf::from(Vec::new()).is_empty());
    }

    #[test]
    fn compares_and_encodes_like_bytes() {
        let a = PooledBuf::copy_from(b"abc");
        assert_eq!(a, b"abc".to_vec());
        assert!(a < PooledBuf::copy_from(b"abd"));
        let bytes = {
            let mut enc = Encoder::new();
            a.encode(&mut enc);
            enc.into_bytes()
        };
        assert_eq!(bytes, {
            let mut enc = Encoder::new();
            enc.put_bytes(b"abc");
            enc.into_bytes()
        });
        assert_eq!(PooledBuf::from_bytes(&bytes).unwrap(), a);
    }
}
