//! The request backlog every order protocol keeps: which requests are
//! known-but-unordered, in arrival order, and which are already ordered.
//!
//! SC/SCR, BFT and CT all maintain the same pair of structures — an
//! arrival-ordered deque feeding batch formation and an ordered-id set —
//! with the same two hot-path subtleties, so the logic lives here once:
//!
//! * **Amortized compaction.** Marking a batch ordered does not sweep
//!   the deque (that sweep, once per accepted order, was a benchmark
//!   hot spot); consumers skip ordered entries instead, and the full
//!   sweep runs only when the deque doubles past its live backlog —
//!   O(1) amortized per request with identical observable behaviour.
//! * **Front-age queries.** Timeliness checks (the SC shadow's
//!   order-timeout, BFT's view-change trigger) ask how long the oldest
//!   *waiting* request has been queued, so already-ordered entries are
//!   popped off the front before reading it.

use std::collections::VecDeque;

use crate::fasthash::IdHashSet;
use crate::request::RequestId;

/// Smallest deque length worth sweeping for already-ordered entries.
const COMPACT_MIN: usize = 64;

/// Arrival-ordered backlog of known requests plus the ordered-id set.
///
/// `T` is the per-entry arrival stamp (the simulator's `SimTime`; any
/// copyable stamp works).
#[derive(Clone, Debug)]
pub struct RequestBacklog<T> {
    ordered: IdHashSet<RequestId>,
    unordered: VecDeque<(RequestId, T)>,
    watermark: usize,
}

impl<T> Default for RequestBacklog<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RequestBacklog<T> {
    /// An empty backlog.
    pub fn new() -> Self {
        RequestBacklog {
            ordered: IdHashSet::default(),
            unordered: VecDeque::new(),
            watermark: COMPACT_MIN,
        }
    }
}

impl<T: Copy> RequestBacklog<T> {
    /// Queues a newly learned request unless it is already ordered.
    /// (Deduplication against re-delivery is the caller's request store.)
    pub fn note(&mut self, id: RequestId, at: T) {
        if !self.ordered.contains(&id) {
            self.unordered.push_back((id, at));
        }
    }

    /// True if `id` has been ordered.
    pub fn is_ordered(&self, id: &RequestId) -> bool {
        self.ordered.contains(id)
    }

    /// Marks every id of a batch ordered, sweeping the deque only once
    /// it outgrows its watermark.
    pub fn mark_ordered<I: IntoIterator<Item = RequestId>>(&mut self, ids: I) {
        for id in ids {
            self.ordered.insert(id);
        }
        if self.unordered.len() >= self.watermark {
            let ordered = &self.ordered;
            self.unordered.retain(|(id, _)| !ordered.contains(id));
            self.watermark = (self.unordered.len() * 2).max(COMPACT_MIN);
        }
    }

    /// The front entry of the deque, ordered entries included (batch
    /// formation skips and pops those itself via [`Self::is_ordered`]).
    pub fn front(&self) -> Option<(RequestId, T)> {
        self.unordered.front().copied()
    }

    /// Pops the front entry.
    pub fn pop_front(&mut self) -> Option<(RequestId, T)> {
        self.unordered.pop_front()
    }

    /// Arrival stamp of the oldest request still awaiting an order
    /// (already-ordered entries are dropped off the front first, so the
    /// answer never ages a request that was in fact ordered).
    pub fn oldest_waiting(&mut self) -> Option<T> {
        while self
            .unordered
            .front()
            .is_some_and(|(id, _)| self.ordered.contains(id))
        {
            self.unordered.pop_front();
        }
        self.unordered.front().map(|&(_, t)| t)
    }

    /// Number of requests known but not yet ordered.
    pub fn waiting_len(&self) -> usize {
        self.unordered
            .iter()
            .filter(|(id, _)| !self.ordered.contains(id))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    fn id(seq: u64) -> RequestId {
        RequestId {
            client: ClientId(0),
            seq,
        }
    }

    #[test]
    fn notes_skip_ordered_ids() {
        let mut b: RequestBacklog<u64> = RequestBacklog::new();
        b.mark_ordered([id(1)]);
        b.note(id(1), 10);
        b.note(id(2), 20);
        assert_eq!(b.waiting_len(), 1);
        assert_eq!(b.front(), Some((id(2), 20)));
    }

    #[test]
    fn oldest_waiting_skips_ordered_fronts() {
        let mut b: RequestBacklog<u64> = RequestBacklog::new();
        for i in 0..4 {
            b.note(id(i), i * 10);
        }
        b.mark_ordered([id(0), id(1)]);
        // Deque still holds the ordered fronts (no compaction below the
        // watermark) but age queries must not see them.
        assert_eq!(b.oldest_waiting(), Some(20));
        assert_eq!(b.waiting_len(), 2);
    }

    #[test]
    fn compaction_is_amortized_and_behavior_neutral() {
        let mut b: RequestBacklog<u64> = RequestBacklog::new();
        for i in 0..200 {
            b.note(id(i), i);
        }
        b.mark_ordered((0..150).map(id));
        // Past the watermark the sweep ran: only waiting entries remain.
        assert_eq!(b.waiting_len(), 50);
        assert_eq!(b.unordered.len(), 50);
        assert_eq!(b.oldest_waiting(), Some(150));
    }
}
