//! Strongly-typed identifiers.

use crate::codec::{CodecError, Decode, Decoder, Encode, Encoder};

/// Index of an order process within a deployment (0-based; covers both
/// replicas and shadows — see [`Topology`](crate::topology::Topology)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

/// A client identifier (clients live outside the order process set).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

/// 1-based rank of a coordinator candidate (`C_c` in the paper, §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rank(pub u32);

/// Sequence number assigned to a batch by a coordinator (`o` in the paper).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqNo(pub u64);

/// SCR view number (`v` in §4.4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewId(pub u64);

impl SeqNo {
    /// The next sequence number.
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }

    /// The previous sequence number (saturating at 0).
    pub fn prev(self) -> SeqNo {
        SeqNo(self.0.saturating_sub(1))
    }
}

impl Rank {
    /// The first coordinator candidate.
    pub const FIRST: Rank = Rank(1);

    /// The next-ranked candidate.
    pub fn next(self) -> Rank {
        Rank(self.0 + 1)
    }
}

impl ViewId {
    /// The next view.
    pub fn next(self) -> ViewId {
        ViewId(self.0 + 1)
    }
}

macro_rules! impl_display_codec {
    ($ty:ident, $prefix:literal, $inner:ty, $get:ident, $put:ident) => {
        impl std::fmt::Display for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl Encode for $ty {
            fn encode(&self, enc: &mut Encoder) {
                enc.$put(self.0);
            }
        }

        impl Decode for $ty {
            fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
                Ok($ty(dec.$get()?))
            }
        }
    };
}

impl_display_codec!(ProcessId, "p", u32, get_u32, put_u32);
impl_display_codec!(ClientId, "cl", u32, get_u32, put_u32);
impl_display_codec!(Rank, "C", u32, get_u32, put_u32);
impl_display_codec!(SeqNo, "o", u64, get_u64, put_u64);
impl_display_codec!(ViewId, "v", u64, get_u64, put_u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert_eq!(Rank(1).to_string(), "C1");
        assert_eq!(SeqNo(42).to_string(), "o42");
        assert_eq!(ViewId(7).to_string(), "v7");
        assert_eq!(ClientId(0).to_string(), "cl0");
    }

    #[test]
    fn successor_helpers() {
        assert_eq!(SeqNo(1).next(), SeqNo(2));
        assert_eq!(SeqNo(0).prev(), SeqNo(0));
        assert_eq!(Rank::FIRST.next(), Rank(2));
        assert_eq!(ViewId(0).next(), ViewId(1));
    }

    #[test]
    fn codec_roundtrip() {
        let mut e = Encoder::new();
        ProcessId(5).encode(&mut e);
        SeqNo(99).encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(ProcessId::decode(&mut d).unwrap(), ProcessId(5));
        assert_eq!(SeqNo::decode(&mut d).unwrap(), SeqNo(99));
    }
}
