//! Signed and doubly-signed message envelopes.
//!
//! The paper's §3 reserves the term *doubly-signed* for a message signed by
//! two processes in sequence, where "the second process considers the
//! signature of the first as a part of the contents it signs for". Property
//! SC1 rests on this: an authentic doubly-signed message is uniquely
//! attributable to its source pair and carries content both members
//! computed or checked.

use sofb_crypto::provider::CryptoProvider;

use crate::codec::{
    with_encoded, with_encoded_suffix, CodecError, Decode, Decoder, Encode, Encoder,
};
use crate::ids::ProcessId;
use crate::pool::{BufPool, PooledBuf};

/// A payload with one signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signed<T> {
    /// The signed content.
    pub payload: T,
    /// Who signed.
    pub signer: ProcessId,
    /// Signature over the payload's canonical encoding. Pooled: clones
    /// (one per multicast hop) share the storage by reference count.
    pub sig: PooledBuf,
}

impl<T: Encode> Signed<T> {
    /// Signs `payload` as the provider's own process.
    pub fn sign(payload: T, provider: &mut dyn CryptoProvider) -> Self {
        let mut sig = BufPool::take();
        with_encoded(&payload, |bytes| provider.sign_into(bytes, &mut sig));
        Signed {
            payload,
            signer: ProcessId(provider.my_id()),
            sig: PooledBuf::seal(sig),
        }
    }

    /// Verifies the signature against the claimed signer.
    pub fn verify(&self, provider: &mut dyn CryptoProvider) -> bool {
        with_encoded(&self.payload, |bytes| {
            provider.verify(self.signer.0, bytes, &self.sig)
        })
    }
}

impl<T: Encode> Encode for Signed<T> {
    fn encode(&self, enc: &mut Encoder) {
        self.payload.encode(enc);
        self.signer.encode(enc);
        enc.put_bytes(&self.sig);
    }
}

impl<T: Decode> Decode for Signed<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let payload = T::decode(dec)?;
        let signer = ProcessId::decode(dec)?;
        let sig = PooledBuf::decode(dec)?;
        Ok(Signed {
            payload,
            signer,
            sig,
        })
    }
}

/// A payload signed by two processes in sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DoublySigned<T> {
    /// The signed content.
    pub payload: T,
    /// First signatory (computed the content).
    pub first: ProcessId,
    /// First signature, over the payload encoding.
    pub first_sig: PooledBuf,
    /// Second signatory (endorsed the content).
    pub second: ProcessId,
    /// Second signature, over payload encoding ‖ first signature.
    pub second_sig: PooledBuf,
}

impl<T: Encode> DoublySigned<T> {
    /// Endorses a singly-signed message, producing the doubly-signed form.
    ///
    /// The caller must already have validated the payload in the value
    /// domain; this only attaches the second signature.
    pub fn endorse(signed: Signed<T>, provider: &mut dyn CryptoProvider) -> Self {
        let mut second_sig = BufPool::take();
        with_encoded_suffix(&signed.payload, &signed.sig, |content| {
            provider.sign_into(content, &mut second_sig)
        });
        DoublySigned {
            payload: signed.payload,
            first: signed.signer,
            first_sig: signed.sig,
            second: ProcessId(provider.my_id()),
            second_sig: PooledBuf::seal(second_sig),
        }
    }

    /// Verifies both signatures.
    pub fn verify(&self, provider: &mut dyn CryptoProvider) -> bool {
        let first_ok = with_encoded(&self.payload, |bytes| {
            provider.verify(self.first.0, bytes, &self.first_sig)
        });
        if !first_ok {
            return false;
        }
        with_encoded_suffix(&self.payload, &self.first_sig, |content| {
            provider.verify(self.second.0, content, &self.second_sig)
        })
    }

    /// True if the two signatories are exactly `{a, b}` in either order.
    pub fn signed_by_pair(&self, a: ProcessId, b: ProcessId) -> bool {
        (self.first == a && self.second == b) || (self.first == b && self.second == a)
    }
}

impl<T: Encode> Encode for DoublySigned<T> {
    fn encode(&self, enc: &mut Encoder) {
        self.payload.encode(enc);
        self.first.encode(enc);
        enc.put_bytes(&self.first_sig);
        self.second.encode(enc);
        enc.put_bytes(&self.second_sig);
    }
}

impl<T: Decode> Decode for DoublySigned<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let payload = T::decode(dec)?;
        let first = ProcessId::decode(dec)?;
        let first_sig = PooledBuf::decode(dec)?;
        let second = ProcessId::decode(dec)?;
        let second_sig = PooledBuf::decode(dec)?;
        Ok(DoublySigned {
            payload,
            first,
            first_sig,
            second,
            second_sig,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_crypto::provider::Dealer;
    use sofb_crypto::scheme::SchemeId;

    fn providers(n: usize) -> Vec<sofb_crypto::provider::SimProvider> {
        Dealer::sim(SchemeId::Md5Rsa1024, n, 1234)
    }

    #[test]
    fn signed_roundtrip_and_verify() {
        let mut provs = providers(3);
        let s = Signed::sign(42u64, &mut provs[0]);
        assert_eq!(s.signer, ProcessId(0));
        assert!(s.verify(&mut provs[1]));
        let decoded = Signed::<u64>::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(decoded, s);
        assert!(decoded.verify(&mut provs[2]));
    }

    #[test]
    fn signed_tamper_detected() {
        let mut provs = providers(2);
        let mut s = Signed::sign(42u64, &mut provs[0]);
        s.payload = 43;
        assert!(!s.verify(&mut provs[1]));
    }

    #[test]
    fn signed_wrong_claimed_signer_detected() {
        let mut provs = providers(3);
        let mut s = Signed::sign(42u64, &mut provs[0]);
        s.signer = ProcessId(2);
        assert!(!s.verify(&mut provs[1]));
    }

    #[test]
    fn doubly_signed_endorse_verify() {
        let mut provs = providers(3);
        let s = Signed::sign(7u64, &mut provs[0]);
        let d = DoublySigned::endorse(s, &mut provs[1]);
        assert_eq!(d.first, ProcessId(0));
        assert_eq!(d.second, ProcessId(1));
        assert!(d.verify(&mut provs[2]));
        assert!(d.signed_by_pair(ProcessId(0), ProcessId(1)));
        assert!(d.signed_by_pair(ProcessId(1), ProcessId(0)));
        assert!(!d.signed_by_pair(ProcessId(0), ProcessId(2)));
    }

    #[test]
    fn doubly_signed_first_sig_is_bound() {
        // Swapping in a different first signature invalidates the second.
        let mut provs = providers(3);
        let s1 = Signed::sign(7u64, &mut provs[0]);
        let d = DoublySigned::endorse(s1, &mut provs[1]);
        let mut tampered = d.clone();
        // Replace the first signature with process 2's valid signature
        // over the same payload — the second signature no longer matches.
        let s2 = Signed::sign(7u64, &mut provs[2]);
        tampered.first = ProcessId(2);
        tampered.first_sig = s2.sig;
        assert!(!tampered.verify(&mut provs[0]));
    }

    #[test]
    fn doubly_signed_codec_roundtrip() {
        let mut provs = providers(2);
        let d = DoublySigned::endorse(Signed::sign(99u64, &mut provs[0]), &mut provs[1]);
        let decoded = DoublySigned::<u64>::from_bytes(&d.to_bytes()).unwrap();
        assert_eq!(decoded, d);
    }
}
