//! Client requests, batches and digests.

use std::sync::Arc;

use bytes::Bytes;

use crate::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use crate::ids::ClientId;

/// Longest digest any supported scheme produces (SHA-256).
pub const MAX_DIGEST_LEN: usize = 32;

/// A message digest (algorithm chosen by the deployment's scheme).
///
/// Stored inline — digests are at most [`MAX_DIGEST_LEN`] bytes, and
/// order messages carrying them are cloned once per multicast hop, so an
/// inline copy beats a heap buffer on the simulator's hottest path.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest {
    len: u8,
    bytes: [u8; MAX_DIGEST_LEN],
}

impl Digest {
    /// Wraps raw digest bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds [`MAX_DIGEST_LEN`] — no supported
    /// digest algorithm produces more than 32 bytes.
    pub fn new(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= MAX_DIGEST_LEN, "digest too long");
        let mut d = Digest {
            len: bytes.len() as u8,
            bytes: [0; MAX_DIGEST_LEN],
        };
        d.bytes[..bytes.len()].copy_from_slice(bytes);
        d
    }

    /// An empty digest (placeholder before computation).
    pub fn empty() -> Self {
        Digest::default()
    }

    /// The digest bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Short hex rendering for logs.
    pub fn short_hex(&self) -> String {
        self.as_slice()
            .iter()
            .take(6)
            .map(|b| format!("{b:02x}"))
            .collect()
    }
}

impl From<Vec<u8>> for Digest {
    fn from(bytes: Vec<u8>) -> Self {
        Digest::new(&bytes)
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", self.short_hex())
    }
}

impl Encode for Digest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self.as_slice());
    }
}

impl Decode for Digest {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let bytes = dec.get_bytes()?;
        if bytes.len() > MAX_DIGEST_LEN {
            return Err(CodecError::LengthOverflow);
        }
        Ok(Digest::new(&bytes))
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "D({})", self.short_hex())
    }
}

/// A unique request identifier: issuing client plus client-local sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId {
    /// The issuing client.
    pub client: ClientId,
    /// Client-local sequence number.
    pub seq: u64,
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.client, self.seq)
    }
}

impl Encode for RequestId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.client.0);
        enc.put_u64(self.seq);
    }
}

impl Decode for RequestId {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let client = ClientId(dec.get_u32()?);
        let seq = dec.get_u64()?;
        Ok(RequestId { client, seq })
    }
}

/// A client request (`m` in the paper). Clients "direct their requests to
/// all nodes" (§3), so the order messages carry only `D(m)` and request
/// ids, never the payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Unique id.
    pub id: RequestId,
    /// Operation payload (opaque to the ordering layer).
    pub payload: Bytes,
}

impl Request {
    /// Creates a request.
    pub fn new(client: ClientId, seq: u64, payload: impl Into<Bytes>) -> Self {
        Request {
            id: RequestId { client, seq },
            payload: payload.into(),
        }
    }
}

impl Encode for Request {
    fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        enc.put_bytes(&self.payload);
    }
}

impl Decode for Request {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let id = RequestId::decode(dec)?;
        let payload = Bytes::from(dec.get_bytes()?);
        Ok(Request { id, payload })
    }
}

/// An ordered batch reference: the request ids a coordinator grouped into
/// one sequence number, plus the digest binding their contents.
///
/// The digest is computed over the concatenated canonical encodings of the
/// member requests, in id order as listed.
///
/// The member list is shared (`Arc`): order and ack messages embed the
/// batch reference and are cloned once per multicast hop, so the clone
/// must be a reference-count bump, not a copy of a hundred request ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchRef {
    /// Member request ids, in coordinator order.
    pub requests: Arc<[RequestId]>,
    /// Digest over the members' canonical encodings.
    pub digest: Digest,
}

impl BatchRef {
    /// Builds the byte string the batch digest is computed over.
    pub fn digest_input(requests: &[&Request]) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u32(requests.len() as u32);
        for r in requests {
            r.encode(&mut enc);
        }
        enc.into_bytes()
    }

    /// Number of member requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the batch has no members.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

impl Encode for BatchRef {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_seq(&self.requests);
        self.digest.encode(enc);
    }
}

impl Decode for BatchRef {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let requests = dec.get_seq::<RequestId>()?.into();
        let digest = Digest::decode(dec)?;
        Ok(BatchRef { requests, digest })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = Request::new(ClientId(3), 17, &b"set x=1"[..]);
        let bytes = r.to_bytes();
        assert_eq!(Request::from_bytes(&bytes).unwrap(), r);
    }

    #[test]
    fn request_id_ordering() {
        let a = RequestId {
            client: ClientId(1),
            seq: 5,
        };
        let b = RequestId {
            client: ClientId(1),
            seq: 6,
        };
        let c = RequestId {
            client: ClientId(2),
            seq: 0,
        };
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "cl1#5");
    }

    #[test]
    fn batch_digest_input_is_canonical() {
        let r1 = Request::new(ClientId(1), 1, &b"a"[..]);
        let r2 = Request::new(ClientId(1), 2, &b"b"[..]);
        let fwd = BatchRef::digest_input(&[&r1, &r2]);
        let rev = BatchRef::digest_input(&[&r2, &r1]);
        assert_ne!(fwd, rev, "order must be significant");
        assert_eq!(fwd, BatchRef::digest_input(&[&r1, &r2]));
    }

    #[test]
    fn batch_ref_roundtrip() {
        let b = BatchRef {
            requests: vec![
                RequestId {
                    client: ClientId(1),
                    seq: 1,
                },
                RequestId {
                    client: ClientId(2),
                    seq: 9,
                },
            ]
            .into(),
            digest: Digest::new(&[1, 2, 3]),
        };
        assert_eq!(BatchRef::from_bytes(&b.to_bytes()).unwrap(), b);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn digest_display() {
        let d = Digest::new(&[0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03]);
        assert_eq!(d.to_string(), "D(deadbeef0102)");
        assert_eq!(Digest::empty().to_string(), "D()");
    }
}
