//! Deployment topology: replicas, shadows, pairs, coordinator candidates.
//!
//! Mirrors the paper's §2 system model and §4 candidate structure:
//!
//! * **SC** (signal-on-crash, assumptions 3(a)): `2f+1` replica processes
//!   `p_1..p_{2f+1}` of which the first `f` are paired with shadows
//!   `p'_1..p'_f`; total `n = 3f+1`. Candidates are the `f` pairs ranked
//!   first, then one unpaired process `p_{f+1}`.
//! * **SCR** (signal-on-crash-and-recovery, assumptions 3(b)): the first
//!   `f+1` replicas are paired, total `n = 3f+2`; only pairs coordinate
//!   (§4.4: "pf+1 is paired with p'f+1, bringing n = 3f+2").
//!
//! Process indices: replicas are `0..2f+1`; shadows follow, so the shadow
//! of replica `i` is process `2f+1 + i`.

use crate::ids::{ProcessId, Rank, ViewId};

/// Which assumption set (and thus process layout) a deployment uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `{1_after_1, Sync}` — signal-on-crash, `n = 3f+1`.
    Sc,
    /// `{never_2_Fail, PSync}` — signal-on-crash-and-recovery, `n = 3f+2`.
    Scr,
}

/// A coordinator candidate: a pair or (in SC only) the final unpaired
/// process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Candidate {
    /// A replica/shadow pair implementing the signal-on-crash process.
    Pair {
        /// The replica member (`p_c`).
        replica: ProcessId,
        /// The shadow member (`p'_c`).
        shadow: ProcessId,
    },
    /// The unpaired `(f+1)`-th candidate of the SC set-up, trusted
    /// unconditionally once all pairs have fail-signalled (SC2).
    Unpaired(ProcessId),
}

impl Candidate {
    /// The process that proposes orders for this candidate.
    pub fn proposer(&self) -> ProcessId {
        match self {
            Candidate::Pair { replica, .. } => *replica,
            Candidate::Unpaired(p) => *p,
        }
    }

    /// The endorsing shadow, if this candidate is a pair.
    pub fn endorser(&self) -> Option<ProcessId> {
        match self {
            Candidate::Pair { shadow, .. } => Some(*shadow),
            Candidate::Unpaired(_) => None,
        }
    }

    /// True if `p` is a member of this candidate.
    pub fn contains(&self, p: ProcessId) -> bool {
        match self {
            Candidate::Pair { replica, shadow } => *replica == p || *shadow == p,
            Candidate::Unpaired(q) => *q == p,
        }
    }
}

/// The static process layout of one deployment.
///
/// # Examples
///
/// ```
/// use sofb_proto::topology::{Topology, Variant};
/// use sofb_proto::ids::ProcessId;
///
/// let t = Topology::new(2, Variant::Sc);
/// assert_eq!(t.n(), 7);                       // 3f+1
/// assert_eq!(t.replica_count(), 5);           // 2f+1
/// assert_eq!(t.shadow_count(), 2);            // f
/// assert_eq!(t.counterpart(ProcessId(0)), Some(ProcessId(5)));
/// assert_eq!(t.commit_quorum(), 5);           // n - f
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    f: u32,
    variant: Variant,
}

impl Topology {
    /// Builds a topology for resilience `f ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0`.
    pub fn new(f: u32, variant: Variant) -> Self {
        assert!(f >= 1, "f must be at least 1");
        Topology { f, variant }
    }

    /// The resilience parameter.
    pub fn f(&self) -> u32 {
        self.f
    }

    /// The variant (SC or SCR).
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Total process count: `3f+1` (SC) or `3f+2` (SCR).
    pub fn n(&self) -> usize {
        match self.variant {
            Variant::Sc => 3 * self.f as usize + 1,
            Variant::Scr => 3 * self.f as usize + 2,
        }
    }

    /// Number of service replicas (`2f+1`).
    pub fn replica_count(&self) -> usize {
        2 * self.f as usize + 1
    }

    /// Number of shadow processes (`f` for SC, `f+1` for SCR).
    pub fn shadow_count(&self) -> usize {
        match self.variant {
            Variant::Sc => self.f as usize,
            Variant::Scr => self.f as usize + 1,
        }
    }

    /// Number of coordinator candidates (`f+1`).
    pub fn candidate_count(&self) -> u32 {
        self.f + 1
    }

    /// True if `p` hosts a service replica.
    pub fn is_replica(&self, p: ProcessId) -> bool {
        (p.0 as usize) < self.replica_count()
    }

    /// True if `p` is a shadow.
    pub fn is_shadow(&self, p: ProcessId) -> bool {
        let i = p.0 as usize;
        i >= self.replica_count() && i < self.n()
    }

    /// The shadow of replica `r`, if `r` is paired.
    pub fn shadow_of(&self, r: ProcessId) -> Option<ProcessId> {
        if !self.is_replica(r) || (r.0 as usize) >= self.shadow_count() {
            return None;
        }
        Some(ProcessId(self.replica_count() as u32 + r.0))
    }

    /// The replica a shadow checks, if `s` is a shadow.
    pub fn replica_of(&self, s: ProcessId) -> Option<ProcessId> {
        if !self.is_shadow(s) {
            return None;
        }
        Some(ProcessId(s.0 - self.replica_count() as u32))
    }

    /// The paired counterpart of `p` (replica ↔ shadow), if any.
    pub fn counterpart(&self, p: ProcessId) -> Option<ProcessId> {
        if self.is_shadow(p) {
            self.replica_of(p)
        } else {
            self.shadow_of(p)
        }
    }

    /// True if `p` belongs to some pair.
    pub fn is_paired(&self, p: ProcessId) -> bool {
        self.counterpart(p).is_some()
    }

    /// The candidate with 1-based rank `c` (`1 ≤ c ≤ f+1`).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn candidate(&self, c: Rank) -> Candidate {
        assert!(
            c.0 >= 1 && c.0 <= self.candidate_count(),
            "rank out of range"
        );
        let idx = c.0 - 1; // replica index of the candidate
        let replica = ProcessId(idx);
        match self.shadow_of(replica) {
            Some(shadow) => Candidate::Pair { replica, shadow },
            None => {
                debug_assert_eq!(self.variant, Variant::Sc);
                Candidate::Unpaired(replica)
            }
        }
    }

    /// The pair rank `p` belongs to as a *candidate member*, if any.
    pub fn candidate_rank_of(&self, p: ProcessId) -> Option<Rank> {
        for c in 1..=self.candidate_count() {
            if self.candidate(Rank(c)).contains(p) {
                return Some(Rank(c));
            }
        }
        None
    }

    /// SCR view-to-candidate mapping (§4.4): `c = v mod (f+1)`, with 0
    /// mapping to `f+1`.
    pub fn view_candidate(&self, v: ViewId) -> Rank {
        let m = (v.0 % u64::from(self.candidate_count())) as u32;
        if m == 0 {
            Rank(self.candidate_count())
        } else {
            Rank(m)
        }
    }

    /// Commit quorum `n − f` over the *initial* process set.
    pub fn commit_quorum(&self) -> usize {
        self.n() - self.f as usize
    }

    /// All process ids.
    pub fn all(&self) -> impl Iterator<Item = ProcessId> {
        (0..self.n() as u32).map(ProcessId)
    }

    /// All processes except `me` (the usual multicast target set).
    pub fn others(&self, me: ProcessId) -> impl Iterator<Item = ProcessId> {
        (0..self.n() as u32)
            .map(ProcessId)
            .filter(move |p| *p != me)
    }

    /// Effective system size after `k` pairs have been retired as dumb
    /// (§4.3 optimization one: "n ... is reduced by 2 ... and f by 1").
    pub fn effective_n(&self, retired_pairs: u32) -> usize {
        self.n() - 2 * retired_pairs as usize
    }

    /// Effective resilience after `k` pairs have been retired.
    pub fn effective_f(&self, retired_pairs: u32) -> usize {
        (self.f as usize).saturating_sub(retired_pairs as usize)
    }

    /// Commit quorum among non-dumb processes after `k` retired pairs.
    pub fn effective_quorum(&self, retired_pairs: u32) -> usize {
        self.effective_n(retired_pairs) - self.effective_f(retired_pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_layout_f2() {
        let t = Topology::new(2, Variant::Sc);
        assert_eq!(t.n(), 7);
        assert_eq!(t.replica_count(), 5);
        assert_eq!(t.shadow_count(), 2);
        assert_eq!(t.candidate_count(), 3);
        // p0 and p1 are paired with p5 and p6.
        assert_eq!(t.shadow_of(ProcessId(0)), Some(ProcessId(5)));
        assert_eq!(t.shadow_of(ProcessId(1)), Some(ProcessId(6)));
        assert_eq!(t.shadow_of(ProcessId(2)), None);
        assert_eq!(t.replica_of(ProcessId(5)), Some(ProcessId(0)));
        assert_eq!(t.replica_of(ProcessId(2)), None);
        assert!(t.is_replica(ProcessId(4)));
        assert!(t.is_shadow(ProcessId(6)));
        assert!(!t.is_shadow(ProcessId(4)));
    }

    #[test]
    fn scr_layout_f2() {
        let t = Topology::new(2, Variant::Scr);
        assert_eq!(t.n(), 8);
        assert_eq!(t.shadow_count(), 3);
        // All three candidates are pairs in SCR.
        for c in 1..=3 {
            assert!(matches!(t.candidate(Rank(c)), Candidate::Pair { .. }));
        }
        assert_eq!(t.shadow_of(ProcessId(2)), Some(ProcessId(7)));
    }

    #[test]
    fn sc_candidates_ranked_pairs_then_unpaired() {
        let t = Topology::new(2, Variant::Sc);
        assert_eq!(
            t.candidate(Rank(1)),
            Candidate::Pair {
                replica: ProcessId(0),
                shadow: ProcessId(5)
            }
        );
        assert_eq!(
            t.candidate(Rank(2)),
            Candidate::Pair {
                replica: ProcessId(1),
                shadow: ProcessId(6)
            }
        );
        assert_eq!(t.candidate(Rank(3)), Candidate::Unpaired(ProcessId(2)));
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn candidate_rank_validated() {
        Topology::new(1, Variant::Sc).candidate(Rank(3));
    }

    #[test]
    fn counterpart_is_symmetric() {
        for variant in [Variant::Sc, Variant::Scr] {
            let t = Topology::new(3, variant);
            for p in t.all() {
                if let Some(q) = t.counterpart(p) {
                    assert_eq!(t.counterpart(q), Some(p), "{p} <-> {q}");
                }
            }
        }
    }

    #[test]
    fn view_candidate_mapping() {
        let t = Topology::new(2, Variant::Scr); // f+1 = 3 candidates
        assert_eq!(t.view_candidate(ViewId(1)), Rank(1));
        assert_eq!(t.view_candidate(ViewId(2)), Rank(2));
        assert_eq!(t.view_candidate(ViewId(3)), Rank(3)); // 3 mod 3 = 0 -> f+1
        assert_eq!(t.view_candidate(ViewId(4)), Rank(1));
    }

    #[test]
    fn quorums() {
        let t = Topology::new(2, Variant::Sc);
        assert_eq!(t.commit_quorum(), 5);
        assert_eq!(t.effective_n(1), 5);
        assert_eq!(t.effective_f(1), 1);
        assert_eq!(t.effective_quorum(1), 4);
        assert_eq!(t.effective_quorum(2), 3);
    }

    #[test]
    fn candidate_rank_of_members() {
        let t = Topology::new(2, Variant::Sc);
        assert_eq!(t.candidate_rank_of(ProcessId(0)), Some(Rank(1)));
        assert_eq!(t.candidate_rank_of(ProcessId(5)), Some(Rank(1)));
        assert_eq!(t.candidate_rank_of(ProcessId(2)), Some(Rank(3)));
        assert_eq!(t.candidate_rank_of(ProcessId(3)), None);
        assert_eq!(t.candidate_rank_of(ProcessId(4)), None);
    }

    #[test]
    fn others_excludes_self() {
        let t = Topology::new(1, Variant::Sc);
        let others: Vec<ProcessId> = t.others(ProcessId(1)).collect();
        assert_eq!(others.len(), t.n() - 1);
        assert!(!others.contains(&ProcessId(1)));
    }

    #[test]
    #[should_panic(expected = "f must be at least 1")]
    fn zero_f_rejected() {
        Topology::new(0, Variant::Sc);
    }
}
