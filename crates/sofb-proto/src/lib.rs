//! # sofb-proto — shared protocol types
//!
//! Types common to the SC/SCR protocols ([`sofb-core`]), the BFT baseline,
//! the CT baseline and the application layer:
//!
//! * [`ids`] — typed identifiers (`ProcessId`, `Rank`, `SeqNo`, `ViewId`);
//! * [`topology`] — the §2 process layout: replicas, shadows, pairs,
//!   coordinator candidates, effective quorums under the dumb-process
//!   optimization;
//! * [`request`] — client requests, request ids, batches and digests;
//! * [`codec`] — the canonical binary encoding signatures are computed
//!   over;
//! * [`signed`] — singly- and doubly-signed envelopes (§3's endorsement
//!   format).
//!
//! [`sofb-core`]: ../sofb_core/index.html
//!
//! # Examples
//!
//! ```
//! use sofb_proto::topology::{Topology, Variant};
//! use sofb_proto::ids::Rank;
//!
//! let t = Topology::new(2, Variant::Sc);
//! let c1 = t.candidate(Rank::FIRST);
//! assert!(c1.endorser().is_some(), "first candidate is a pair");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backlog;
pub mod codec;
pub mod fasthash;
pub mod ids;
pub mod pool;
pub mod request;
pub mod signed;
pub mod topology;

pub use codec::{CodecError, Decode, Decoder, Encode, Encoder};
pub use ids::{ClientId, ProcessId, Rank, SeqNo, ViewId};
pub use pool::{BufPool, PooledBuf};
pub use request::{BatchRef, Digest, Request, RequestId};
pub use signed::{DoublySigned, Signed};
pub use topology::{Candidate, Topology, Variant};
