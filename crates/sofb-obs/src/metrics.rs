//! Named metrics: a live registry for the wall-clock runtime and a
//! deterministic snapshot that rides in simulation reports.
//!
//! The registry side ([`MetricsRegistry`]) is thread-safe and cheap to
//! update: handles are `Arc<AtomicU64>` so hot loops touch no locks. The
//! snapshot side ([`MetricsSnapshot`]) is a plain sorted map of values;
//! simulation code usually builds snapshots directly (one per engine) and
//! merges them with [`MetricsSnapshot::absorb`], mirroring how
//! `NodeStats::absorb` rolls node counters up across shards.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One scraped metric value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic count; merges by summing.
    Counter(u64),
    /// Point-in-time level; merges by taking the max.
    Gauge(f64),
    /// Distribution summary; merges component-wise.
    Summary {
        /// Number of observations.
        count: u64,
        /// Sum of all observations.
        sum: u64,
        /// Smallest observation (meaningless when `count == 0`).
        min: u64,
        /// Largest observation.
        max: u64,
    },
}

impl MetricValue {
    fn absorb(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                if *b > *a {
                    *a = *b;
                }
            }
            (
                MetricValue::Summary {
                    count,
                    sum,
                    min,
                    max,
                },
                MetricValue::Summary {
                    count: c2,
                    sum: s2,
                    min: m2,
                    max: x2,
                },
            ) => {
                if *count == 0 || (*c2 > 0 && *m2 < *min) {
                    *min = *m2;
                }
                *count += c2;
                *sum += s2;
                if *x2 > *max {
                    *max = *x2;
                }
            }
            // Mixed kinds under one name is a programming error; keep the
            // left value rather than panicking inside a report merge.
            (_, _) => {}
        }
    }
}

/// A deterministic, mergeable scrape of named metrics. Iteration order is
/// the sorted name order (`BTreeMap`), so rendering is stable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a counter value, replacing any previous entry.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.entries
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Set a gauge value, replacing any previous entry.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.entries
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Insert a pre-built value under `name`.
    pub fn set(&mut self, name: &str, value: MetricValue) {
        self.entries.insert(name.to_string(), value);
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Look up any value by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Iterate entries in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge `other` into `self`: counters sum, gauges max, summaries
    /// merge component-wise. Names only in `other` are copied over.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.entries {
            match self.entries.get_mut(name) {
                Some(mine) => mine.absorb(value),
                None => {
                    self.entries.insert(name.clone(), *value);
                }
            }
        }
    }

    /// Render as a deterministic JSON object, names sorted. Gauges print
    /// with up to three decimal places (trailing zeros trimmed), so the
    /// output is byte-stable for equal inputs.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            match value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => out.push_str(&render_f64(*v)),
                MetricValue::Summary {
                    count,
                    sum,
                    min,
                    max,
                } => {
                    out.push_str(&format!(
                        "{{\"count\":{count},\"sum\":{sum},\"min\":{min},\"max\":{max}}}"
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

/// Fixed-point rendering of a gauge: up to 3 decimals, trimmed.
fn render_f64(v: f64) -> String {
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

/// Handle to a registered counter; clone-cheap, lock-free to update.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a registered gauge; stores f64 bits in an atomic.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct HistogramState {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Handle to a registered histogram (summary-only: count/sum/min/max —
/// enough for rate and mean derivations without bucket bookkeeping).
#[derive(Clone, Debug)]
pub struct HistogramHandle(Arc<Mutex<HistogramState>>);

impl HistogramHandle {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let mut st = self.0.lock().expect("histogram lock");
        if st.count == 0 || v < st.min {
            st.min = v;
        }
        if v > st.max {
            st.max = v;
        }
        st.count += 1;
        st.sum += v;
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<Mutex<HistogramState>>>,
}

/// A live, thread-safe registry of named metrics for the wall-clock
/// runtime (`sofb serve --profile`). Registration takes a lock; updates
/// through the returned handles do not.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry lock");
        let cell = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// Register (or look up) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry lock");
        let cell = inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
        Gauge(Arc::clone(cell))
    }

    /// Register (or look up) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut inner = self.inner.lock().expect("registry lock");
        let cell = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(HistogramState::default())));
        HistogramHandle(Arc::clone(cell))
    }

    /// Scrape every registered metric into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry lock");
        let mut snap = MetricsSnapshot::new();
        for (name, cell) in &inner.counters {
            snap.set_counter(name, cell.load(Ordering::Relaxed));
        }
        for (name, cell) in &inner.gauges {
            snap.set_gauge(name, f64::from_bits(cell.load(Ordering::Relaxed)));
        }
        for (name, cell) in &inner.histograms {
            let st = cell.lock().expect("histogram lock");
            snap.set(
                name,
                MetricValue::Summary {
                    count: st.count,
                    sum: st.sum,
                    min: st.min,
                    max: st.max,
                },
            );
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_handles_update_and_scrape() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        reg.gauge("depth").set(2.5);
        let h = reg.histogram("lat");
        h.observe(10);
        h.observe(30);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits"), Some(5));
        assert_eq!(snap.get("depth"), Some(&MetricValue::Gauge(2.5)));
        assert_eq!(
            snap.get("lat"),
            Some(&MetricValue::Summary {
                count: 2,
                sum: 40,
                min: 10,
                max: 30
            })
        );
        // Re-registering the same name returns the same cell.
        reg.counter("hits").inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn snapshot_absorb_merges_by_kind() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("n", 2);
        a.set_gauge("g", 1.0);
        a.set(
            "h",
            MetricValue::Summary {
                count: 1,
                sum: 5,
                min: 5,
                max: 5,
            },
        );
        let mut b = MetricsSnapshot::new();
        b.set_counter("n", 3);
        b.set_gauge("g", 0.5);
        b.set(
            "h",
            MetricValue::Summary {
                count: 2,
                sum: 4,
                min: 1,
                max: 3,
            },
        );
        b.set_counter("only_b", 7);
        a.absorb(&b);
        assert_eq!(a.counter("n"), Some(5));
        assert_eq!(a.get("g"), Some(&MetricValue::Gauge(1.0)));
        assert_eq!(
            a.get("h"),
            Some(&MetricValue::Summary {
                count: 3,
                sum: 9,
                min: 1,
                max: 5
            })
        );
        assert_eq!(a.counter("only_b"), Some(7));
    }

    #[test]
    fn render_json_is_sorted_and_stable() {
        let mut s = MetricsSnapshot::new();
        s.set_counter("b", 1);
        s.set_gauge("a", 1.25);
        s.set(
            "c",
            MetricValue::Summary {
                count: 1,
                sum: 2,
                min: 2,
                max: 2,
            },
        );
        let json = s.render_json();
        assert_eq!(
            json,
            "{\"a\":1.25,\"b\":1,\"c\":{\"count\":1,\"sum\":2,\"min\":2,\"max\":2}}"
        );
        assert!(crate::json::parse(&json).is_ok());
    }
}
