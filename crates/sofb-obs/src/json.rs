//! Minimal recursive-descent JSON parser, used to self-validate exporter
//! output (the `sofb trace` CLI refuses to write a document it cannot
//! parse back) and by tests that inspect rendered traces.
//!
//! Supports the full JSON grammar except `\uXXXX` surrogate pairs are
//! decoded leniently (unpaired surrogates become U+FFFD). Not a general
//! serde replacement — just enough to parse what this workspace emits.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is sorted (duplicate keys keep the last).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        text: input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            out.push(char::from_u32(u32::from(code)).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. The input is a
                    // `&str` and `pos` only ever advances by whole scalars,
                    // so `pos` sits on a char boundary and this O(1) slice
                    // never panics. (Decoding via `from_utf8` on the full
                    // remaining input would re-validate O(n) bytes per
                    // character — quadratic on large documents.)
                    let ch = self.text[self.pos..].chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let mut code: u16 = 0;
        for _ in 0..4 {
            let d = self.peek().and_then(|c| (c as char).to_digit(16));
            match d {
                Some(d) => {
                    code = code * 16 + d as u16;
                    self.pos += 1;
                }
                None => return Err(self.err("bad \\u escape")),
            }
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            at: start,
            message: "bad number".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":"x\ny","c":null,"d":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("  {} ").unwrap(), Value::Obj(BTreeMap::new()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01abc").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".to_string()));
    }
}
