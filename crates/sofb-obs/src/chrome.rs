//! Chrome trace-event JSON exporter (the format Perfetto's
//! `ui.perfetto.dev` opens directly).
//!
//! Layout: one *process* per node (`pid` = node index) with two *thread*
//! lanes — `tid 1` for engine records (dispatch spans, deliver/fault
//! instants) and `tid 2` for protocol records (phase spans, milestones).
//! Causal `parent` links render as flow arrows (`ph:"s"`/`ph:"f"`).
//!
//! Determinism: timestamps are nanoseconds rendered as exact microsecond
//! decimal text (`{ns/1000}.{ns%1000:03}`) — never `f64` formatting — so
//! equal record streams produce byte-identical JSON.

use crate::trace::{fnv1a, SpanRef, TraceKind, TraceRecord};

/// Lane ids inside each per-node process.
const TID_ENGINE: u32 = 1;
const TID_PROTOCOL: u32 = 2;

fn lane(kind: TraceKind) -> u32 {
    match kind {
        TraceKind::Dispatch | TraceKind::Deliver | TraceKind::Fault => TID_ENGINE,
        TraceKind::Phase | TraceKind::Milestone => TID_PROTOCOL,
    }
}

/// Exact microsecond text for a nanosecond timestamp.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_event(out: &mut String, first: &mut bool, body: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(body);
}

/// Render a record stream as a Chrome trace-event JSON document.
///
/// Emits, in order: metadata naming each node's process and its two
/// lanes, then per input record a `"X"` complete event (spans) or `"i"`
/// instant event, then one `"s"`/`"f"` flow pair per causal `parent`
/// link. Output order is a pure function of input order, and every
/// number is integer-rendered, so the bytes are deterministic.
pub fn render(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(256 + records.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;

    // Metadata: name each node's track. Nodes sorted, deduplicated.
    let mut nodes: Vec<usize> = records.iter().map(|r| r.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for node in &nodes {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":0,\
                 \"args\":{{\"name\":\"node {node}\"}}}}"
            ),
        );
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":{TID_ENGINE},\
                 \"args\":{{\"name\":\"engine\"}}}}"
            ),
        );
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{node},\"tid\":{TID_PROTOCOL},\
                 \"args\":{{\"name\":\"protocol\"}}}}"
            ),
        );
    }

    for rec in records {
        let tid = lane(rec.kind);
        let ts = us(rec.time_ns);
        let mut body = String::with_capacity(160);
        body.push_str("{\"name\":\"");
        push_escaped(&mut body, &rec.name);
        body.push_str("\",\"cat\":\"");
        body.push_str(rec.kind.label());
        body.push('"');
        if rec.dur_ns > 0 {
            body.push_str(&format!(",\"ph\":\"X\",\"dur\":{}", us(rec.dur_ns)));
        } else {
            body.push_str(",\"ph\":\"i\",\"s\":\"t\"");
        }
        body.push_str(&format!(
            ",\"ts\":{ts},\"pid\":{},\"tid\":{tid},\"args\":{{\"seq\":{},\"id\":{}}}}}",
            rec.node,
            rec.seq,
            rec.self_ref().id()
        ));
        push_event(&mut out, &mut first, &body);

        if let Some(parent) = &rec.parent {
            let edge = flow_id(parent, &rec.self_ref());
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{edge},\
                     \"ts\":{},\"pid\":{},\"tid\":{TID_PROTOCOL}}}",
                    us(parent.time_ns),
                    parent.node
                ),
            );
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\
                     \"id\":{edge},\"ts\":{ts},\"pid\":{},\"tid\":{tid}}}",
                    rec.node
                ),
            );
        }
    }

    out.push_str("\n]}\n");
    out
}

/// Deterministic flow-arrow id for a causal edge.
fn flow_id(parent: &SpanRef, child: &SpanRef) -> u64 {
    fnv1a(&[parent.id(), child.id()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn span(node: usize, seq: u64, name: &str, parent: Option<SpanRef>) -> TraceRecord {
        TraceRecord {
            time_ns: 1_500 + seq,
            dur_ns: 250,
            seq,
            node,
            kind: TraceKind::Phase,
            name: name.to_string(),
            parent,
        }
    }

    #[test]
    fn render_is_valid_json_and_deterministic() {
        let order = span(0, 0, "order", None);
        let commit = span(1, 1, "commit", Some(order.self_ref()));
        let recs = vec![
            order,
            commit,
            TraceRecord {
                time_ns: 900,
                dur_ns: 0,
                seq: 2,
                node: 1,
                kind: TraceKind::Fault,
                name: "crash".to_string(),
                parent: None,
            },
        ];
        let a = render(&recs);
        let b = render(&recs);
        assert_eq!(a, b);
        let doc = json::parse(&a).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // 2 nodes * 3 metadata + 3 records + 1 flow pair = 11 events.
        assert_eq!(events.len(), 11);
        // Timestamps render as exact microsecond text.
        assert!(a.contains("\"ts\":1.500"));
        assert!(a.contains("\"ts\":0.900"));
    }

    #[test]
    fn escapes_names() {
        let mut r = span(0, 0, "we\"ird\\name", None);
        r.dur_ns = 0;
        let out = render(&[r]);
        assert!(json::parse(&out).is_ok());
        assert!(out.contains("we\\\"ird\\\\name"));
    }
}
