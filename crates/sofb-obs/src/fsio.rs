//! Atomic file writes: write to a sibling temp file, then rename over
//! the target. An interrupted run leaves either the old contents or
//! nothing — never a truncated artifact that `--check`/`--replay` would
//! then mis-diagnose.

use std::io;
use std::path::Path;

/// Write `bytes` to `path` atomically (temp file + rename).
///
/// The temp file lives next to the target (same filesystem, so the
/// rename is atomic) and its name includes the process id so concurrent
/// writers of *different* targets never collide. On any error the temp
/// file is removed and the target is untouched.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!("{}.tmp.{}", file_name.to_string_lossy(), std::process::id());
    let tmp_path = match dir {
        Some(dir) => dir.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    if let Err(e) = std::fs::write(&tmp_path, bytes) {
        let _ = std::fs::remove_file(&tmp_path);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp_path, path) {
        let _ = std::fs::remove_file(&tmp_path);
        return Err(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join(format!("sofb_obs_fsio_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("out.json");
        write_atomic(&target, b"first").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"first");
        write_atomic(&target, b"second").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"second");
        // No temp litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_parent_fails_cleanly() {
        let bogus = std::env::temp_dir()
            .join(format!("sofb_obs_missing_{}", std::process::id()))
            .join("deep")
            .join("out.json");
        assert!(write_atomic(&bogus, b"x").is_err());
    }
}
