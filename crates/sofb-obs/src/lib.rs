//! # sofb-obs — deterministic observability for the sofbyz stack
//!
//! A dependency-free tracing and metrics layer shared by the simulator
//! (`sofb-sim`), the experiment harness (`sofb-harness`), and the live
//! runtime. Everything it produces is deterministic: span ids are pure
//! functions of `(time, seq, node)`, exporters render integers as exact
//! decimal text, and snapshots roll up with commutative merges — so a
//! trace of a deterministic run is itself a golden artifact, bit-identical
//! across `world_workers` counts.
//!
//! # Quickstart
//!
//! Record a couple of spans into a [`MemSink`] and export them as Chrome
//! trace-event JSON (loadable at `ui.perfetto.dev`):
//!
//! ```
//! use sofb_obs::{chrome, MemSink, TraceConfig, TraceKind, TraceRecord, TraceSink};
//!
//! let mut sink = MemSink::new(TraceConfig::default());
//! let order = TraceRecord {
//!     time_ns: 1_000,
//!     dur_ns: 500,
//!     seq: 0,
//!     node: 0,
//!     kind: TraceKind::Phase,
//!     name: "order".to_string(),
//!     parent: None,
//! };
//! let mut commit = TraceRecord {
//!     time_ns: 2_000,
//!     dur_ns: 700,
//!     seq: 1,
//!     node: 1,
//!     kind: TraceKind::Phase,
//!     name: "commit".to_string(),
//!     parent: Some(order.self_ref()), // causal link, rendered as a flow arrow
//! };
//! sink.record(order);
//! sink.record(commit.clone());
//! commit.node = 2;
//! sink.record(commit);
//!
//! let json = chrome::render(&sink.drain());
//! assert!(sofb_obs::json::parse(&json).is_ok());
//! ```
//!
//! Count things with the registry and scrape a deterministic snapshot:
//!
//! ```
//! use sofb_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let served = reg.counter("requests_served");
//! served.add(3);
//! reg.histogram("latency_ns").observe(250);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("requests_served"), Some(3));
//! ```
//!
//! The crate deliberately has no dependencies (not even the workspace
//! shims) so it can sit below `sofb-sim` in the crate graph and be
//! compiled into the zero-alloc hot path: when no sink is installed the
//! only cost is an `Option::is_some` check per hook site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod fsio;
pub mod json;
pub mod metrics;
pub mod summary;
pub mod trace;

pub use fsio::write_atomic;
pub use metrics::{MetricValue, MetricsRegistry, MetricsSnapshot};
pub use trace::{
    debug_label, MemSink, NullSink, SpanRef, TraceConfig, TraceKind, TraceRecord, TraceSink,
};
