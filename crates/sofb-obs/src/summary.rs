//! Human-readable trace summary: record counts and total busy time per
//! `(kind, name)` group, one aligned line each.

use std::collections::BTreeMap;

use crate::trace::TraceRecord;

/// Render a deterministic per-`(kind, name)` summary table.
///
/// Groups are sorted by kind label then name; each line shows the record
/// count and the summed span duration in microseconds. Instants
/// contribute zero duration.
pub fn render(records: &[TraceRecord]) -> String {
    let mut groups: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
    for rec in records {
        let entry = groups
            .entry((rec.kind.label().to_string(), rec.name.clone()))
            .or_insert((0, 0));
        entry.0 += 1;
        entry.1 += rec.dur_ns;
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<24} {:>10} {:>14}\n",
        "kind", "name", "records", "busy_us"
    ));
    for ((kind, name), (count, busy_ns)) in &groups {
        out.push_str(&format!(
            "{:<10} {:<24} {:>10} {:>10}.{:03}\n",
            kind,
            name,
            count,
            busy_ns / 1000,
            busy_ns % 1000
        ));
    }
    out.push_str(&format!("total records: {}\n", records.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;

    #[test]
    fn groups_and_sums() {
        let mk = |name: &str, dur: u64| TraceRecord {
            time_ns: 0,
            dur_ns: dur,
            seq: 0,
            node: 0,
            kind: TraceKind::Dispatch,
            name: name.to_string(),
            parent: None,
        };
        let out = render(&[mk("Ack", 1_500), mk("Ack", 500), mk("Prepare", 100)]);
        assert!(out.contains("Ack"));
        assert!(out.contains("2")); // Ack count
        assert!(out.contains("2.000")); // Ack busy in us
        assert!(out.contains("total records: 3"));
    }
}
