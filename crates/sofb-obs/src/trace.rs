//! Span and event records, the sink trait the engine emits into, and the
//! trace filter configured by a spec's `[trace]` section.
//!
//! The determinism contract: a record's identity ([`SpanRef`] and the id
//! derived from it) is a pure function of `(time_ns, seq, node)` in the
//! *global* (merged) node numbering. Shard engines record with local node
//! indices and the harness restamps them to `shard * n + local`, exactly
//! like protocol events, so traces from parallel shard execution are
//! bit-identical to single-worker runs.

use std::fmt;

/// A stable reference to a span: the deterministic coordinates it was
/// recorded at. Used both as a span's own identity and as the causal
/// `parent` link of another record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanRef {
    /// Start time of the span in sim (or wall) nanoseconds.
    pub time_ns: u64,
    /// Disambiguating sequence number for records sharing a timestamp.
    /// Engine records use the processed-event ordinal; harness phase
    /// records use the protocol sequence number or event index.
    pub seq: u64,
    /// Global node index that recorded the span.
    pub node: usize,
}

impl SpanRef {
    /// Deterministic 64-bit id: FNV-1a over `(time_ns, seq, node)`.
    ///
    /// No randomness, no global counters — the same logical span gets the
    /// same id in every run and under every `world_workers` count.
    pub fn id(&self) -> u64 {
        fnv1a(&[self.time_ns, self.seq, self.node as u64])
    }
}

/// FNV-1a over the little-endian bytes of each word.
pub(crate) fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// What layer of the stack a record came from. The set is closed on
/// purpose: exporters map each kind to a fixed track/lane, and filters
/// treat the high-volume kinds ([`Dispatch`](TraceKind::Dispatch),
/// [`Deliver`](TraceKind::Deliver)) specially when sampling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Engine: an actor callback ran (span; `dur_ns` = CPU service time).
    Dispatch,
    /// Engine: the network handed a message to a node (instant).
    Deliver,
    /// Engine: a fault fired — crash, mute drop (instant).
    Fault,
    /// Harness: a protocol phase — order, commit (span, causally linked).
    Phase,
    /// Harness: a protocol milestone — view change, checkpoint (instant).
    Milestone,
}

impl TraceKind {
    /// Stable lower-case label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Dispatch => "dispatch",
            TraceKind::Deliver => "deliver",
            TraceKind::Fault => "fault",
            TraceKind::Phase => "phase",
            TraceKind::Milestone => "milestone",
        }
    }
}

/// One trace record: a span if `dur_ns > 0`, an instant event otherwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Start time in nanoseconds (sim time in the simulator, wall time in
    /// the live runtime).
    pub time_ns: u64,
    /// Duration in nanoseconds; `0` renders as an instant event.
    pub dur_ns: u64,
    /// Sequence number disambiguating same-timestamp records; see
    /// [`SpanRef::seq`].
    pub seq: u64,
    /// Global node index the record belongs to (one exporter track each).
    pub node: usize,
    /// Which layer emitted the record.
    pub kind: TraceKind,
    /// Human-readable name: message variant for dispatches, phase name
    /// for protocol spans, fault label for instants.
    pub name: String,
    /// Causal parent, if any — rendered as a Perfetto flow arrow.
    pub parent: Option<SpanRef>,
}

impl TraceRecord {
    /// The [`SpanRef`] other records use to name this one as a parent.
    pub fn self_ref(&self) -> SpanRef {
        SpanRef {
            time_ns: self.time_ns,
            seq: self.seq,
            node: self.node,
        }
    }
}

/// Where the engine sends trace records. The engine holds an
/// `Option<Box<dyn TraceSink>>`; with `None` installed every hook site
/// reduces to a branch on `Option::is_some`, which keeps the zero-alloc
/// hot path zero-alloc (proved by `zero_alloc.rs` in `sofb-sim`).
pub trait TraceSink {
    /// Accept one record. Sinks may drop it (filtering, sampling).
    fn record(&mut self, rec: TraceRecord);
    /// Take all records accepted so far, leaving the sink empty.
    fn drain(&mut self) -> Vec<TraceRecord> {
        Vec::new()
    }
}

/// A sink that drops everything. Useful to measure tracing overhead.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: TraceRecord) {}
}

/// Filter configured by a spec's `[trace]` section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch; `false` drops everything.
    pub enabled: bool,
    /// Keep only these global node indices (`None` = all nodes).
    pub nodes: Option<Vec<usize>>,
    /// Keep only records whose `name` is listed (`None` = all names).
    /// Matches phase names (`order`, `commit`), message variants, and
    /// fault labels alike.
    pub phases: Option<Vec<String>>,
    /// Keep every `sample`-th high-volume record (`Dispatch`/`Deliver`,
    /// keyed on `seq % sample == 0`). Phases, faults, and milestones are
    /// always kept. `1` keeps everything.
    pub sample: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            nodes: None,
            phases: None,
            sample: 1,
        }
    }
}

impl TraceConfig {
    /// Does this record pass the filter?
    pub fn keep(&self, rec: &TraceRecord) -> bool {
        if !self.enabled {
            return false;
        }
        if let Some(nodes) = &self.nodes {
            if !nodes.contains(&rec.node) {
                return false;
            }
        }
        if let Some(phases) = &self.phases {
            if !phases.iter().any(|p| p == &rec.name) {
                return false;
            }
        }
        if self.sample > 1 && matches!(rec.kind, TraceKind::Dispatch | TraceKind::Deliver) {
            return rec.seq.is_multiple_of(self.sample);
        }
        true
    }
}

/// An in-memory sink applying a [`TraceConfig`] filter on the way in.
#[derive(Debug, Default)]
pub struct MemSink {
    config: TraceConfig,
    records: Vec<TraceRecord>,
}

impl MemSink {
    /// A sink filtering through `config`.
    pub fn new(config: TraceConfig) -> Self {
        MemSink {
            config,
            records: Vec::new(),
        }
    }
}

impl TraceSink for MemSink {
    fn record(&mut self, rec: TraceRecord) {
        if self.config.keep(&rec) {
            self.records.push(rec);
        }
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }
}

/// The leading identifier of a value's `Debug` rendering — for an enum,
/// its variant name. Used to label dispatch spans with the message
/// variant without requiring a naming trait on every message type.
/// Allocates, so call it only when a sink is installed.
pub fn debug_label<T: fmt::Debug>(value: &T) -> String {
    let s = format!("{value:?}");
    let end = s
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(s.len());
    if end == 0 {
        "msg".to_string()
    } else {
        s[..end].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: usize, seq: u64, kind: TraceKind, name: &str) -> TraceRecord {
        TraceRecord {
            time_ns: 100 * seq,
            dur_ns: 0,
            seq,
            node,
            kind,
            name: name.to_string(),
            parent: None,
        }
    }

    #[test]
    fn span_ids_are_deterministic_and_distinct() {
        let a = SpanRef {
            time_ns: 5,
            seq: 1,
            node: 2,
        };
        let b = SpanRef {
            time_ns: 5,
            seq: 1,
            node: 2,
        };
        let c = SpanRef {
            time_ns: 5,
            seq: 1,
            node: 3,
        };
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_ne!(
            a.id(),
            SpanRef {
                time_ns: 5,
                seq: 2,
                node: 2
            }
            .id()
        );
        assert_ne!(
            a.id(),
            SpanRef {
                time_ns: 6,
                seq: 1,
                node: 2
            }
            .id()
        );
    }

    #[test]
    fn config_filters_nodes_names_and_samples() {
        let cfg = TraceConfig {
            enabled: true,
            nodes: Some(vec![0, 2]),
            phases: None,
            sample: 2,
        };
        assert!(cfg.keep(&rec(0, 0, TraceKind::Dispatch, "x")));
        assert!(
            !cfg.keep(&rec(1, 0, TraceKind::Dispatch, "x")),
            "node filtered"
        );
        assert!(
            !cfg.keep(&rec(0, 1, TraceKind::Dispatch, "x")),
            "sampled out"
        );
        assert!(
            cfg.keep(&rec(2, 1, TraceKind::Phase, "commit")),
            "phases never sampled"
        );

        let named = TraceConfig {
            phases: Some(vec!["commit".to_string()]),
            ..TraceConfig::default()
        };
        assert!(named.keep(&rec(0, 0, TraceKind::Phase, "commit")));
        assert!(!named.keep(&rec(0, 0, TraceKind::Phase, "order")));

        assert!(!TraceConfig {
            enabled: false,
            ..TraceConfig::default()
        }
        .keep(&rec(0, 0, TraceKind::Phase, "commit")));
    }

    #[test]
    fn mem_sink_applies_filter_and_drains() {
        let mut sink = MemSink::new(TraceConfig {
            nodes: Some(vec![1]),
            ..TraceConfig::default()
        });
        sink.record(rec(0, 0, TraceKind::Deliver, "deliver"));
        sink.record(rec(1, 1, TraceKind::Deliver, "deliver"));
        let out = sink.drain();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].node, 1);
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn debug_label_extracts_variant_names() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum M {
            PrePrepare { o: u64 },
            Ack(u8),
        }
        assert_eq!(debug_label(&M::PrePrepare { o: 3 }), "PrePrepare");
        assert_eq!(debug_label(&M::Ack(1)), "Ack");
        assert_eq!(debug_label(&42u32), "42");
    }
}
