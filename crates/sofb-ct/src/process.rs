//! The CT replica: 1→n order, n→n ack, commit on `n−f`.

use std::collections::{BTreeMap, HashSet};

use sofb_proto::backlog::RequestBacklog;
use sofb_proto::fasthash::IdHashMap;
use sofb_proto::ids::{ProcessId, Rank, SeqNo};
use sofb_proto::request::{BatchRef, Digest, Request, RequestId};
use sofb_sim::engine::{Actor, Ctx};
use sofb_sim::time::{SimDuration, SimTime};

use sofb_core::events::ScEvent;
use sofb_crypto::digest::DigestAlg;

use crate::messages::{CtMsg, CtOrder};

const TIMER_BATCH: u64 = 1;

/// Configuration of one CT replica.
#[derive(Clone, Debug)]
pub struct CtConfig {
    /// Resilience (n = 2f+1; crash faults only).
    pub f: u32,
    /// This replica's index (0-based); replica 0 coordinates.
    pub me: u32,
    /// Batching interval.
    pub batching_interval: SimDuration,
    /// Maximum batch payload bytes.
    pub batch_max_bytes: usize,
}

impl CtConfig {
    /// Defaults for replica `me` with resilience `f`.
    pub fn new(f: u32, me: u32) -> Self {
        CtConfig {
            f,
            me,
            batching_interval: SimDuration::from_ms(100),
            batch_max_bytes: 1024,
        }
    }

    /// Total replicas (`2f+1`).
    pub fn n(&self) -> usize {
        2 * self.f as usize + 1
    }

    /// Commit quorum (`n−f = f+1`).
    pub fn quorum(&self) -> usize {
        self.n() - self.f as usize
    }
}

#[derive(Default)]
struct Slot {
    order: Option<CtOrder>,
    ackers: HashSet<ProcessId>,
    acked: bool,
    committed: bool,
}

/// One CT replica.
pub struct CtProcess {
    cfg: CtConfig,
    next_propose: SeqNo,
    next_to_ack: SeqNo,
    requests: IdHashMap<RequestId, Request>,
    backlog: RequestBacklog<SimTime>,
    slots: BTreeMap<SeqNo, Slot>,
}

impl CtProcess {
    /// Creates a replica.
    pub fn new(cfg: CtConfig) -> Self {
        CtProcess {
            cfg,
            next_propose: SeqNo(1),
            next_to_ack: SeqNo(1),
            requests: IdHashMap::default(),
            backlog: RequestBacklog::new(),
            slots: BTreeMap::new(),
        }
    }

    fn i_am_coordinator(&self) -> bool {
        self.cfg.me == 0
    }

    fn multicast(&self, ctx: &mut Ctx<'_, CtMsg, ScEvent>, msg: CtMsg) {
        for p in 0..self.cfg.n() {
            ctx.send(p, msg.clone());
        }
    }

    fn on_request(&mut self, req: Request, ctx: &mut Ctx<'_, CtMsg, ScEvent>) {
        if self.requests.contains_key(&req.id) {
            return;
        }
        let id = req.id;
        self.requests.insert(id, req);
        self.backlog.note(id, ctx.now());
    }

    fn propose_batch(&mut self, ctx: &mut Ctx<'_, CtMsg, ScEvent>) {
        if !self.i_am_coordinator() {
            return;
        }
        let mut members: Vec<RequestId> = Vec::new();
        let mut bytes = 0usize;
        while let Some((id, _)) = self.backlog.front() {
            let Some(req) = self.requests.get(&id) else {
                self.backlog.pop_front();
                continue;
            };
            if self.backlog.is_ordered(&id) {
                self.backlog.pop_front();
                continue;
            }
            let len = req.payload.len();
            if !members.is_empty() && bytes + len > self.cfg.batch_max_bytes {
                break;
            }
            members.push(id);
            bytes += len;
            self.backlog.pop_front();
            if bytes >= self.cfg.batch_max_bytes {
                break;
            }
        }
        if members.is_empty() {
            return;
        }
        // Latency origin: the batch tick's fire instant (see sofb-core).
        let formed_at_ns = ctx.fired_at().unwrap_or(ctx.now()).as_ns();
        // CT uses a plain (uncharged) content identifier: the paper's CT
        // incurs no cryptographic overhead, so the simulator bills nothing
        // for this digest.
        let refs: Vec<&Request> = members.iter().map(|id| &self.requests[id]).collect();
        let digest = Digest::new(&DigestAlg::Sha256.digest(&BatchRef::digest_input(&refs)));
        let o = self.next_propose;
        self.next_propose = o.next();
        self.backlog.mark_ordered(members.iter().copied());
        let order = CtOrder {
            o,
            batch: BatchRef {
                requests: members.into(),
                digest,
            },
            formed_at_ns,
        };
        ctx.emit(ScEvent::OrderProposed {
            o,
            batch_len: order.batch.len(),
            formed_at_ns,
        });
        self.accept_order(order.clone(), ProcessId(0), ctx);
        self.multicast(ctx, CtMsg::Order(order));
    }

    fn accept_order(&mut self, order: CtOrder, from: ProcessId, ctx: &mut Ctx<'_, CtMsg, ScEvent>) {
        let o = order.o;
        self.backlog
            .mark_ordered(order.batch.requests.iter().copied());
        let slot = self.slots.entry(o).or_default();
        if slot.order.is_none() {
            slot.order = Some(order);
        }
        // The coordinator's order counts as its ack.
        slot.ackers.insert(from);
        self.ack_in_sequence(ctx);
        self.try_commit(o, ctx);
    }

    fn ack_in_sequence(&mut self, ctx: &mut Ctx<'_, CtMsg, ScEvent>) {
        let me = ProcessId(self.cfg.me);
        loop {
            let o = self.next_to_ack;
            let Some(slot) = self.slots.get_mut(&o) else {
                return;
            };
            if slot.acked {
                self.next_to_ack = o.next();
                continue;
            }
            let Some(order) = slot.order.clone() else {
                return;
            };
            slot.acked = true;
            slot.ackers.insert(me);
            self.next_to_ack = o.next();
            self.multicast(ctx, CtMsg::Ack(order));
        }
    }

    fn on_ack(&mut self, order: CtOrder, from: ProcessId, ctx: &mut Ctx<'_, CtMsg, ScEvent>) {
        let o = order.o;
        let slot = self.slots.entry(o).or_default();
        if slot.order.is_none() {
            slot.order = Some(order);
        }
        slot.ackers.insert(from);
        self.ack_in_sequence(ctx);
        self.try_commit(o, ctx);
    }

    fn try_commit(&mut self, o: SeqNo, ctx: &mut Ctx<'_, CtMsg, ScEvent>) {
        let quorum = self.cfg.quorum();
        let Some(slot) = self.slots.get_mut(&o) else {
            return;
        };
        if slot.committed || slot.order.is_none() || slot.ackers.len() < quorum {
            return;
        }
        slot.committed = true;
        let order = slot.order.as_ref().expect("checked");
        ctx.emit(ScEvent::Committed {
            c: Rank(1),
            o,
            digest: order.batch.digest,
            requests: order.batch.len(),
            request_ids: order.batch.requests.clone(),
            formed_at_ns: order.formed_at_ns,
        });
    }
}

impl Actor for CtProcess {
    type Msg = CtMsg;
    type Event = ScEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, CtMsg, ScEvent>) {
        if self.i_am_coordinator() {
            ctx.set_timer(self.cfg.batching_interval, TIMER_BATCH);
        }
    }

    fn on_message(&mut self, from: usize, msg: CtMsg, ctx: &mut Ctx<'_, CtMsg, ScEvent>) {
        let sender = ProcessId(from as u32);
        match msg {
            CtMsg::Request(r) => self.on_request(r, ctx),
            CtMsg::Order(o) => {
                if sender == ProcessId(0) {
                    self.accept_order(o, sender, ctx);
                }
            }
            CtMsg::Ack(o) => self.on_ack(o, sender, ctx),
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, CtMsg, ScEvent>) {
        if tag == TIMER_BATCH {
            self.propose_batch(ctx);
            if self.i_am_coordinator() {
                ctx.set_timer(self.cfg.batching_interval, TIMER_BATCH);
            }
        }
    }
}

impl std::fmt::Debug for CtProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CtProcess")
            .field("me", &self.cfg.me)
            .field("next_to_ack", &self.next_to_ack)
            .finish()
    }
}
