//! Harness: assemble a CT deployment inside the simulator.

use sofb_proto::ids::ClientId;
use sofb_proto::request::Request;
use sofb_sim::cpu::CpuModel;
use sofb_sim::delay::{LinkModel, NetworkModel};
use sofb_sim::engine::{Actor, Ctx, World};
use sofb_sim::time::{SimDuration, SimTime};

use sofb_core::events::ScEvent;

use crate::messages::CtMsg;
use crate::process::{CtConfig, CtProcess};

const TIMER_CLIENT: u64 = 100;

/// A synthetic client for the CT world.
#[derive(Debug)]
pub struct CtClient {
    id: ClientId,
    n: usize,
    request_size: usize,
    interval: SimDuration,
    stop_at: SimTime,
    next_seq: u64,
}

impl CtClient {
    /// Creates a client issuing `rate_per_sec` requests until `stop_at`.
    pub fn new(id: ClientId, n: usize, request_size: usize, rate_per_sec: f64, stop_at: SimTime) -> Self {
        assert!(rate_per_sec > 0.0);
        CtClient {
            id,
            n,
            request_size,
            interval: SimDuration((1e9 / rate_per_sec) as u64),
            stop_at,
            next_seq: 0,
        }
    }
}

impl Actor for CtClient {
    type Msg = CtMsg;
    type Event = ScEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, CtMsg, ScEvent>) {
        ctx.set_timer(self.interval, TIMER_CLIENT);
    }

    fn on_message(&mut self, _f: usize, _m: CtMsg, _c: &mut Ctx<'_, CtMsg, ScEvent>) {}

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, CtMsg, ScEvent>) {
        if tag != TIMER_CLIENT || ctx.now() >= self.stop_at {
            return;
        }
        self.next_seq += 1;
        let req = Request::new(self.id, self.next_seq, vec![0xefu8; self.request_size]);
        for p in 0..self.n {
            ctx.send(p, CtMsg::Request(req.clone()));
        }
        ctx.set_timer(self.interval, TIMER_CLIENT);
    }
}

/// Builder for a simulated CT deployment.
#[derive(Debug)]
pub struct CtWorldBuilder {
    f: u32,
    seed: u64,
    batching_interval: SimDuration,
    cpu: CpuModel,
    clients: Vec<(f64, usize, SimTime)>,
}

impl CtWorldBuilder {
    /// Starts a builder for resilience `f`.
    pub fn new(f: u32) -> Self {
        CtWorldBuilder {
            f,
            seed: 42,
            batching_interval: SimDuration::from_ms(100),
            cpu: CpuModel::default(),
            clients: Vec::new(),
        }
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the batching interval.
    pub fn batching_interval(mut self, d: SimDuration) -> Self {
        self.batching_interval = d;
        self
    }

    /// Overrides the CPU model.
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Adds a client: (rate/s, request size, stop time).
    pub fn client(mut self, rate_per_sec: f64, request_size: usize, stop_at: SimTime) -> Self {
        self.clients.push((rate_per_sec, request_size, stop_at));
        self
    }

    /// Assembles the world; returns it with the replica count.
    pub fn build(self) -> (World<CtMsg, ScEvent>, usize) {
        let n = 2 * self.f as usize + 1;
        let net = NetworkModel::uniform(LinkModel::lan_100mbit());
        let mut world: World<CtMsg, ScEvent> = World::new(net, self.seed);
        for i in 0..n {
            let mut cfg = CtConfig::new(self.f, i as u32);
            cfg.batching_interval = self.batching_interval;
            world.add_node(Box::new(CtProcess::new(cfg)), self.cpu);
        }
        for (k, (rate, size, stop)) in self.clients.iter().enumerate() {
            let client = CtClient::new(ClientId(k as u32), n, *size, *rate, *stop);
            world.add_node(Box::new(client), CpuModel::zero());
        }
        (world, n)
    }
}
