//! Harness glue: the CT [`Protocol`] implementation and the historical
//! [`CtWorldBuilder`] facade.

use sofb_harness::{ClientSpec, Deployment, FaultSpec, Knobs, Protocol, WorldBuilder};
use sofb_proto::ids::ProcessId;
use sofb_proto::request::Request;
use sofb_sim::cpu::CpuModel;
use sofb_sim::engine::{Actor, World};
use sofb_sim::time::{SimDuration, SimTime};

use sofb_core::events::ScEvent;

use crate::messages::CtMsg;
use crate::process::{CtConfig, CtProcess};

pub use sofb_harness::{ShardLoad, ShardRouter, ShardedDeployment, ShardedWorldBuilder};

/// A sharded CT deployment: `S` independent CT ordering groups in one
/// world, assembled by [`ShardedWorldBuilder`].
pub type ShardedCtWorld = ShardedDeployment<CtProtocol>;

/// CT tolerates crash faults only, so it has no scripted Byzantine
/// misbehaviours — the uniform crash/mute/delay faults are the whole
/// plan. (Uninhabited: a `FaultSpec::Byzantine` cannot be constructed.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtByz {}

/// The crash-tolerant baseline, as hosted by the generic harness.
#[derive(Debug)]
pub struct CtProtocol;

impl Protocol for CtProtocol {
    type Msg = CtMsg;
    type Byz = CtByz;

    const NAME: &'static str = "CT";

    fn node_count(knobs: &Knobs) -> usize {
        2 * knobs.f as usize + 1
    }

    fn build_nodes(
        knobs: &Knobs,
        _byz: &[(ProcessId, CtByz)],
    ) -> Vec<Box<dyn Actor<Msg = CtMsg, Event = ScEvent>>> {
        (0..Self::node_count(knobs))
            .map(|i| {
                let mut cfg = CtConfig::new(knobs.f, i as u32);
                cfg.batching_interval = knobs.batching_interval;
                cfg.batch_max_bytes = knobs.batch_max_bytes;
                Box::new(CtProcess::new(cfg)) as Box<dyn Actor<Msg = CtMsg, Event = ScEvent>>
            })
            .collect()
    }

    fn request_msg(req: Request) -> CtMsg {
        CtMsg::Request(req)
    }
}

/// Builder for a simulated CT deployment (thin facade over the generic
/// [`WorldBuilder`]).
#[derive(Debug)]
pub struct CtWorldBuilder {
    inner: WorldBuilder<CtProtocol>,
}

impl CtWorldBuilder {
    /// Starts a builder for resilience `f`.
    pub fn new(f: u32) -> Self {
        CtWorldBuilder {
            inner: WorldBuilder::new(f),
        }
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.seed(seed);
        self
    }

    /// Sets the batching interval.
    pub fn batching_interval(mut self, d: SimDuration) -> Self {
        self.inner = self.inner.batching_interval(d);
        self
    }

    /// Overrides the CPU model.
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.inner = self.inner.cpu(cpu);
        self
    }

    /// Installs a uniform fault (crash / mute / delay) on one replica.
    pub fn fault(mut self, p: ProcessId, spec: FaultSpec<CtByz>) -> Self {
        self.inner = self.inner.fault(p, spec);
        self
    }

    /// Adds a client: (rate/s, request size, stop time).
    pub fn client(mut self, rate_per_sec: f64, request_size: usize, stop_at: SimTime) -> Self {
        self.inner = self
            .inner
            .client(ClientSpec::new(rate_per_sec, request_size, stop_at));
        self
    }

    /// Assembles the world; returns it with the replica count.
    pub fn build(self) -> (World<CtMsg, ScEvent>, usize) {
        let deployment: Deployment<CtProtocol> = self.inner.build();
        (deployment.world, deployment.n_processes)
    }
}
