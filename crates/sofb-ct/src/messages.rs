//! Wire messages of the CT baseline (unsigned — "no cryptographic
//! techniques used").

use sofb_proto::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use sofb_proto::ids::SeqNo;
use sofb_proto::request::{BatchRef, Request};
use sofb_sim::engine::WireSize;

/// The coordinator's order decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CtOrder {
    /// Assigned sequence number.
    pub o: SeqNo,
    /// The ordered batch.
    pub batch: BatchRef,
    /// Batch-formation time (latency measurement origin).
    pub formed_at_ns: u64,
}

impl Encode for CtOrder {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'O');
        self.o.encode(enc);
        self.batch.encode(enc);
        enc.put_u64(self.formed_at_ns);
    }
}

impl Decode for CtOrder {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let t = dec.get_u8()?;
        if t != b'O' {
            return Err(CodecError::BadDiscriminant(t));
        }
        Ok(CtOrder {
            o: SeqNo::decode(dec)?,
            batch: BatchRef::decode(dec)?,
            formed_at_ns: dec.get_u64()?,
        })
    }
}

/// The CT message set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtMsg {
    /// A client request.
    Request(Request),
    /// Coordinator → all (1→n).
    Order(CtOrder),
    /// Ack, carrying the order (n→n; an ack can stand in for the order).
    Ack(CtOrder),
}

impl Encode for CtMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            CtMsg::Request(r) => {
                enc.put_u8(0);
                r.encode(enc);
            }
            CtMsg::Order(o) => {
                enc.put_u8(1);
                o.encode(enc);
            }
            CtMsg::Ack(o) => {
                enc.put_u8(2);
                o.encode(enc);
            }
        }
    }
}

impl Decode for CtMsg {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(match dec.get_u8()? {
            0 => CtMsg::Request(Request::decode(dec)?),
            1 => CtMsg::Order(CtOrder::decode(dec)?),
            2 => CtMsg::Ack(CtOrder::decode(dec)?),
            d => return Err(CodecError::BadDiscriminant(d)),
        })
    }
}

impl WireSize for CtMsg {
    fn wire_len(&self) -> usize {
        self.encoded_len() + 28
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_proto::ids::ClientId;
    use sofb_proto::request::{Digest, RequestId};

    #[test]
    fn roundtrip() {
        let order = CtOrder {
            o: SeqNo(4),
            batch: BatchRef {
                requests: vec![RequestId {
                    client: ClientId(1),
                    seq: 2,
                }]
                .into(),
                digest: Digest::new(&[1, 2]),
            },
            formed_at_ns: 77,
        };
        for m in [
            CtMsg::Request(Request::new(ClientId(1), 2, &b"x"[..])),
            CtMsg::Order(order.clone()),
            CtMsg::Ack(order),
        ] {
            assert_eq!(CtMsg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }
}
