//! # sofb-ct — the crash-tolerant baseline
//!
//! The paper's CT protocol (§5): "simply derived from SC, with no process
//! being paired and no cryptographic techniques used. ... the shadow
//! processes are excluded from the system (hence n = 2f+1), the
//! coordinator process directly sends its order message to all other
//! processes, and an order message is committed in the same way as SC."
//!
//! Two phases: coordinator order (1→n), acks (n→n), commit on `n−f`
//! distinct supporters. CT tolerates crashes only; its purpose in §5 is to
//! expose "the extent of slow-down in BFT and SC when the type of faults
//! tolerated switches from crash to Byzantine".
//!
//! # Examples
//!
//! ```
//! use sofb_ct::sim::CtWorldBuilder;
//! use sofb_core::analysis;
//! use sofb_sim::time::SimTime;
//!
//! let (mut world, _n) = CtWorldBuilder::new(2)
//!     .client(50.0, 100, SimTime::from_secs(1))
//!     .build();
//! world.start();
//! world.run_until(SimTime::from_secs(2));
//! let events = world.drain_events();
//! analysis::check_total_order(&events).expect("no divergent commits");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod messages;
pub mod process;
pub mod sim;

pub use messages::CtMsg;
pub use process::{CtConfig, CtProcess};
