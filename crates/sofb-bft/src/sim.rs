//! Harness: assemble a BFT deployment inside the simulator (same client
//! and network shape as the SC harness, for apples-to-apples sweeps).

use sofb_crypto::provider::Dealer;
use sofb_crypto::scheme::SchemeId;
use sofb_proto::ids::ClientId;
use sofb_proto::request::Request;
use sofb_sim::cpu::CpuModel;
use sofb_sim::delay::{LinkModel, NetworkModel};
use sofb_sim::engine::{Actor, Ctx, World};
use sofb_sim::time::{SimDuration, SimTime};

use sofb_core::events::ScEvent;

use crate::messages::BftMsg;
use crate::process::{BftConfig, BftProcess};

const TIMER_CLIENT: u64 = 100;

/// A synthetic client for the BFT world (multicasts to all replicas).
#[derive(Debug)]
pub struct BftClient {
    id: ClientId,
    n: usize,
    request_size: usize,
    interval: SimDuration,
    stop_at: SimTime,
    next_seq: u64,
}

impl BftClient {
    /// Creates a client issuing `rate_per_sec` requests until `stop_at`.
    pub fn new(id: ClientId, n: usize, request_size: usize, rate_per_sec: f64, stop_at: SimTime) -> Self {
        assert!(rate_per_sec > 0.0);
        BftClient {
            id,
            n,
            request_size,
            interval: SimDuration((1e9 / rate_per_sec) as u64),
            stop_at,
            next_seq: 0,
        }
    }
}

impl Actor for BftClient {
    type Msg = BftMsg;
    type Event = ScEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        ctx.set_timer(self.interval, TIMER_CLIENT);
    }

    fn on_message(&mut self, _f: usize, _m: BftMsg, _c: &mut Ctx<'_, BftMsg, ScEvent>) {}

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        if tag != TIMER_CLIENT || ctx.now() >= self.stop_at {
            return;
        }
        self.next_seq += 1;
        let req = Request::new(self.id, self.next_seq, vec![0xcdu8; self.request_size]);
        for p in 0..self.n {
            ctx.send(p, BftMsg::Request(req.clone()));
        }
        ctx.set_timer(self.interval, TIMER_CLIENT);
    }
}

/// Builder for a simulated BFT deployment.
#[derive(Debug)]
pub struct BftWorldBuilder {
    f: u32,
    scheme: SchemeId,
    seed: u64,
    batching_interval: SimDuration,
    request_timeout: Option<SimDuration>,
    mute_primary: bool,
    cpu: CpuModel,
    clients: Vec<(f64, usize, SimTime)>,
    lan_link: LinkModel,
}

impl BftWorldBuilder {
    /// Starts a builder for resilience `f` under `scheme`.
    pub fn new(f: u32, scheme: SchemeId) -> Self {
        BftWorldBuilder {
            f,
            scheme,
            seed: 42,
            batching_interval: SimDuration::from_ms(100),
            request_timeout: None,
            mute_primary: false,
            cpu: CpuModel::default(),
            clients: Vec::new(),
            lan_link: LinkModel::lan_100mbit(),
        }
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the batching interval.
    pub fn batching_interval(mut self, d: SimDuration) -> Self {
        self.batching_interval = d;
        self
    }

    /// Enables view changes with the given request timeout.
    pub fn request_timeout(mut self, d: SimDuration) -> Self {
        self.request_timeout = Some(d);
        self
    }

    /// Makes the initial primary mute (view-change tests).
    pub fn mute_primary(mut self) -> Self {
        self.mute_primary = true;
        self
    }

    /// Overrides the CPU model.
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Adds a client: (rate/s, request size, stop time).
    pub fn client(mut self, rate_per_sec: f64, request_size: usize, stop_at: SimTime) -> Self {
        self.clients.push((rate_per_sec, request_size, stop_at));
        self
    }

    /// Assembles the world; returns it with the replica count.
    pub fn build(self) -> (World<BftMsg, ScEvent>, usize) {
        let n = 3 * self.f as usize + 1;
        let net = NetworkModel::uniform(self.lan_link.clone());
        let mut world: World<BftMsg, ScEvent> = World::new(net, self.seed);
        let providers = Dealer::sim(self.scheme, n, self.seed ^ 0xbf7);
        for (i, provider) in providers.into_iter().enumerate() {
            let mut cfg = BftConfig::new(self.f, i as u32, self.scheme);
            cfg.batching_interval = self.batching_interval;
            cfg.request_timeout = self.request_timeout;
            cfg.mute_primary = self.mute_primary && i == 0;
            world.add_node(Box::new(BftProcess::new(cfg, Box::new(provider))), self.cpu);
        }
        for (k, (rate, size, stop)) in self.clients.iter().enumerate() {
            let client = BftClient::new(ClientId(k as u32), n, *size, *rate, *stop);
            world.add_node(Box::new(client), CpuModel::zero());
        }
        (world, n)
    }
}
