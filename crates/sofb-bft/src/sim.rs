//! Harness glue: the BFT [`Protocol`] implementation and the historical
//! [`BftWorldBuilder`] facade.
//!
//! The client actor, world assembly and fault plan all come from the
//! generic harness (`sofb-harness`), so a BFT deployment is exactly an SC
//! deployment with a different `Protocol` parameter — the
//! apples-to-apples property the paper's §5 comparisons rely on.

use sofb_crypto::provider::Dealer;
use sofb_crypto::scheme::SchemeId;
use sofb_harness::{ClientSpec, Deployment, FaultSpec, Knobs, Protocol, WorldBuilder};
use sofb_proto::ids::ProcessId;
use sofb_proto::request::Request;
use sofb_sim::cpu::CpuModel;
use sofb_sim::engine::{Actor, World};
use sofb_sim::time::{SimDuration, SimTime};

use sofb_core::events::ScEvent;

use crate::messages::BftMsg;
use crate::process::{BftConfig, BftProcess};

pub use sofb_harness::{ShardLoad, ShardRouter, ShardedDeployment, ShardedWorldBuilder};

/// A sharded BFT deployment: `S` independent BFT ordering groups in one
/// world, assembled by [`ShardedWorldBuilder`].
pub type ShardedBftWorld = ShardedDeployment<BftProtocol>;

/// Scripted BFT misbehaviours expressible through the uniform
/// [`FaultSpec`] plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BftByz {
    /// The replica stops proposing when primary (it still acks and
    /// commits — the classic view-change trigger).
    MutePrimary,
}

/// The Castro–Liskov BFT baseline, as hosted by the generic harness.
#[derive(Debug)]
pub struct BftProtocol;

impl Protocol for BftProtocol {
    type Msg = BftMsg;
    type Byz = BftByz;

    const NAME: &'static str = "BFT";

    fn node_count(knobs: &Knobs) -> usize {
        3 * knobs.f as usize + 1
    }

    fn build_nodes(
        knobs: &Knobs,
        byz: &[(ProcessId, BftByz)],
    ) -> Vec<Box<dyn Actor<Msg = BftMsg, Event = ScEvent>>> {
        let n = Self::node_count(knobs);
        let providers = Dealer::sim(knobs.scheme, n, knobs.seed ^ 0xbf7);
        providers
            .into_iter()
            .enumerate()
            .map(|(i, provider)| {
                let mut cfg = BftConfig::new(knobs.f, i as u32, knobs.scheme);
                cfg.batching_interval = knobs.batching_interval;
                cfg.batch_max_bytes = knobs.batch_max_bytes;
                cfg.request_timeout = knobs.request_timeout;
                cfg.mute_primary = byz
                    .iter()
                    .any(|(p, b)| p.0 as usize == i && *b == BftByz::MutePrimary);
                Box::new(BftProcess::new(cfg, Box::new(provider)))
                    as Box<dyn Actor<Msg = BftMsg, Event = ScEvent>>
            })
            .collect()
    }

    fn request_msg(req: Request) -> BftMsg {
        BftMsg::Request(req)
    }
}

/// Builder for a simulated BFT deployment (thin facade over the generic
/// [`WorldBuilder`]).
#[derive(Debug)]
pub struct BftWorldBuilder {
    inner: WorldBuilder<BftProtocol>,
}

impl BftWorldBuilder {
    /// Starts a builder for resilience `f` under `scheme`.
    pub fn new(f: u32, scheme: SchemeId) -> Self {
        BftWorldBuilder {
            inner: WorldBuilder::new(f).scheme(scheme),
        }
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.seed(seed);
        self
    }

    /// Sets the batching interval.
    pub fn batching_interval(mut self, d: SimDuration) -> Self {
        self.inner = self.inner.batching_interval(d);
        self
    }

    /// Enables view changes with the given request timeout.
    pub fn request_timeout(mut self, d: SimDuration) -> Self {
        self.inner = self.inner.request_timeout(d);
        self
    }

    /// Makes the initial primary mute (view-change tests).
    pub fn mute_primary(mut self) -> Self {
        self.inner = self
            .inner
            .fault(ProcessId(0), FaultSpec::Byzantine(BftByz::MutePrimary));
        self
    }

    /// Overrides the CPU model.
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.inner = self.inner.cpu(cpu);
        self
    }

    /// Installs a uniform fault (crash / mute / delay / Byzantine) on one
    /// replica.
    pub fn fault(mut self, p: ProcessId, spec: FaultSpec<BftByz>) -> Self {
        self.inner = self.inner.fault(p, spec);
        self
    }

    /// Adds a client: (rate/s, request size, stop time).
    pub fn client(mut self, rate_per_sec: f64, request_size: usize, stop_at: SimTime) -> Self {
        self.inner = self
            .inner
            .client(ClientSpec::new(rate_per_sec, request_size, stop_at));
        self
    }

    /// Assembles the world; returns it with the replica count.
    pub fn build(self) -> (World<BftMsg, ScEvent>, usize) {
        let deployment: Deployment<BftProtocol> = self.inner.build();
        (deployment.world, deployment.n_processes)
    }
}
