//! # sofb-bft — the Castro–Liskov BFT baseline
//!
//! The paper's primary comparator (§5, Figure 3(b)): a coordinator-based
//! deterministic protocol with a three-phase normal case — pre-prepare
//! (1→n), prepare (n→n), commit (n→n) — authenticated with the same
//! digest/signature schemes as the SC protocol, plus the view-change /
//! new-view machinery for primary failure.
//!
//! The replica ([`process::BftProcess`]) runs on the same simulator and
//! emits the same event type as the SC protocol, so the experiment
//! harness measures both identically.
//!
//! # Examples
//!
//! ```
//! use sofb_bft::sim::BftWorldBuilder;
//! use sofb_core::analysis;
//! use sofb_crypto::scheme::SchemeId;
//! use sofb_sim::time::SimTime;
//!
//! let (mut world, _n) = BftWorldBuilder::new(1, SchemeId::Md5Rsa1024)
//!     .client(50.0, 100, SimTime::from_secs(1))
//!     .build();
//! world.start();
//! world.run_until(SimTime::from_secs(3));
//! let events = world.drain_events();
//! analysis::check_total_order(&events).expect("no divergent commits");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod messages;
pub mod process;
pub mod sim;

pub use messages::BftMsg;
pub use process::{BftConfig, BftProcess};
