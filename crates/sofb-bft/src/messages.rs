//! Wire messages of the BFT (Castro–Liskov) baseline.
//!
//! The paper compares against BFT's signature-authenticated three-phase
//! normal case (Figure 3(b)): pre-prepare (1→n), prepare (n→n), commit
//! (n→n), plus the view-change/new-view machinery for primary failure.

use sofb_proto::codec::{CodecError, Decode, Decoder, Encode, Encoder};
use sofb_proto::ids::{SeqNo, ViewId};
use sofb_proto::request::{BatchRef, Digest, Request};
use sofb_proto::signed::Signed;
use sofb_sim::engine::WireSize;

/// The primary's ordering proposal for one batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrePreparePayload {
    /// Current view.
    pub v: ViewId,
    /// Assigned sequence number.
    pub o: SeqNo,
    /// The ordered batch.
    pub batch: BatchRef,
    /// Batch-formation time (latency measurement origin).
    pub formed_at_ns: u64,
}

impl Encode for PrePreparePayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'P');
        self.v.encode(enc);
        self.o.encode(enc);
        self.batch.encode(enc);
        enc.put_u64(self.formed_at_ns);
    }
}

impl Decode for PrePreparePayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'P')?;
        Ok(PrePreparePayload {
            v: ViewId::decode(dec)?,
            o: SeqNo::decode(dec)?,
            batch: BatchRef::decode(dec)?,
            formed_at_ns: dec.get_u64()?,
        })
    }
}

/// A backup's agreement to the `(v, o, digest)` binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreparePayload {
    /// Current view.
    pub v: ViewId,
    /// Sequence number.
    pub o: SeqNo,
    /// Batch digest.
    pub digest: Digest,
}

impl Encode for PreparePayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'p');
        self.v.encode(enc);
        self.o.encode(enc);
        self.digest.encode(enc);
    }
}

impl Decode for PreparePayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'p')?;
        Ok(PreparePayload {
            v: ViewId::decode(dec)?,
            o: SeqNo::decode(dec)?,
            digest: Digest::decode(dec)?,
        })
    }
}

/// A replica's commit vote (same fields as prepare, distinct domain tag).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitPayload {
    /// Current view.
    pub v: ViewId,
    /// Sequence number.
    pub o: SeqNo,
    /// Batch digest.
    pub digest: Digest,
}

impl Encode for CommitPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'c');
        self.v.encode(enc);
        self.o.encode(enc);
        self.digest.encode(enc);
    }
}

impl Decode for CommitPayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'c')?;
        Ok(CommitPayload {
            v: ViewId::decode(dec)?,
            o: SeqNo::decode(dec)?,
            digest: Digest::decode(dec)?,
        })
    }
}

/// Proof that a batch prepared: its pre-prepare plus `2f` prepares.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreparedProof {
    /// The original pre-prepare.
    pub pre_prepare: Signed<PrePreparePayload>,
    /// The matching prepares.
    pub prepares: Vec<Signed<PreparePayload>>,
}

impl Encode for PreparedProof {
    fn encode(&self, enc: &mut Encoder) {
        self.pre_prepare.encode(enc);
        enc.put_seq(&self.prepares);
    }
}

impl Decode for PreparedProof {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(PreparedProof {
            pre_prepare: Signed::decode(dec)?,
            prepares: dec.get_seq()?,
        })
    }
}

/// A replica's vote to move to view `v`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewChangePayload {
    /// The proposed view.
    pub v: ViewId,
    /// Last sequence number this replica committed.
    pub last_committed: SeqNo,
    /// Prepared-but-uncommitted batches, with proofs (the P set).
    pub prepared: Vec<PreparedProof>,
}

impl Encode for ViewChangePayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'V');
        self.v.encode(enc);
        self.last_committed.encode(enc);
        enc.put_seq(&self.prepared);
    }
}

impl Decode for ViewChangePayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'V')?;
        Ok(ViewChangePayload {
            v: ViewId::decode(dec)?,
            last_committed: SeqNo::decode(dec)?,
            prepared: dec.get_seq()?,
        })
    }
}

/// The new primary's view installation: the view-change quorum and the
/// pre-prepares it re-issues for carried-over batches (the O set).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NewViewPayload {
    /// The new view.
    pub v: ViewId,
    /// The `2f+1` view-change messages justifying the view.
    pub view_changes: Vec<Signed<ViewChangePayload>>,
    /// Re-issued pre-prepares for prepared batches.
    pub pre_prepares: Vec<Signed<PrePreparePayload>>,
}

impl Encode for NewViewPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(b'N');
        self.v.encode(enc);
        enc.put_seq(&self.view_changes);
        enc.put_seq(&self.pre_prepares);
    }
}

impl Decode for NewViewPayload {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        expect_tag(dec, b'N')?;
        Ok(NewViewPayload {
            v: ViewId::decode(dec)?,
            view_changes: dec.get_seq()?,
            pre_prepares: dec.get_seq()?,
        })
    }
}

/// The complete BFT message set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BftMsg {
    /// A client request.
    Request(Request),
    /// Phase 1: primary → all.
    PrePrepare(Signed<PrePreparePayload>),
    /// Phase 2: all → all.
    Prepare(Signed<PreparePayload>),
    /// Phase 3: all → all.
    Commit(Signed<CommitPayload>),
    /// View-change vote.
    ViewChange(Signed<ViewChangePayload>),
    /// View installation by the new primary.
    NewView(Signed<NewViewPayload>),
}

impl Encode for BftMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            BftMsg::Request(r) => {
                enc.put_u8(0);
                r.encode(enc);
            }
            BftMsg::PrePrepare(m) => {
                enc.put_u8(1);
                m.encode(enc);
            }
            BftMsg::Prepare(m) => {
                enc.put_u8(2);
                m.encode(enc);
            }
            BftMsg::Commit(m) => {
                enc.put_u8(3);
                m.encode(enc);
            }
            BftMsg::ViewChange(m) => {
                enc.put_u8(4);
                m.encode(enc);
            }
            BftMsg::NewView(m) => {
                enc.put_u8(5);
                m.encode(enc);
            }
        }
    }
}

impl Decode for BftMsg {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(match dec.get_u8()? {
            0 => BftMsg::Request(Request::decode(dec)?),
            1 => BftMsg::PrePrepare(Signed::decode(dec)?),
            2 => BftMsg::Prepare(Signed::decode(dec)?),
            3 => BftMsg::Commit(Signed::decode(dec)?),
            4 => BftMsg::ViewChange(Signed::decode(dec)?),
            5 => BftMsg::NewView(Signed::decode(dec)?),
            d => return Err(CodecError::BadDiscriminant(d)),
        })
    }
}

impl WireSize for BftMsg {
    fn wire_len(&self) -> usize {
        self.encoded_len() + 28
    }
}

fn expect_tag(dec: &mut Decoder<'_>, tag: u8) -> Result<(), CodecError> {
    let got = dec.get_u8()?;
    if got != tag {
        return Err(CodecError::BadDiscriminant(got));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_crypto::provider::Dealer;
    use sofb_crypto::scheme::SchemeId;
    use sofb_proto::ids::ClientId;
    use sofb_proto::request::RequestId;

    #[test]
    fn all_variants_roundtrip() {
        let mut provs = Dealer::sim(SchemeId::Md5Rsa1024, 3, 4);
        let pp = Signed::sign(
            PrePreparePayload {
                v: ViewId(1),
                o: SeqNo(2),
                batch: BatchRef {
                    requests: vec![RequestId {
                        client: ClientId(1),
                        seq: 1,
                    }]
                    .into(),
                    digest: Digest::new(&[7]),
                },
                formed_at_ns: 5,
            },
            &mut provs[0],
        );
        let prep = Signed::sign(
            PreparePayload {
                v: ViewId(1),
                o: SeqNo(2),
                digest: Digest::new(&[7]),
            },
            &mut provs[1],
        );
        let msgs = vec![
            BftMsg::Request(Request::new(ClientId(0), 1, &b"w"[..])),
            BftMsg::PrePrepare(pp.clone()),
            BftMsg::Prepare(prep.clone()),
            BftMsg::Commit(Signed::sign(
                CommitPayload {
                    v: ViewId(1),
                    o: SeqNo(2),
                    digest: Digest::new(&[7]),
                },
                &mut provs[2],
            )),
            BftMsg::ViewChange(Signed::sign(
                ViewChangePayload {
                    v: ViewId(2),
                    last_committed: SeqNo(1),
                    prepared: vec![PreparedProof {
                        pre_prepare: pp.clone(),
                        prepares: vec![prep],
                    }],
                },
                &mut provs[1],
            )),
            BftMsg::NewView(Signed::sign(
                NewViewPayload {
                    v: ViewId(2),
                    view_changes: vec![],
                    pre_prepares: vec![pp],
                },
                &mut provs[1],
            )),
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            assert_eq!(BftMsg::from_bytes(&bytes).unwrap(), m, "{m:?}");
            assert!(m.wire_len() > bytes.len());
        }
    }
}
