//! The BFT replica state machine (Castro–Liskov normal case + view change).
//!
//! `n = 3f+1` replicas; the primary of view `v` is replica `(v−1) mod n`.
//! Normal case (Figure 3(b) of the paper): the primary multicasts a signed
//! pre-prepare (1→n); backups multicast prepares (n→n); once a replica
//! holds the pre-prepare and `2f` matching prepares it multicasts a commit
//! (n→n); `2f+1` matching commits commit the batch.
//!
//! Signatures (not MACs) authenticate every protocol message, matching the
//! configuration the paper benchmarks (its crypto-technique axis applies
//! to both protocols).

use std::collections::{BTreeMap, HashSet};

use sofb_crypto::provider::CryptoProvider;
use sofb_crypto::scheme::SchemeId;
use sofb_proto::backlog::RequestBacklog;
use sofb_proto::fasthash::IdHashMap;
use sofb_proto::ids::{ProcessId, Rank, SeqNo, ViewId};
use sofb_proto::request::{BatchRef, Digest, Request, RequestId};
use sofb_proto::signed::Signed;
use sofb_sim::engine::{Actor, Ctx};
use sofb_sim::time::{SimDuration, SimTime};

use sofb_core::events::ScEvent;

use crate::messages::{
    BftMsg, CommitPayload, NewViewPayload, PrePreparePayload, PreparePayload, PreparedProof,
    ViewChangePayload,
};

const TIMER_BATCH: u64 = 1;
const TIMER_REQUEST_CHECK: u64 = 2;

/// Configuration of one BFT replica.
#[derive(Clone, Debug)]
pub struct BftConfig {
    /// Resilience (n = 3f+1).
    pub f: u32,
    /// This replica's index (0-based).
    pub me: u32,
    /// Crypto scheme.
    pub scheme: SchemeId,
    /// Batching interval (primary).
    pub batching_interval: SimDuration,
    /// Maximum batch payload bytes.
    pub batch_max_bytes: usize,
    /// Pending-request age that triggers a view change; `None` disables
    /// view changes (the fail-free benchmark setting).
    pub request_timeout: Option<SimDuration>,
    /// If true, this primary stops proposing (crash-style fault used by
    /// view-change tests).
    pub mute_primary: bool,
}

impl BftConfig {
    /// Defaults for replica `me` of a deployment with resilience `f`.
    pub fn new(f: u32, me: u32, scheme: SchemeId) -> Self {
        BftConfig {
            f,
            me,
            scheme,
            batching_interval: SimDuration::from_ms(100),
            batch_max_bytes: 1024,
            request_timeout: None,
            mute_primary: false,
        }
    }

    /// Total replicas.
    pub fn n(&self) -> usize {
        3 * self.f as usize + 1
    }

    /// Commit quorum (`2f+1`).
    pub fn quorum(&self) -> usize {
        2 * self.f as usize + 1
    }
}

#[derive(Default)]
struct SlotState {
    pre_prepare: Option<Signed<PrePreparePayload>>,
    prepares: BTreeMap<ProcessId, Signed<PreparePayload>>,
    commits: BTreeMap<ProcessId, Signed<CommitPayload>>,
    prepared: bool,
    commit_sent: bool,
    committed: bool,
}

/// One BFT replica.
pub struct BftProcess {
    cfg: BftConfig,
    provider: Box<dyn CryptoProvider>,
    v: ViewId,
    next_propose: SeqNo,
    requests: IdHashMap<RequestId, Request>,
    backlog: RequestBacklog<SimTime>,
    slots: BTreeMap<SeqNo, SlotState>,
    last_committed: SeqNo,
    view_changes: BTreeMap<ViewId, BTreeMap<ProcessId, Signed<ViewChangePayload>>>,
    view_change_sent: Option<ViewId>,
    new_view_done: bool,
}

impl BftProcess {
    /// Creates a replica.
    pub fn new(cfg: BftConfig, provider: Box<dyn CryptoProvider>) -> Self {
        BftProcess {
            cfg,
            provider,
            v: ViewId(1),
            next_propose: SeqNo(1),
            requests: IdHashMap::default(),
            backlog: RequestBacklog::new(),
            slots: BTreeMap::new(),
            last_committed: SeqNo(0),
            view_changes: BTreeMap::new(),
            view_change_sent: None,
            new_view_done: true,
        }
    }

    /// The primary of view `v`.
    pub fn primary_of(&self, v: ViewId) -> ProcessId {
        ProcessId(((v.0 - 1) % self.cfg.n() as u64) as u32)
    }

    fn i_am_primary(&self) -> bool {
        self.primary_of(self.v).0 == self.cfg.me
    }

    /// Current view.
    pub fn view(&self) -> ViewId {
        self.v
    }

    /// Last committed sequence number.
    pub fn last_committed(&self) -> SeqNo {
        self.last_committed
    }

    fn multicast(&self, ctx: &mut Ctx<'_, BftMsg, ScEvent>, msg: BftMsg) {
        for p in 0..self.cfg.n() {
            ctx.send(p, msg.clone());
        }
    }

    fn on_request(&mut self, req: Request, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        if self.requests.contains_key(&req.id) {
            return;
        }
        let id = req.id;
        self.requests.insert(id, req);
        self.backlog.note(id, ctx.now());
        // A pre-prepare stashed for missing requests may now be checkable.
        self.recheck_slots(ctx);
    }

    fn propose_batch(&mut self, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        if !self.i_am_primary() || !self.new_view_done || self.cfg.mute_primary {
            return;
        }
        let mut members: Vec<RequestId> = Vec::new();
        let mut bytes = 0usize;
        while let Some((id, _)) = self.backlog.front() {
            let Some(req) = self.requests.get(&id) else {
                self.backlog.pop_front();
                continue;
            };
            if self.backlog.is_ordered(&id) {
                self.backlog.pop_front();
                continue;
            }
            let len = req.payload.len();
            if !members.is_empty() && bytes + len > self.cfg.batch_max_bytes {
                break;
            }
            members.push(id);
            bytes += len;
            self.backlog.pop_front();
            if bytes >= self.cfg.batch_max_bytes {
                break;
            }
        }
        if members.is_empty() {
            return;
        }
        // Latency origin: the batch tick's fire instant (see sofb-core).
        let formed_at_ns = ctx.fired_at().unwrap_or(ctx.now()).as_ns();
        let refs: Vec<&Request> = members.iter().map(|id| &self.requests[id]).collect();
        let digest = Digest::new(&self.provider.digest(&BatchRef::digest_input(&refs)));
        let o = self.next_propose;
        self.next_propose = o.next();
        self.backlog.mark_ordered(members.iter().copied());
        let payload = PrePreparePayload {
            v: self.v,
            o,
            batch: BatchRef {
                requests: members.into(),
                digest,
            },
            formed_at_ns,
        };
        ctx.emit(ScEvent::OrderProposed {
            o,
            batch_len: payload.batch.len(),
            formed_at_ns,
        });
        let signed = Signed::sign(payload, self.provider.as_mut());
        self.multicast(ctx, BftMsg::PrePrepare(signed));
    }

    fn on_pre_prepare(
        &mut self,
        pp: Signed<PrePreparePayload>,
        ctx: &mut Ctx<'_, BftMsg, ScEvent>,
    ) {
        let p = &pp.payload;
        if p.v != self.v || pp.signer != self.primary_of(self.v) {
            return;
        }
        if !pp.verify(self.provider.as_mut()) {
            return;
        }
        let slot = self.slots.entry(p.o).or_default();
        if let Some(existing) = &slot.pre_prepare {
            if existing.payload.batch.digest != p.batch.digest {
                // Equivocating primary: trigger a view change if enabled.
                let _ = existing;
                self.start_view_change(self.v.next(), ctx);
            }
            return;
        }
        slot.pre_prepare = Some(pp.clone());
        self.backlog
            .mark_ordered(pp.payload.batch.requests.iter().copied());

        // Backups multicast prepare; the primary's pre-prepare stands in
        // for its prepare.
        if !self.i_am_primary() {
            let prep = Signed::sign(
                PreparePayload {
                    v: self.v,
                    o: p.o,
                    digest: pp.payload.batch.digest,
                },
                self.provider.as_mut(),
            );
            self.multicast(ctx, BftMsg::Prepare(prep));
        }
        self.advance_slot(p.o, ctx);
    }

    fn on_prepare(&mut self, prep: Signed<PreparePayload>, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        if prep.payload.v != self.v || prep.signer == self.primary_of(self.v) {
            return;
        }
        if !prep.verify(self.provider.as_mut()) {
            return;
        }
        let o = prep.payload.o;
        let slot = self.slots.entry(o).or_default();
        slot.prepares.entry(prep.signer).or_insert(prep);
        self.advance_slot(o, ctx);
    }

    fn on_commit(&mut self, com: Signed<CommitPayload>, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        if com.payload.v != self.v {
            return;
        }
        if !com.verify(self.provider.as_mut()) {
            return;
        }
        let o = com.payload.o;
        let slot = self.slots.entry(o).or_default();
        slot.commits.entry(com.signer).or_insert(com);
        self.advance_slot(o, ctx);
    }

    /// Drives one slot through prepared → commit-sent → committed.
    fn advance_slot(&mut self, o: SeqNo, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        let f = self.cfg.f as usize;
        let quorum = self.cfg.quorum();
        let me = ProcessId(self.cfg.me);
        let Some(slot) = self.slots.get_mut(&o) else {
            return;
        };
        // Only the digest is needed on the hot path (every prepare and
        // commit lands here); the full pre-prepare — request ids
        // included — is read again only on the once-per-slot commit
        // transition below.
        let Some(digest) = slot.pre_prepare.as_ref().map(|pp| pp.payload.batch.digest) else {
            return;
        };

        // prepared: pre-prepare + 2f matching prepares (own included; the
        // primary contributes the pre-prepare itself). `prepares` is
        // keyed by signer and never contains the primary, so the count
        // of matching entries plus one is already the distinct-voter
        // count.
        if !slot.prepared {
            let matching = slot
                .prepares
                .values()
                .filter(|p| p.payload.digest == digest)
                .count();
            if matching + 1 > 2 * f {
                slot.prepared = true;
            }
        }
        if slot.prepared && !slot.commit_sent {
            slot.commit_sent = true;
            let com = Signed::sign(
                CommitPayload {
                    v: self.v,
                    o,
                    digest,
                },
                self.provider.as_mut(),
            );
            // Record own commit directly and multicast to the rest.
            let slot = self.slots.get_mut(&o).expect("slot exists");
            slot.commits.insert(me, com.clone());
            self.multicast(ctx, BftMsg::Commit(com));
        }
        let Some(slot) = self.slots.get_mut(&o) else {
            return;
        };
        if slot.prepared && !slot.committed {
            let votes = slot
                .commits
                .values()
                .filter(|c| c.payload.digest == digest)
                .count();
            if votes >= quorum {
                slot.committed = true;
                if o > self.last_committed {
                    self.last_committed = o;
                }
                let p = &slot.pre_prepare.as_ref().expect("checked above").payload;
                let event = ScEvent::Committed {
                    c: Rank(p.v.0 as u32),
                    o,
                    digest: p.batch.digest,
                    requests: p.batch.len(),
                    request_ids: p.batch.requests.clone(),
                    formed_at_ns: p.formed_at_ns,
                };
                ctx.emit(event);
            }
        }
    }

    fn recheck_slots(&mut self, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        let pending: Vec<SeqNo> = self
            .slots
            .iter()
            .filter(|(_, s)| !s.committed)
            .map(|(o, _)| *o)
            .collect();
        for o in pending {
            self.advance_slot(o, ctx);
        }
    }

    // -----------------------------------------------------------------
    // View change
    // -----------------------------------------------------------------

    fn start_view_change(&mut self, v: ViewId, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        if self.view_change_sent.is_some_and(|sent| sent >= v) {
            return;
        }
        self.view_change_sent = Some(v);
        self.new_view_done = false;
        let prepared: Vec<PreparedProof> = self
            .slots
            .values()
            .filter(|s| s.prepared && !s.committed)
            .filter_map(|s| {
                s.pre_prepare.as_ref().map(|pp| PreparedProof {
                    pre_prepare: pp.clone(),
                    prepares: s.prepares.values().cloned().collect(),
                })
            })
            .collect();
        let vc = Signed::sign(
            ViewChangePayload {
                v,
                last_committed: self.last_committed,
                prepared,
            },
            self.provider.as_mut(),
        );
        let me = ProcessId(self.cfg.me);
        self.view_changes
            .entry(v)
            .or_default()
            .insert(me, vc.clone());
        self.multicast(ctx, BftMsg::ViewChange(vc));
        self.maybe_new_view(v, ctx);
    }

    fn on_view_change(
        &mut self,
        vc: Signed<ViewChangePayload>,
        ctx: &mut Ctx<'_, BftMsg, ScEvent>,
    ) {
        let v = vc.payload.v;
        if v <= self.v {
            return;
        }
        if !vc.verify(self.provider.as_mut()) {
            return;
        }
        self.view_changes
            .entry(v)
            .or_default()
            .insert(vc.signer, vc);
        // Join once f+1 replicas vote (a correct replica is among them).
        if self.view_changes[&v].len() > self.cfg.f as usize {
            self.start_view_change(v, ctx);
        }
        self.maybe_new_view(v, ctx);
    }

    fn maybe_new_view(&mut self, v: ViewId, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        if self.primary_of(v).0 != self.cfg.me {
            return;
        }
        let Some(vcs) = self.view_changes.get(&v) else {
            return;
        };
        if vcs.len() < self.cfg.quorum() || self.v >= v {
            return;
        }
        // Install the view locally and re-issue prepared batches.
        let view_changes: Vec<Signed<ViewChangePayload>> = vcs.values().cloned().collect();
        let mut carried: BTreeMap<SeqNo, Signed<PrePreparePayload>> = BTreeMap::new();
        let mut max_committed = SeqNo(0);
        for vc in &view_changes {
            max_committed = max_committed.max(vc.payload.last_committed);
            for proof in &vc.payload.prepared {
                let o = proof.pre_prepare.payload.o;
                carried
                    .entry(o)
                    .or_insert_with(|| proof.pre_prepare.clone());
            }
        }
        let mut pre_prepares: Vec<Signed<PrePreparePayload>> = Vec::new();
        let mut max_o = max_committed;
        for (o, pp) in carried.range(max_committed.next()..) {
            let re_issued = Signed::sign(
                PrePreparePayload {
                    v,
                    o: *o,
                    batch: pp.payload.batch.clone(),
                    formed_at_ns: pp.payload.formed_at_ns,
                },
                self.provider.as_mut(),
            );
            pre_prepares.push(re_issued);
            max_o = (*o).max(max_o);
        }
        let nv = Signed::sign(
            NewViewPayload {
                v,
                view_changes,
                pre_prepares: pre_prepares.clone(),
            },
            self.provider.as_mut(),
        );
        self.enter_view(v, max_o.next(), ctx);
        self.multicast(ctx, BftMsg::NewView(nv));
        for pp in pre_prepares {
            self.on_pre_prepare(pp, ctx);
        }
    }

    fn on_new_view(&mut self, nv: Signed<NewViewPayload>, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        let v = nv.payload.v;
        if v <= self.v || nv.signer != self.primary_of(v) {
            return;
        }
        if !nv.verify(self.provider.as_mut()) {
            return;
        }
        // Check the quorum justification.
        let mut voters = HashSet::new();
        let mut valid = 0usize;
        for vc in &nv.payload.view_changes {
            if vc.payload.v == v && voters.insert(vc.signer) && vc.verify(self.provider.as_mut()) {
                valid += 1;
            }
        }
        if valid < self.cfg.quorum() {
            return;
        }
        let max_o = nv
            .payload
            .pre_prepares
            .iter()
            .map(|pp| pp.payload.o)
            .max()
            .unwrap_or(self.last_committed);
        self.enter_view(v, max_o.next(), ctx);
        for pp in nv.payload.pre_prepares.clone() {
            self.on_pre_prepare(pp, ctx);
        }
    }

    fn enter_view(&mut self, v: ViewId, next_propose: SeqNo, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        self.v = v;
        self.new_view_done = true;
        self.next_propose = next_propose.max(self.next_propose);
        // Abandon uncommitted per-view state (prepares/commits are
        // view-specific).
        for slot in self.slots.values_mut() {
            if !slot.committed {
                slot.prepares.clear();
                slot.commits.clear();
                slot.prepared = false;
                slot.commit_sent = false;
                slot.pre_prepare = None;
            }
        }
        ctx.emit(ScEvent::ViewChanged { v });
        if self.i_am_primary() {
            ctx.set_timer(self.cfg.batching_interval, TIMER_BATCH);
        }
    }
}

impl Actor for BftProcess {
    type Msg = BftMsg;
    type Event = ScEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        if self.i_am_primary() {
            ctx.set_timer(self.cfg.batching_interval, TIMER_BATCH);
        }
        if let Some(timeout) = self.cfg.request_timeout {
            ctx.set_timer(timeout, TIMER_REQUEST_CHECK);
        }
    }

    fn on_message(&mut self, _from: usize, msg: BftMsg, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        match msg {
            BftMsg::Request(r) => self.on_request(r, ctx),
            BftMsg::PrePrepare(pp) => self.on_pre_prepare(pp, ctx),
            BftMsg::Prepare(p) => self.on_prepare(p, ctx),
            BftMsg::Commit(c) => self.on_commit(c, ctx),
            BftMsg::ViewChange(vc) => self.on_view_change(vc, ctx),
            BftMsg::NewView(nv) => self.on_new_view(nv, ctx),
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, BftMsg, ScEvent>) {
        match tag {
            TIMER_BATCH => {
                self.propose_batch(ctx);
                if self.i_am_primary() {
                    ctx.set_timer(self.cfg.batching_interval, TIMER_BATCH);
                }
            }
            TIMER_REQUEST_CHECK => {
                if let Some(timeout) = self.cfg.request_timeout {
                    let now = ctx.now();
                    let overdue = self
                        .backlog
                        .oldest_waiting()
                        .is_some_and(|t| now.since(t) > timeout);
                    if overdue {
                        self.start_view_change(self.v.next(), ctx);
                    }
                    ctx.set_timer(timeout, TIMER_REQUEST_CHECK);
                }
            }
            _ => {}
        }
    }

    fn take_cost_ns(&mut self) -> u64 {
        self.provider.take_cost_ns()
    }
}

impl std::fmt::Debug for BftProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BftProcess")
            .field("me", &self.cfg.me)
            .field("v", &self.v)
            .field("last_committed", &self.last_committed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sofb_crypto::provider::Dealer;
    use sofb_proto::ids::ClientId;
    use sofb_sim::engine::TimedEvent;

    /// Drives one replica callback with a standalone context, returning
    /// (sends, events).
    fn drive<F>(replica: &mut BftProcess, f: F) -> (Vec<(usize, BftMsg)>, Vec<TimedEvent<ScEvent>>)
    where
        F: FnOnce(&mut BftProcess, &mut Ctx<'_, BftMsg, ScEvent>),
    {
        let mut rng = StdRng::seed_from_u64(1);
        let mut events = Vec::new();
        let mut ctx = Ctx::standalone(
            SimTime::ZERO,
            replica.cfg.me as usize,
            &mut rng,
            &mut events,
        );
        f(replica, &mut ctx);
        let outputs = ctx.into_outputs();
        (outputs.sends, events)
    }

    fn deployment(f: u32) -> Vec<BftProcess> {
        let n = 3 * f as usize + 1;
        Dealer::sim(SchemeId::Md5Rsa1024, n, 7)
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let mut cfg = BftConfig::new(f, i as u32, SchemeId::Md5Rsa1024);
                cfg.batching_interval = SimDuration::from_ms(10);
                BftProcess::new(cfg, Box::new(p))
            })
            .collect()
    }

    fn request(seq: u64) -> Request {
        Request::new(ClientId(0), seq, vec![0x55u8; 64])
    }

    #[test]
    fn primary_rotation() {
        let replicas = deployment(1); // n = 4
        let r = &replicas[0];
        assert_eq!(r.primary_of(ViewId(1)), ProcessId(0));
        assert_eq!(r.primary_of(ViewId(2)), ProcessId(1));
        assert_eq!(r.primary_of(ViewId(4)), ProcessId(3));
        assert_eq!(r.primary_of(ViewId(5)), ProcessId(0));
    }

    #[test]
    fn quorum_sizes() {
        let cfg = BftConfig::new(2, 0, SchemeId::Md5Rsa1024);
        assert_eq!(cfg.n(), 7);
        assert_eq!(cfg.quorum(), 5);
    }

    #[test]
    fn primary_pre_prepares_on_batch_timer() {
        let mut replicas = deployment(1);
        let (_, _) = drive(&mut replicas[0], |r, ctx| {
            r.on_request(request(1), ctx);
        });
        let (sends, events) = drive(&mut replicas[0], |r, ctx| r.propose_batch(ctx));
        assert!(events
            .iter()
            .any(|e| matches!(e.event, ScEvent::OrderProposed { o: SeqNo(1), .. })));
        // Pre-prepare multicast to all 4 replicas.
        let pps = sends
            .iter()
            .filter(|(_, m)| matches!(m, BftMsg::PrePrepare(_)))
            .count();
        assert_eq!(pps, 4);
    }

    #[test]
    fn backup_prepares_on_pre_prepare() {
        let mut replicas = deployment(1);
        drive(&mut replicas[0], |r, ctx| r.on_request(request(1), ctx));
        let (sends, _) = { drive(&mut replicas[0], |r, ctx| r.propose_batch(ctx)) };
        let pp = sends
            .iter()
            .find_map(|(_, m)| match m {
                BftMsg::PrePrepare(pp) => Some(pp.clone()),
                _ => None,
            })
            .expect("pre-prepare sent");
        // Backup 1 receives it and multicasts a prepare.
        drive(&mut replicas[1], |r, ctx| r.on_request(request(1), ctx));
        let (sends, _) = drive(&mut replicas[1], |r, ctx| r.on_pre_prepare(pp.clone(), ctx));
        let prepares = sends
            .iter()
            .filter(|(_, m)| matches!(m, BftMsg::Prepare(_)))
            .count();
        assert_eq!(prepares, 4);
        // The primary itself does not prepare.
        let (sends, _) = drive(&mut replicas[0], |r, ctx| {
            r.on_pre_prepare(pp, ctx);
        });
        assert!(sends.iter().all(|(_, m)| !matches!(m, BftMsg::Prepare(_))));
    }

    #[test]
    fn wrong_view_pre_prepare_ignored() {
        let mut replicas = deployment(1);
        drive(&mut replicas[0], |r, ctx| r.on_request(request(1), ctx));
        let (sends, _) = drive(&mut replicas[0], |r, ctx| r.propose_batch(ctx));
        let mut pp = sends
            .iter()
            .find_map(|(_, m)| match m {
                BftMsg::PrePrepare(pp) => Some(pp.clone()),
                _ => None,
            })
            .unwrap();
        pp.payload.v = ViewId(2); // signature no longer matches either
        let (sends, _) = drive(&mut replicas[1], |r, ctx| r.on_pre_prepare(pp, ctx));
        assert!(sends.is_empty());
    }

    #[test]
    fn mute_primary_never_proposes() {
        let mut replicas = deployment(1);
        replicas[0].cfg.mute_primary = true;
        drive(&mut replicas[0], |r, ctx| r.on_request(request(1), ctx));
        let (sends, events) = drive(&mut replicas[0], |r, ctx| r.propose_batch(ctx));
        assert!(sends.is_empty());
        assert!(events.is_empty());
    }
}
