//! End-to-end BFT baseline tests.

use sofb_bft::sim::BftWorldBuilder;
use sofb_core::analysis;
use sofb_core::events::ScEvent;
use sofb_crypto::scheme::SchemeId;
use sofb_proto::ids::SeqNo;
use sofb_sim::time::{SimDuration, SimTime};

#[test]
fn failfree_ordering() {
    let (mut world, n) = BftWorldBuilder::new(2, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .client(100.0, 100, SimTime::from_secs(2))
        .seed(5)
        .build();
    world.start();
    world.run_until(SimTime::from_secs(4));
    let events = world.drain_events();
    analysis::check_total_order(&events).unwrap();
    let nodes: Vec<usize> = (0..n).collect();
    let prefix = analysis::common_committed_prefix(&events, &nodes).expect("all commit");
    assert!(prefix >= SeqNo(10), "prefix {prefix:?}");
}

#[test]
fn latency_exceeds_sc_phase_count() {
    // Sanity on the comparative claim: BFT's n-to-n prepare phase adds
    // verification load, so the fail-free latency should exceed a small
    // floor driven by crypto costs (sign 5 ms + verify rounds).
    let (mut world, _) = BftWorldBuilder::new(2, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(200))
        .client(50.0, 100, SimTime::from_secs(2))
        .seed(6)
        .build();
    world.start();
    world.run_until(SimTime::from_secs(4));
    let events = world.drain_events();
    let lat = analysis::mean_latency_ms(&events, SimTime::from_ms(500)).expect("commits");
    assert!(lat > 10.0, "BFT latency implausibly low: {lat} ms");
    assert!(lat < 500.0, "BFT latency implausibly high: {lat} ms");
}

#[test]
fn mute_primary_triggers_view_change() {
    let (mut world, _) = BftWorldBuilder::new(2, SchemeId::Md5Rsa1024)
        .batching_interval(SimDuration::from_ms(50))
        .request_timeout(SimDuration::from_ms(400))
        .mute_primary()
        .client(100.0, 100, SimTime::from_secs(3))
        .seed(7)
        .build();
    world.start();
    world.run_until(SimTime::from_secs(8));
    let events = world.drain_events();
    analysis::check_total_order(&events).unwrap();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, ScEvent::ViewChanged { .. })),
        "view change must occur"
    );
    // The new primary (replica 1) orders batches.
    assert!(
        events.iter().any(|e| matches!(
            &e.event,
            ScEvent::Committed { c, .. } if c.0 >= 2
        )),
        "commits must resume in the new view"
    );
}

#[test]
fn deterministic_with_seed() {
    let run = |seed| {
        let (mut world, _) = BftWorldBuilder::new(1, SchemeId::Md5Rsa1024)
            .client(100.0, 100, SimTime::from_secs(1))
            .seed(seed)
            .build();
        world.start();
        world.run_until(SimTime::from_secs(2));
        world
            .drain_events()
            .iter()
            .filter(|e| matches!(e.event, ScEvent::Committed { .. }))
            .map(|e| (e.time, e.node))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(3), run(3));
}
