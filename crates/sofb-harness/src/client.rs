//! The one synthetic client implementation shared by every protocol.
//!
//! Clients in the paper "direct their requests to all nodes" (§3); this
//! actor multicasts fixed-size requests to the first `n` nodes of its
//! world at a configured offered load, either at a constant interval (the
//! paper's workload, and the reproducible default) or with open-loop
//! Poisson arrivals (exponential inter-arrival times) for burstier
//! scenarios.

use std::fmt;

use rand::Rng;

use sofb_proto::ids::ClientId;
use sofb_proto::request::Request;
use sofb_sim::engine::{Actor, Ctx, WireSize};
use sofb_sim::time::{SimDuration, SimTime};

use crate::event::ProtocolEvent;

/// Timer tag used by the client actor.
const TIMER_CLIENT: u64 = 100;

/// The arrival process of a synthetic client.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Arrival {
    /// One request every `1/rate` seconds (deterministic, the default).
    #[default]
    Constant,
    /// Open-loop Poisson arrivals with mean rate `rate` (exponential
    /// inter-arrival times drawn from the world's seeded RNG).
    Poisson,
}

/// Specification of one synthetic client.
#[derive(Clone, Debug)]
pub struct ClientSpec {
    /// Requests per second.
    pub rate_per_sec: f64,
    /// Payload size in bytes.
    pub request_size: usize,
    /// Stop issuing at this virtual time.
    pub stop_at: SimTime,
}

impl ClientSpec {
    /// A spec issuing `rate_per_sec` requests of `request_size` bytes
    /// until `stop_at`.
    pub fn new(rate_per_sec: f64, request_size: usize, stop_at: SimTime) -> Self {
        ClientSpec {
            rate_per_sec,
            request_size,
            stop_at,
        }
    }
}

/// A synthetic client, generic over the hosted protocol's message type:
/// each request is wrapped through `wrap` (the protocol's
/// request-constructor) and multicast to nodes `0..n`.
pub struct ClientActor<M> {
    id: ClientId,
    n: usize,
    request_size: usize,
    mean_interval: SimDuration,
    stop_at: SimTime,
    arrival: Arrival,
    next_seq: u64,
    wrap: fn(Request) -> M,
}

impl<M> ClientActor<M> {
    /// Creates a client for a world whose order processes are nodes
    /// `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if the spec's rate is not positive.
    pub fn new(
        id: ClientId,
        n: usize,
        spec: &ClientSpec,
        arrival: Arrival,
        wrap: fn(Request) -> M,
    ) -> Self {
        assert!(spec.rate_per_sec > 0.0, "client rate must be positive");
        ClientActor {
            id,
            n,
            request_size: spec.request_size,
            mean_interval: SimDuration((1e9 / spec.rate_per_sec) as u64),
            stop_at: spec.stop_at,
            arrival,
            next_seq: 0,
            wrap,
        }
    }

    fn next_interval(&self, ctx: &mut Ctx<'_, M, ProtocolEvent>) -> SimDuration {
        match self.arrival {
            Arrival::Constant => self.mean_interval,
            Arrival::Poisson => {
                let u: f64 = ctx.rng().gen_range(f64::EPSILON..1.0);
                let ns = (-u.ln() * self.mean_interval.as_ns() as f64)
                    .min(self.mean_interval.as_ns() as f64 * 100.0);
                SimDuration(ns.max(1.0) as u64)
            }
        }
    }
}

impl<M> fmt::Debug for ClientActor<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientActor")
            .field("id", &self.id)
            .field("n", &self.n)
            .field("arrival", &self.arrival)
            .finish()
    }
}

impl<M: Clone + WireSize + fmt::Debug> Actor for ClientActor<M> {
    type Msg = M;
    type Event = ProtocolEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, M, ProtocolEvent>) {
        let d = self.next_interval(ctx);
        ctx.set_timer(d, TIMER_CLIENT);
    }

    fn on_message(&mut self, _from: usize, _msg: M, _ctx: &mut Ctx<'_, M, ProtocolEvent>) {
        // Clients ignore replies in this harness; commitment is observed
        // through the processes' events.
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, M, ProtocolEvent>) {
        if tag != TIMER_CLIENT || ctx.now() >= self.stop_at {
            return;
        }
        self.next_seq += 1;
        let payload = vec![0xabu8; self.request_size];
        let req = Request::new(self.id, self.next_seq, payload);
        ctx.multicast(0..self.n, (self.wrap)(req));
        let d = self.next_interval(ctx);
        ctx.set_timer(d, TIMER_CLIENT);
    }
}
