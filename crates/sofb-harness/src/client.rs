//! The one synthetic client implementation shared by every protocol.
//!
//! Clients in the paper "direct their requests to all nodes" (§3); this
//! actor multicasts fixed-size requests to the first `n` nodes of its
//! world at a configured offered load, either at a constant interval (the
//! paper's workload, and the reproducible default) or with open-loop
//! Poisson arrivals (exponential inter-arrival times) for burstier
//! scenarios.

use std::fmt;
use std::ops::Range;

use rand::Rng;

use bytes::Bytes;
use sofb_proto::ids::ClientId;
use sofb_proto::request::Request;
use sofb_sim::engine::{Actor, Ctx, WireSize};
use sofb_sim::time::{SimDuration, SimTime};

use crate::event::ProtocolEvent;
use crate::shard::{ShardLoad, ShardRouter};

/// Timer tag used by the client actor.
const TIMER_CLIENT: u64 = 100;

/// The arrival process of a synthetic client.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Arrival {
    /// One request every `1/rate` seconds (deterministic, the default).
    #[default]
    Constant,
    /// Open-loop Poisson arrivals with mean rate `rate` (exponential
    /// inter-arrival times drawn from the world's seeded RNG).
    Poisson,
}

/// Specification of one synthetic client.
#[derive(Clone, Debug)]
pub struct ClientSpec {
    /// Requests per second.
    pub rate_per_sec: f64,
    /// Payload size in bytes.
    pub request_size: usize,
    /// Stop issuing at this virtual time.
    pub stop_at: SimTime,
}

impl ClientSpec {
    /// A spec issuing `rate_per_sec` requests of `request_size` bytes
    /// until `stop_at`.
    pub fn new(rate_per_sec: f64, request_size: usize, stop_at: SimTime) -> Self {
        ClientSpec {
            rate_per_sec,
            request_size,
            stop_at,
        }
    }
}

/// Where a client's requests go: one flat ordering group, one of many
/// shards picked per request, or one shard's slice of a multi-shard
/// schedule (parallel worlds, where each shard is its own engine).
#[derive(Clone, Debug)]
pub(crate) enum Destinations {
    /// The flat world: every request is multicast to nodes `0..n`.
    Flat {
        /// Number of order processes.
        n: usize,
    },
    /// A sharded world: each request is routed to one ordering group and
    /// multicast to that group's node range.
    Sharded {
        /// The node-index range of every shard, in shard order.
        ranges: Vec<Range<usize>>,
        /// Key-based routing policy ([`ShardLoad::Global`] mode).
        router: ShardRouter,
        /// How the spec's rate maps onto the shard set.
        load: ShardLoad,
    },
    /// One shard's view of a multi-shard client: the actor walks the
    /// full multi-shard request schedule (so sequence numbers and
    /// routing match the shared-world client exactly) but materializes
    /// only the requests routed to its own shard, whose order processes
    /// are local nodes `0..n`. Every shard engine of a parallel world
    /// hosts one such replica; together they partition the client's
    /// global schedule.
    Slice {
        /// Order processes of the owning shard (local nodes `0..n`).
        n: usize,
        /// The owning shard's index.
        shard: usize,
        /// Total shard count of the logical world.
        shards: usize,
        /// Key-based routing policy ([`ShardLoad::Global`] mode).
        router: ShardRouter,
        /// How the spec's rate maps onto the shard set.
        load: ShardLoad,
    },
}

impl Destinations {
    /// The local node range a request with sequence number `seq` from
    /// client `id` multicasts to — `None` when the request belongs to a
    /// different shard of a [`Destinations::Slice`] world and is
    /// skipped (the sequence number is still consumed, keeping the
    /// schedule aligned across shard replicas).
    pub(crate) fn targets(&self, id: ClientId, seq: u64) -> Option<Range<usize>> {
        match self {
            Destinations::Flat { n } => Some(0..*n),
            Destinations::Sharded {
                ranges,
                router,
                load,
            } => {
                let shard = match load {
                    // Round-robin keeps every shard's arrival process
                    // constant-interval at exactly the spec rate.
                    ShardLoad::PerShard => (seq - 1) as usize % ranges.len(),
                    ShardLoad::Global => router.route_request(id, seq),
                };
                Some(ranges[shard].clone())
            }
            Destinations::Slice {
                n,
                shard,
                shards,
                router,
                load,
            } => {
                let dealt = match load {
                    ShardLoad::PerShard => (seq - 1) as usize % shards,
                    ShardLoad::Global => router.route_request(id, seq),
                };
                (dealt == *shard).then_some(0..*n)
            }
        }
    }
}

/// A synthetic client, generic over the hosted protocol's message type:
/// each request is wrapped through `wrap` (the protocol's
/// request-constructor) and multicast to one ordering group — the whole
/// world in the flat case, or the routed shard in a sharded world.
pub struct ClientActor<M> {
    id: ClientId,
    dest: Destinations,
    /// Shared request payload prototype: every request this client issues
    /// carries the same bytes, so each send clones a refcount instead of
    /// allocating `request_size` bytes on the event hot path.
    payload: Bytes,
    mean_interval: SimDuration,
    stop_at: SimTime,
    arrival: Arrival,
    next_seq: u64,
    wrap: fn(Request) -> M,
}

impl<M> ClientActor<M> {
    /// Creates a client for a world whose order processes are nodes
    /// `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if the spec's rate is not positive.
    pub fn new(
        id: ClientId,
        n: usize,
        spec: &ClientSpec,
        arrival: Arrival,
        wrap: fn(Request) -> M,
    ) -> Self {
        assert!(spec.rate_per_sec > 0.0, "client rate must be positive");
        ClientActor {
            id,
            dest: Destinations::Flat { n },
            payload: Bytes::from(vec![0xabu8; spec.request_size]),
            // Nearest-ns, not truncation: a truncated interval runs the
            // comb fast by up to 1 ns per tick, which accumulates into
            // spurious extra arrivals over long horizons (and must agree
            // with `ClientPopulation`'s tick for the union equivalence).
            mean_interval: SimDuration((1e9 / spec.rate_per_sec).round() as u64),
            stop_at: spec.stop_at,
            arrival,
            next_seq: 0,
            wrap,
        }
    }

    /// Creates a multi-shard client: each request is routed to one of the
    /// given shard node ranges and multicast there. Under
    /// [`ShardLoad::Global`] the spec's rate is the client's total offered
    /// load, spread over shards by the router's key policy; under
    /// [`ShardLoad::PerShard`] every shard receives the spec's rate (the
    /// client issues at `rate × shards`, dealt round-robin so the
    /// per-shard arrival process stays constant-interval under
    /// [`Arrival::Constant`]).
    ///
    /// # Panics
    ///
    /// Panics if the spec's rate is not positive, if `ranges` is empty,
    /// or if the router's shard count differs from `ranges.len()`.
    pub fn new_sharded(
        id: ClientId,
        ranges: Vec<Range<usize>>,
        router: ShardRouter,
        load: ShardLoad,
        spec: &ClientSpec,
        arrival: Arrival,
        wrap: fn(Request) -> M,
    ) -> Self {
        assert!(spec.rate_per_sec > 0.0, "client rate must be positive");
        assert!(!ranges.is_empty(), "sharded client needs at least 1 shard");
        assert_eq!(
            router.shard_count(),
            ranges.len(),
            "router shard count must match the world's shard ranges"
        );
        let rate = match load {
            ShardLoad::Global => spec.rate_per_sec,
            ShardLoad::PerShard => spec.rate_per_sec * ranges.len() as f64,
        };
        ClientActor {
            id,
            dest: Destinations::Sharded {
                ranges,
                router,
                load,
            },
            payload: Bytes::from(vec![0xabu8; spec.request_size]),
            mean_interval: SimDuration((1e9 / rate).round() as u64),
            stop_at: spec.stop_at,
            arrival,
            next_seq: 0,
            wrap,
        }
    }

    /// Creates one shard's replica of a multi-shard client for a
    /// parallel world: the full request schedule is walked (identical
    /// sequence numbering and routing as [`ClientActor::new_sharded`]),
    /// but only requests routed to `shard` are multicast, to the local
    /// nodes `0..n` of that shard's engine.
    ///
    /// # Panics
    ///
    /// Panics if the spec's rate is not positive, if `shard` is out of
    /// range, or if the router's shard count differs from `shards`.
    #[allow(clippy::too_many_arguments)] // one knob per slice coordinate
    pub(crate) fn new_slice(
        id: ClientId,
        n: usize,
        shard: usize,
        shards: usize,
        router: ShardRouter,
        load: ShardLoad,
        spec: &ClientSpec,
        arrival: Arrival,
        wrap: fn(Request) -> M,
    ) -> Self {
        assert!(spec.rate_per_sec > 0.0, "client rate must be positive");
        assert!(shard < shards, "slice shard index out of range");
        assert_eq!(
            router.shard_count(),
            shards,
            "router shard count must match the world's shard count"
        );
        let rate = match load {
            ShardLoad::Global => spec.rate_per_sec,
            ShardLoad::PerShard => spec.rate_per_sec * shards as f64,
        };
        ClientActor {
            id,
            dest: Destinations::Slice {
                n,
                shard,
                shards,
                router,
                load,
            },
            payload: Bytes::from(vec![0xabu8; spec.request_size]),
            mean_interval: SimDuration((1e9 / rate).round() as u64),
            stop_at: spec.stop_at,
            arrival,
            next_seq: 0,
            wrap,
        }
    }

    fn next_interval(&self, ctx: &mut Ctx<'_, M, ProtocolEvent>) -> SimDuration {
        match self.arrival {
            Arrival::Constant => self.mean_interval,
            Arrival::Poisson => {
                // Exact inverse-CDF exponential sampling: for `u` uniform
                // in [0, 1), `1−u` lies in (0, 1] and `−ln(1−u)` is
                // exponential with mean 1 — no truncation. (The previous
                // version capped `−ln(u)` at 100× the mean *and* floored
                // `u` at ε, skewing the measured offered load below
                // `rate_per_sec`; see the seeded mean-rate test.)
                let u: f64 = ctx.rng().gen_range(0.0..1.0);
                let ns = -(1.0 - u).ln() * self.mean_interval.as_ns() as f64;
                SimDuration((ns.round() as u64).max(1))
            }
        }
    }
}

impl<M> fmt::Debug for ClientActor<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientActor")
            .field("id", &self.id)
            .field("dest", &self.dest)
            .field("arrival", &self.arrival)
            .finish()
    }
}

impl<M: Clone + WireSize + fmt::Debug> Actor for ClientActor<M> {
    type Msg = M;
    type Event = ProtocolEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, M, ProtocolEvent>) {
        let d = self.next_interval(ctx);
        ctx.set_timer(d, TIMER_CLIENT);
    }

    fn on_message(&mut self, _from: usize, _msg: M, _ctx: &mut Ctx<'_, M, ProtocolEvent>) {
        // Clients ignore replies in this harness; commitment is observed
        // through the processes' events.
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, M, ProtocolEvent>) {
        if tag != TIMER_CLIENT || ctx.now() >= self.stop_at {
            return;
        }
        self.next_seq += 1;
        if let Some(targets) = self.dest.targets(self.id, self.next_seq) {
            let req = Request::new(self.id, self.next_seq, self.payload.clone());
            ctx.multicast(targets, (self.wrap)(req));
        }
        let d = self.next_interval(ctx);
        ctx.set_timer(d, TIMER_CLIENT);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sofb_sim::engine::TimerRequest;

    #[derive(Clone, Debug)]
    struct Raw(#[allow(dead_code)] Request);

    impl WireSize for Raw {
        fn wire_len(&self) -> usize {
            100
        }
    }

    /// Drives the client actor's timer loop standalone (no world) and
    /// returns (requests issued, virtual seconds elapsed).
    fn drive(arrival: Arrival, rate: f64, secs: u64, seed: u64) -> (u64, f64) {
        let stop = SimTime::from_secs(secs);
        let spec = ClientSpec::new(rate, 100, stop);
        let mut client: ClientActor<Raw> = ClientActor::new(ClientId(0), 1, &spec, arrival, Raw);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut now = SimTime::ZERO;
        let mut requests = 0u64;
        loop {
            let mut ctx = Ctx::standalone(now, 0, &mut rng, &mut events);
            if now == SimTime::ZERO {
                client.on_start(&mut ctx);
            } else {
                client.on_timer(TIMER_CLIENT, &mut ctx);
            }
            let out: sofb_sim::engine::CtxOutputs<Raw> = ctx.into_outputs();
            requests += out.sends.len() as u64;
            let Some(TimerRequest::Set(d, TIMER_CLIENT)) = out.timers.first() else {
                break;
            };
            now += *d;
            if now >= stop {
                break;
            }
        }
        (requests, stop.as_secs_f64())
    }

    /// The measured offered load of the Poisson arrival process must hit
    /// the spec: exact inverse-CDF sampling carries no truncation bias.
    #[test]
    fn poisson_measured_rate_matches_spec() {
        for (seed, rate) in [(7u64, 100.0f64), (8, 250.0), (9, 40.0)] {
            let secs = 2_000;
            let (requests, elapsed) = drive(Arrival::Poisson, rate, secs, seed);
            let measured = requests as f64 / elapsed;
            let err = (measured - rate).abs() / rate;
            assert!(
                err < 0.02,
                "seed {seed}: measured {measured:.2} req/s vs spec {rate} (err {:.2}%)",
                err * 100.0
            );
        }
    }

    /// Constant arrivals are exact by construction — the same harness
    /// must report the spec rate to the request.
    #[test]
    fn constant_measured_rate_is_exact() {
        let (requests, elapsed) = drive(Arrival::Constant, 100.0, 100, 1);
        let measured = requests as f64 / elapsed;
        assert!((measured - 100.0).abs() < 0.5, "measured {measured}");
    }
}
