//! Parallel shard execution with a deterministic trace merge.
//!
//! Shards of a multi-shard world never exchange messages — only client
//! traffic crosses shard boundaries, and in this harness clients are
//! source actors, not relays. Each shard is therefore an independent
//! discrete-event system and can run in its own [`World`] on a worker
//! thread. The runner builds one isolated engine per shard (seeded by
//! the same `shard_seed` schedule the shared-world builder uses), hosts
//! one slice replica of every client in it (see
//! [`Destinations::Slice`](crate::client::Destinations)), executes the
//! shards on up to `world_workers` threads, and k-way-merges the
//! per-shard traces by the stable `(time, shard)` key into the realized
//! global schedule.
//!
//! Determinism: each shard's schedule is a pure function of the
//! scenario and its shard seed, computed entirely inside its own
//! engine; the merge is a pure function of the per-shard traces. The
//! worker count only decides which thread computes which shard, so 1
//! worker and N workers produce bit-identical traces and reports — the
//! same argument the `SweepGrid` runner makes per grid point, one
//! level down.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use crossbeam::channel::{bounded, RecvTimeoutError};

use sofb_obs::{MemSink, MetricsSnapshot, TraceConfig, TraceRecord};
use sofb_proto::ids::{ClientId, ProcessId};
use sofb_sim::cpu::CpuModel;
use sofb_sim::engine::{Actor, TimedEvent, World};
use sofb_sim::metrics::EngineCounters;

use crate::client::{ClientActor, ClientSpec};
use crate::event::ProtocolEvent;
use crate::fault::{apply_engine_fault, FaultSpec};
use crate::population::ClientPopulation;
use crate::protocol::Protocol;
use crate::scenario::{summarize, ObservedRun, Scenario, ScenarioError};
use crate::shard::{shard_seed, ShardRouter};

/// One shard engine's outputs, sent back from its worker thread.
struct ShardRun {
    events: Vec<TimedEvent<ProtocolEvent>>,
    counters: EngineCounters,
    metrics: MetricsSnapshot,
    trace: Vec<TraceRecord>,
    messages_sent: u64,
}

/// Runs a validated multi-shard scenario on isolated per-shard engines
/// and merges the results. Caller guarantees `scenario.shards > 1` and
/// `scenario.world_workers >= 1` (the dispatch in `run_traced_as`).
pub(crate) fn run_world_parallel<P: Protocol>(
    scenario: &Scenario,
    enforce_safety: bool,
    trace: Option<&TraceConfig>,
) -> Result<ObservedRun, ScenarioError> {
    let n = P::node_count(&scenario.knobs);
    let shards = scenario.shards;
    let router = scenario.router.build(shards)?;

    // Pre-lower the fault plan — the only fallible per-shard step — so
    // the worker threads are infallible.
    let mut faults: Vec<(usize, ProcessId, FaultSpec<P::Byz>)> = Vec::new();
    for (i, fault) in scenario.faults.iter().enumerate() {
        faults.push((
            fault.shard,
            fault.process,
            scenario.lower_fault::<P>(i, fault)?,
        ));
    }

    let threads = scenario.world_workers.min(shards);
    let mut runs: Vec<Option<ShardRun>> = Vec::new();
    runs.resize_with(shards, || None);

    if threads <= 1 {
        // One worker: the same per-shard path, inline — which is what
        // makes `world_workers == 1` the determinism anchor N-worker
        // runs are compared against.
        for (s, slot) in runs.iter_mut().enumerate() {
            *slot = Some(run_shard::<P>(scenario, s, n, &router, &faults, trace));
        }
    } else {
        let next = AtomicUsize::new(0);
        let next_ref = &next;
        let router_ref = &router;
        let faults_ref = &faults;
        let (tx, rx) = bounded::<(usize, ShardRun)>(shards);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let s = next_ref.fetch_add(1, Ordering::Relaxed);
                    if s >= shards {
                        break;
                    }
                    let run = run_shard::<P>(scenario, s, n, router_ref, faults_ref, trace);
                    if tx.send((s, run)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut received = 0;
            while received < shards {
                match rx.recv_timeout(Duration::from_secs(60)) {
                    Ok((s, run)) => {
                        runs[s] = Some(run);
                        received += 1;
                    }
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        });
    }

    let mut shard_events: Vec<Vec<TimedEvent<ProtocolEvent>>> = Vec::with_capacity(shards);
    let mut engines = Vec::with_capacity(shards);
    let mut metrics = MetricsSnapshot::new();
    let mut records: Vec<TraceRecord> = Vec::new();
    let mut messages_sent = 0u64;
    for (s, slot) in runs.into_iter().enumerate() {
        let Some(run) = slot else {
            return Err(ScenarioError::WorldWorkerLost { shard: s });
        };
        engines.push(run.counters);
        metrics.absorb(&run.metrics);
        messages_sent += run.messages_sent;
        // Re-stamp local node indices into the global namespace (shard
        // `s`'s processes live at base `s·n`, matching the shared-world
        // layout). Only process nodes emit events; a shard engine's
        // client replicas (local nodes ≥ n) never do.
        shard_events.push(
            run.events
                .into_iter()
                .filter(|ev| ev.node < n)
                .map(|ev| TimedEvent {
                    node: s * n + ev.node,
                    ..ev
                })
                .collect(),
        );
        // Trace records get the same restamping as events. Client-replica
        // records (local node ≥ n) are dropped — each shard engine hosts
        // its own replica of every client, so keeping them would record
        // each client `shards` times under colliding indices. Records are
        // concatenated in shard order: deterministic for every worker
        // count, which is all the byte-identity contract needs.
        records.extend(
            run.trace
                .into_iter()
                .filter(|rec| rec.node < n)
                .map(|rec| TraceRecord {
                    node: s * n + rec.node,
                    ..rec
                })
                // The config's node filter names *global* indices, so it
                // was stripped from the in-shard sink and applies here,
                // after restamping (see `run_shard`).
                .filter(|rec| trace.is_none_or(|cfg| cfg.keep(rec))),
        );
    }

    let merged = merge_traces(&shard_events);
    let refs: Vec<&[TimedEvent<ProtocolEvent>]> =
        shard_events.iter().map(|v| v.as_slice()).collect();
    let report = summarize(
        &refs,
        &merged,
        scenario.window,
        messages_sent,
        &engines,
        metrics,
        enforce_safety,
    );
    Ok(ObservedRun {
        report,
        events: merged,
        records,
    })
}

/// Builds and runs shard `s`'s isolated engine to the scenario horizon.
/// Infallible: validation and fault lowering already happened.
fn run_shard<P: Protocol>(
    scenario: &Scenario,
    s: usize,
    n: usize,
    router: &ShardRouter,
    faults: &[(usize, ProcessId, FaultSpec<P::Byz>)],
    trace: Option<&TraceConfig>,
) -> ShardRun {
    // The shard's knob set and network are exactly the shared-world
    // builder's: seed decorrelated per shard, the protocol's own link
    // shape (whose default already joins everything over the LAN, which
    // is all the local client replicas need).
    let mut knobs = scenario.knobs.clone();
    knobs.seed = shard_seed(scenario.knobs.seed, s);
    let net = P::network(&knobs, &scenario.links);
    let mut world: World<P::Msg, ProtocolEvent> = World::new(net, knobs.seed);

    let byz: Vec<(ProcessId, P::Byz)> = faults
        .iter()
        .filter(|(fs, _, _)| *fs == s)
        .filter_map(|(_, p, spec)| match spec {
            FaultSpec::Byzantine(b) => Some((*p, b.clone())),
            _ => None,
        })
        .collect();
    let nodes = P::build_nodes(&knobs, &byz);
    assert_eq!(
        nodes.len(),
        n,
        "{}: node_count/build_nodes mismatch",
        P::NAME
    );
    for actor in nodes {
        world.add_node(actor, scenario.cpu);
    }

    let stop = scenario.window.end();
    let mut next_id = 0u32;
    for c in &scenario.clients {
        let spec = ClientSpec::new(c.rate_per_sec, c.request_size, stop);
        let client: Box<dyn Actor<Msg = P::Msg, Event = ProtocolEvent>> = if c.population > 1 {
            Box::new(ClientPopulation::new_slice(
                ClientId(next_id),
                c.population,
                n,
                s,
                scenario.shards,
                router.clone(),
                c.load,
                &spec,
                c.arrival,
                scenario.knobs.seed,
                P::request_msg,
            ))
        } else {
            Box::new(ClientActor::new_slice(
                ClientId(next_id),
                n,
                s,
                scenario.shards,
                router.clone(),
                c.load,
                &spec,
                c.arrival,
                P::request_msg,
            ))
        };
        world.add_node(client, CpuModel::zero());
        next_id += c.population as u32;
    }

    for (fs, p, spec) in faults {
        if *fs == s {
            apply_engine_fault(&mut world, p.0 as usize, spec);
        }
    }

    if let Some(cfg) = trace {
        // The in-shard sink filters by name and sample rate only; the
        // node filter names global indices and is applied by the caller
        // after restamping.
        let local = TraceConfig {
            nodes: None,
            ..cfg.clone()
        };
        world.set_trace_sink(Box::new(MemSink::new(local)));
    }

    world.start();
    world.run_until(scenario.window.horizon());
    ShardRun {
        events: world.drain_events(),
        counters: world.counters(),
        metrics: world.metrics(),
        trace: world.drain_trace(),
        messages_sent: world.messages_sent(),
    }
}

/// K-way merge of per-shard traces by `(time, shard)`: earliest event
/// first, ties broken by shard index, within-shard order preserved —
/// the realized global schedule, and a deterministic function of its
/// inputs. A linear scan per output event is plenty for ≤ dozens of
/// shards.
fn merge_traces(shard_events: &[Vec<TimedEvent<ProtocolEvent>>]) -> Vec<TimedEvent<ProtocolEvent>> {
    let total = shard_events.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    let mut idx = vec![0usize; shard_events.len()];
    loop {
        let mut best: Option<usize> = None;
        for (s, events) in shard_events.iter().enumerate() {
            if idx[s] < events.len()
                && best.is_none_or(|b| events[idx[s]].time < shard_events[b][idx[b]].time)
            {
                best = Some(s);
            }
        }
        let Some(s) = best else { break };
        merged.push(shard_events[s][idx[s]].clone());
        idx[s] += 1;
    }
    merged
}
