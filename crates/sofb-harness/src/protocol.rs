//! The [`Protocol`] abstraction: everything the generic harness needs to
//! assemble a deployment of one total-order protocol variant.

use std::fmt;

use sofb_crypto::scheme::SchemeId;
use sofb_proto::ids::ProcessId;
use sofb_proto::request::Request;
use sofb_proto::topology::Variant;
use sofb_sim::delay::{LinkModel, NetworkModel};
use sofb_sim::engine::{Actor, WireSize};
use sofb_sim::time::SimDuration;

use crate::event::ProtocolEvent;

/// Which protocol family a deployment runs (runtime dispatch for sweep
/// drivers; the type-level equivalent is choosing `P` in
/// [`WorldBuilder<P>`](crate::builder::WorldBuilder)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Signal-on-crash (`n = 3f+1`).
    Sc,
    /// Signal-on-crash-and-recovery (`n = 3f+2`).
    Scr,
    /// Castro–Liskov BFT baseline (`n = 3f+1`).
    Bft,
    /// Crash-tolerant baseline (`n = 2f+1`).
    Ct,
}

impl ProtocolKind {
    /// All four variants, in paper order.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::Sc,
        ProtocolKind::Scr,
        ProtocolKind::Bft,
        ProtocolKind::Ct,
    ];

    /// The SC layout flavour this kind implies, if it is an SC variant
    /// (what keeps `Knobs::variant` in sync when scenarios switch kind).
    pub fn variant(&self) -> Option<Variant> {
        match self {
            ProtocolKind::Sc => Some(Variant::Sc),
            ProtocolKind::Scr => Some(Variant::Scr),
            ProtocolKind::Bft | ProtocolKind::Ct => None,
        }
    }

    /// Order processes per ordering group at resilience `f` — the kind's
    /// layout formula, mirrored here so protocol-agnostic code (scenario
    /// validation) can bounds-check fault targets without naming a
    /// protocol crate. The scenario runner cross-checks it against
    /// [`Protocol::node_count`] at lowering.
    pub fn node_count(&self, f: u32) -> usize {
        let f = f as usize;
        match self {
            ProtocolKind::Sc | ProtocolKind::Bft => 3 * f + 1,
            ProtocolKind::Scr => 3 * f + 2,
            ProtocolKind::Ct => 2 * f + 1,
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::Sc => write!(f, "SC"),
            ProtocolKind::Scr => write!(f, "SCR"),
            ProtocolKind::Bft => write!(f, "BFT"),
            ProtocolKind::Ct => write!(f, "CT"),
        }
    }
}

/// Deployment knobs shared across protocols.
///
/// Each protocol reads the subset that applies to it (CT ignores the
/// crypto scheme, BFT ignores the SC pair-link knobs, …) so one knob
/// struct can drive any variant through one sweep loop.
#[derive(Clone, Debug, PartialEq)]
pub struct Knobs {
    /// Resilience parameter.
    pub f: u32,
    /// SC layout flavour (read by the SC/SCR protocol only).
    pub variant: Variant,
    /// Digest/signature scheme.
    pub scheme: SchemeId,
    /// Deterministic world seed.
    pub seed: u64,
    /// Batching interval (§4.3; swept 40–500 ms in §5).
    pub batching_interval: SimDuration,
    /// Maximum batch payload bytes (fixed at 1 KB in §5).
    pub batch_max_bytes: usize,
    /// SC: the shadow's proposal-timeliness estimate.
    pub order_timeout: SimDuration,
    /// SC: intra-pair heartbeat period.
    pub heartbeat_period: SimDuration,
    /// SC: consecutive missed heartbeats before a time-domain suspicion.
    pub heartbeat_misses: u32,
    /// SCR: consecutive fresh heartbeats before a pair recovers to `up`.
    pub recovery_beats: u32,
    /// SC: checkpoint interval (0 disables log truncation).
    pub checkpoint_interval: u64,
    /// SC: BackLog padding (Figure 6's size sweep).
    pub backlog_pad: usize,
    /// SC: enable time-domain failure detection.
    pub time_checks: bool,
    /// BFT: pending-request age that triggers a view change; `None`
    /// disables view changes (the fail-free benchmark setting).
    pub request_timeout: Option<SimDuration>,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            f: 1,
            variant: Variant::Sc,
            scheme: SchemeId::Md5Rsa1024,
            seed: 42,
            batching_interval: SimDuration::from_ms(100),
            batch_max_bytes: 1024,
            order_timeout: SimDuration::from_ms(1_000),
            heartbeat_period: SimDuration::from_ms(50),
            heartbeat_misses: 4,
            recovery_beats: 3,
            checkpoint_interval: 64,
            backlog_pad: 0,
            time_checks: true,
            request_timeout: None,
        }
    }
}

/// The two link classes of the paper's testbed (§2): the asynchronous
/// LAN joining everything, and the fast dedicated intra-pair links.
#[derive(Clone, Debug, PartialEq)]
pub struct Links {
    /// The general asynchronous network.
    pub lan: LinkModel,
    /// The fast intra-pair interconnect (used by SC/SCR only).
    pub pair: LinkModel,
}

impl Default for Links {
    fn default() -> Self {
        Links {
            lan: LinkModel::lan_100mbit(),
            pair: LinkModel::pair_link(),
        }
    }
}

/// One total-order protocol variant, as seen by the generic harness.
///
/// Implementations live next to each protocol (`sofb-core`, `sofb-bft`,
/// `sofb-ct`); the harness uses them to assemble a
/// [`Deployment`](crate::builder::Deployment) without knowing anything
/// protocol-specific.
pub trait Protocol {
    /// The wire message type exchanged between this protocol's nodes.
    type Msg: Clone + WireSize + fmt::Debug + 'static;
    /// Scripted Byzantine misbehaviours this protocol supports
    /// (an uninhabited enum if none). `Send + Sync` because a fault
    /// plan is shared by reference with the per-shard worker threads of
    /// a parallel world (see `Scenario::world_workers`).
    type Byz: Clone + fmt::Debug + Send + Sync + 'static;

    /// Display name ("SC", "BFT", …).
    const NAME: &'static str;

    /// Total node count (order processes only, clients excluded).
    fn node_count(knobs: &Knobs) -> usize;

    /// The network joining the order processes. Default: uniform LAN.
    fn network(knobs: &Knobs, links: &Links) -> NetworkModel {
        let _ = knobs;
        NetworkModel::uniform(links.lan.clone())
    }

    /// Constructs the actor for every order process, in node-index order.
    /// `byz` lists the scripted misbehaviours from the fault plan.
    #[allow(clippy::type_complexity)]
    fn build_nodes(
        knobs: &Knobs,
        byz: &[(ProcessId, Self::Byz)],
    ) -> Vec<Box<dyn Actor<Msg = Self::Msg, Event = ProtocolEvent>>>;

    /// Wraps a client request into this protocol's wire message.
    fn request_msg(req: Request) -> Self::Msg;

    /// The scripted misbehaviour that corrupts the order carrying
    /// sequence number `o` in the value domain (the Figure-6 fail-over
    /// trigger), if this protocol scripts one. Default: none — scenario
    /// validation rejects value-domain fault plans for such protocols.
    fn value_fault(o: sofb_proto::ids::SeqNo) -> Option<Self::Byz> {
        let _ = o;
        None
    }
}
