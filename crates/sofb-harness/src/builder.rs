//! The single world-assembly code path: [`WorldBuilder`] builds a
//! simulated deployment of *any* [`Protocol`] — order processes, network
//! shape, synthetic clients and fault plan — and returns a running
//! [`Deployment`].

use sofb_crypto::scheme::SchemeId;
use sofb_proto::ids::{ClientId, ProcessId};
use sofb_proto::topology::Variant;
use sofb_sim::cpu::CpuModel;
use sofb_sim::delay::LinkModel;
use sofb_sim::engine::World;
use sofb_sim::time::{SimDuration, SimTime};

use crate::client::{Arrival, ClientActor, ClientSpec};
use crate::event::ProtocolEvent;
use crate::fault::{FaultPlan, FaultSpec};
use crate::population::ClientPopulation;
use crate::protocol::{Knobs, Links, Protocol};
use sofb_sim::engine::Actor;

/// Builder for a complete simulated deployment of protocol `P`.
///
/// # Examples
///
/// Protocol crates provide the `P` implementations; assembling any of
/// them is the same four lines:
///
/// ```ignore
/// let mut d = WorldBuilder::<ScProtocol>::new(2)
///     .client(ClientSpec::new(100.0, 100, SimTime::from_secs(2)))
///     .build();
/// d.start();
/// d.run_until(SimTime::from_secs(4));
/// ```
#[derive(Debug)]
pub struct WorldBuilder<P: Protocol> {
    knobs: Knobs,
    links: Links,
    cpu: CpuModel,
    clients: Vec<(ClientSpec, Arrival, usize)>,
    faults: FaultPlan<P::Byz>,
}

impl<P: Protocol> WorldBuilder<P> {
    /// Starts a builder for resilience `f` with the paper's defaults.
    pub fn new(f: u32) -> Self {
        WorldBuilder {
            knobs: Knobs {
                f,
                ..Knobs::default()
            },
            links: Links::default(),
            cpu: CpuModel::default(),
            clients: Vec::new(),
            faults: FaultPlan::new(),
        }
    }

    /// Replaces the full knob set.
    pub fn knobs(mut self, knobs: Knobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// Sets the SC layout flavour (ignored by BFT/CT).
    pub fn variant(mut self, variant: Variant) -> Self {
        self.knobs.variant = variant;
        self
    }

    /// Sets the crypto scheme.
    pub fn scheme(mut self, scheme: SchemeId) -> Self {
        self.knobs.scheme = scheme;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.knobs.seed = seed;
        self
    }

    /// Sets the batching interval (the paper sweeps 40–500 ms).
    pub fn batching_interval(mut self, d: SimDuration) -> Self {
        self.knobs.batching_interval = d;
        self
    }

    /// Sets the shadow's proposal-timeliness estimate (SC/SCR).
    pub fn order_timeout(mut self, d: SimDuration) -> Self {
        self.knobs.order_timeout = d;
        self
    }

    /// Pads BackLogs (Figure 6's size sweep; SC/SCR).
    pub fn backlog_pad(mut self, pad: usize) -> Self {
        self.knobs.backlog_pad = pad;
        self
    }

    /// Sets the checkpoint interval (0 disables log truncation; SC/SCR).
    pub fn checkpoint_interval(mut self, every: u64) -> Self {
        self.knobs.checkpoint_interval = every;
        self
    }

    /// Enables/disables time-domain failure detection (SC/SCR).
    pub fn time_checks(mut self, on: bool) -> Self {
        self.knobs.time_checks = on;
        self
    }

    /// Enables BFT view changes with the given request timeout.
    pub fn request_timeout(mut self, d: SimDuration) -> Self {
        self.knobs.request_timeout = Some(d);
        self
    }

    /// Overrides the CPU model of every process node.
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Overrides the asynchronous-network link model.
    pub fn lan_link(mut self, link: LinkModel) -> Self {
        self.links.lan = link;
        self
    }

    /// Overrides the intra-pair link model (SC/SCR).
    pub fn pair_link(mut self, link: LinkModel) -> Self {
        self.links.pair = link;
        self
    }

    /// Adds a constant-rate client.
    pub fn client(mut self, spec: ClientSpec) -> Self {
        self.clients.push((spec, Arrival::Constant, 1));
        self
    }

    /// Adds an open-loop Poisson client.
    pub fn poisson_client(mut self, spec: ClientSpec) -> Self {
        self.clients.push((spec, Arrival::Poisson, 1));
        self
    }

    /// Adds `population` open-loop clients sharing one spec. A
    /// population of 1 is an ordinary [`ClientActor`]; larger counts
    /// are aggregated into a single [`ClientPopulation`] actor.
    ///
    /// # Panics
    ///
    /// Panics if `population` is 0.
    pub fn client_population(
        mut self,
        spec: ClientSpec,
        arrival: Arrival,
        population: usize,
    ) -> Self {
        assert!(population >= 1, "client population must be at least 1");
        self.clients.push((spec, arrival, population));
        self
    }

    /// Installs a fault on one process (crash/mute/delay work on every
    /// variant; Byzantine entries are protocol-specific).
    pub fn fault(mut self, p: ProcessId, spec: FaultSpec<P::Byz>) -> Self {
        self.faults.push(p, spec);
        self
    }

    /// Assembles the world.
    pub fn build(self) -> Deployment<P> {
        let n = P::node_count(&self.knobs);
        let net = P::network(&self.knobs, &self.links);
        let mut world: World<P::Msg, ProtocolEvent> = World::new(net, self.knobs.seed);

        let byz = self.faults.byzantine();
        let nodes = P::build_nodes(&self.knobs, &byz);
        assert_eq!(
            nodes.len(),
            n,
            "{}: node_count/build_nodes mismatch",
            P::NAME
        );
        for actor in nodes {
            world.add_node(actor, self.cpu);
        }

        let mut client_nodes = Vec::with_capacity(self.clients.len());
        // Base ids advance by each entry's population — identical to
        // the historical `ClientId(k)` numbering when every population
        // is 1.
        let mut next_id = 0u32;
        for (spec, arrival, population) in &self.clients {
            let client: Box<dyn Actor<Msg = P::Msg, Event = ProtocolEvent>> = if *population > 1 {
                Box::new(ClientPopulation::new(
                    ClientId(next_id),
                    *population,
                    n,
                    spec,
                    *arrival,
                    self.knobs.seed,
                    P::request_msg,
                ))
            } else {
                Box::new(ClientActor::new(
                    ClientId(next_id),
                    n,
                    spec,
                    *arrival,
                    P::request_msg,
                ))
            };
            client_nodes.push(world.add_node(client, CpuModel::zero()));
            next_id += *population as u32;
        }

        // Engine-level faults apply to order processes only (Byzantine
        // entries were consumed by build_nodes).
        for (p, spec) in self.faults.entries() {
            let node = p.0 as usize;
            assert!(node < n, "fault target {p} outside process set");
            crate::fault::apply_engine_fault(&mut world, node, spec);
        }

        Deployment {
            world,
            n_processes: n,
            client_nodes,
            knobs: self.knobs,
        }
    }
}

/// A built deployment of protocol `P`.
pub struct Deployment<P: Protocol> {
    /// The simulator world (drive with [`Deployment::start`] /
    /// [`Deployment::run_until`], or directly).
    pub world: World<P::Msg, ProtocolEvent>,
    /// Number of order processes (nodes `0..n_processes`).
    pub n_processes: usize,
    /// Node indices of the synthetic clients.
    pub client_nodes: Vec<usize>,
    /// The knob set the deployment was built with.
    pub knobs: Knobs,
}

impl<P: Protocol> Deployment<P> {
    /// Starts all nodes.
    pub fn start(&mut self) {
        self.world.start();
    }

    /// Runs until the given virtual time.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }
}
