//! # sofb-harness — the protocol-agnostic deployment harness
//!
//! One generic layer between the discrete-event simulator (`sofb-sim`)
//! and the protocol implementations (`sofb-core`, `sofb-bft`, `sofb-ct`):
//!
//! * [`protocol::Protocol`] — what a total-order protocol must provide to
//!   be hosted: a wire message type, node construction from shared
//!   [`protocol::Knobs`], a network shape, and a request constructor;
//! * [`builder::WorldBuilder`] — the single world-assembly code path:
//!   every deployment of every variant (SC, SCR, BFT, CT) is built here;
//! * [`shard::ShardedWorldBuilder`] — the sharded layer above it: `S`
//!   independent ordering groups of any protocol in one world, with a
//!   key-based [`shard::ShardRouter`] (hash or explicit ranges) spreading
//!   client requests over the groups;
//! * [`client::ClientActor`] — the one synthetic client implementation,
//!   with constant-rate or open-loop Poisson arrivals, multicasting to
//!   its flat world or routing per request across shards;
//! * [`population::ClientPopulation`] — N open-loop clients aggregated
//!   into one actor by Poisson superposition (aggregate rate N·λ,
//!   per-client ids synthesized deterministically at emission), so a
//!   shard carries 10⁵–10⁶ simulated users at O(1) actor cost;
//! * `parallel` (internal) — the parallel sharded runner: each shard of
//!   a multi-shard [`scenario::Scenario`] executes in its own isolated
//!   engine on a worker thread, and the per-shard traces merge into the
//!   realized global schedule deterministically (1 worker ≡ N workers,
//!   bit for bit — see `Scenario::world_workers`);
//! * [`fault::FaultSpec`] — the uniform fault plan: crash, mute and
//!   delayed faults work on every variant (the engine applies them);
//!   Byzantine scripts remain protocol-specific via
//!   [`protocol::Protocol::Byz`];
//! * [`event::ProtocolEvent`] — the uniform observation vocabulary all
//!   variants emit, which is what lets one analysis module measure every
//!   §5 metric for every protocol;
//! * [`analysis`] — that analysis module: the §5 measurements and the
//!   safety checks, over [`event::ProtocolEvent`] logs of any variant;
//! * [`obs`] — protocol phase spans (`order`, `commit`, milestone
//!   instants) derived deterministically from the observation log, the
//!   harness half of the `sofb-obs` tracing story (the engine half lives
//!   behind `sofb-sim`'s `TraceSink` hooks);
//! * [`scenario`] — the declarative layer on top of both builders: a
//!   validated [`scenario::Scenario`] value lowers onto the flat or
//!   sharded path and yields a uniform [`scenario::Report`], and a
//!   [`scenario::SweepGrid`] expands axes over any scenario field into a
//!   deterministic, parallel-executed experiment matrix.
//!
//! Protocol crates implement [`protocol::Protocol`] and keep their
//! historical `ScWorldBuilder` / `BftWorldBuilder` / `CtWorldBuilder`
//! types as thin facades over [`builder::WorldBuilder`], so existing
//! experiment code keeps compiling while all new scenario work lands once
//! and applies to all four variants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod client;
pub mod event;
pub mod fault;
pub mod obs;
mod parallel;
pub mod population;
pub mod protocol;
pub mod scenario;
pub mod shard;

pub use builder::{Deployment, WorldBuilder};
pub use client::{Arrival, ClientActor, ClientSpec};
pub use event::ProtocolEvent;
pub use fault::{FaultPlan, FaultSpec};
pub use population::ClientPopulation;
pub use protocol::{Knobs, Links, Protocol, ProtocolKind};
pub use scenario::{
    Axis, ClientLoad, GridPoint, GridReport, LatencySummary, ObservedRun, Report, RouterPolicy,
    Scenario, ScenarioError, ScenarioFault, ScenarioFaultKind, ShardReport, SweepGrid, Window,
};
pub use shard::{
    RouterConfigError, ShardLoad, ShardRouter, ShardedDeployment, ShardedWorldBuilder,
};
