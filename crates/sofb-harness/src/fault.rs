//! The uniform fault plan: failure behaviours every protocol variant can
//! be subjected to, plus a protocol-specific Byzantine escape hatch.
//!
//! Crash, mute and delay are *engine-level* faults — the simulator itself
//! applies them, so they are expressible for SC, SCR, BFT and CT alike
//! without any per-protocol plumbing. Scripted Byzantine misbehaviours
//! (corrupt a digest, rubber-stamp an endorsement, …) are inherently
//! protocol-specific, so they ride along as the [`Protocol::Byz`]
//! associated type.
//!
//! [`Protocol::Byz`]: crate::protocol::Protocol

use std::fmt;

use sofb_proto::ids::ProcessId;
use sofb_sim::engine::{WireSize, World};
use sofb_sim::time::{SimDuration, SimTime};

/// One scripted fault on one process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultSpec<B> {
    /// Halt the process entirely at the given time: its queue is
    /// discarded and it receives no further callbacks.
    Crash {
        /// When the crash takes effect.
        at: SimTime,
    },
    /// Within the window the process keeps running but every message it
    /// sends is dropped (silent-but-alive; the time-domain fault).
    Mute {
        /// When the mute takes effect.
        from: SimTime,
        /// When the mute lifts (`None`: forever). A bounded window models
        /// pre-GST silence in partial-synchrony scenarios.
        until: Option<SimTime>,
    },
    /// Within the window every message the process sends incurs extra
    /// latency (a degraded uplink / overloaded host).
    Delay {
        /// When the degradation starts.
        from: SimTime,
        /// When the degradation lifts (`None`: forever). A bounded window
        /// models pre-GST asynchrony that stabilizes at GST.
        until: Option<SimTime>,
        /// Added one-way latency.
        extra: SimDuration,
    },
    /// Within the window every message the process sends is transmitted
    /// twice — the duplicate under an independently sampled link latency
    /// (an at-least-once transport retrying spuriously).
    Duplicate {
        /// When duplication starts.
        from: SimTime,
        /// When duplication stops (`None`: forever).
        until: Option<SimTime>,
    },
    /// Within the window every message the process sends incurs an extra
    /// uniformly sampled delay in `[0, jitter]` — seeded, deterministic
    /// reordering within delay bounds.
    Reorder {
        /// When the jitter starts.
        from: SimTime,
        /// When the jitter stops (`None`: forever).
        until: Option<SimTime>,
        /// Upper bound of the sampled per-message extra delay.
        jitter: SimDuration,
    },
    /// A protocol-specific scripted misbehaviour (value-domain faults,
    /// rubber-stamping shadows, mute primaries, …).
    Byzantine(B),
}

impl<B> FaultSpec<B> {
    /// A crash at `at` (convenience constructor; the engine-level faults
    /// are generic over the protocol's Byzantine type, so these help
    /// write one fault scenario against several protocols).
    pub fn crash(at: SimTime) -> Self {
        FaultSpec::Crash { at }
    }

    /// A mute from `from`, forever.
    pub fn mute(from: SimTime) -> Self {
        FaultSpec::Mute { from, until: None }
    }

    /// A mute for the window `[from, until)` — the pre-GST silence shape
    /// of partial-synchrony scenarios.
    pub fn mute_until(from: SimTime, until: SimTime) -> Self {
        FaultSpec::Mute {
            from,
            until: Some(until),
        }
    }

    /// A send delay of `extra` from `from`, forever.
    pub fn delay(from: SimTime, extra: SimDuration) -> Self {
        FaultSpec::Delay {
            from,
            until: None,
            extra,
        }
    }

    /// A send delay of `extra` for the window `[from, until)` — pre-GST
    /// asynchrony that lifts at the Global Stabilization Time.
    pub fn delay_until(from: SimTime, until: SimTime, extra: SimDuration) -> Self {
        FaultSpec::Delay {
            from,
            until: Some(until),
            extra,
        }
    }

    /// Message duplication for the window `[from, until)`.
    pub fn duplicate_until(from: SimTime, until: SimTime) -> Self {
        FaultSpec::Duplicate {
            from,
            until: Some(until),
        }
    }

    /// Send reordering (jitter up to `jitter`) for the window
    /// `[from, until)`.
    pub fn reorder_until(from: SimTime, until: SimTime, jitter: SimDuration) -> Self {
        FaultSpec::Reorder {
            from,
            until: Some(until),
            jitter,
        }
    }
}

/// Installs one engine-level fault on world node `node` (Byzantine
/// entries are consumed by the protocol's node constructor instead and
/// are a no-op here). Shared by the flat and sharded world builders.
pub(crate) fn apply_engine_fault<M, E, B>(world: &mut World<M, E>, node: usize, spec: &FaultSpec<B>)
where
    M: Clone + WireSize + fmt::Debug,
    E: fmt::Debug,
{
    match spec {
        FaultSpec::Crash { at } => world.crash_at(node, *at),
        FaultSpec::Mute { from, until } => world.mute_between(node, *from, *until),
        FaultSpec::Delay { from, until, extra } => {
            world.delay_sends_between(node, *from, *until, *extra)
        }
        FaultSpec::Duplicate { from, until } => world.duplicate_sends_between(node, *from, *until),
        FaultSpec::Reorder {
            from,
            until,
            jitter,
        } => world.reorder_sends_between(node, *from, *until, *jitter),
        FaultSpec::Byzantine(_) => {}
    }
}

/// A complete fault plan: which process misbehaves, and how.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan<B> {
    entries: Vec<(ProcessId, FaultSpec<B>)>,
}

impl<B: Clone> FaultPlan<B> {
    /// An empty (fail-free) plan.
    pub fn new() -> Self {
        FaultPlan {
            entries: Vec::new(),
        }
    }

    /// Adds a fault.
    pub fn push(&mut self, p: ProcessId, spec: FaultSpec<B>) {
        self.entries.push((p, spec));
    }

    /// All scheduled faults.
    pub fn entries(&self) -> &[(ProcessId, FaultSpec<B>)] {
        &self.entries
    }

    /// The Byzantine entries only (what a protocol's node constructor
    /// consumes).
    pub fn byzantine(&self) -> Vec<(ProcessId, B)> {
        self.entries
            .iter()
            .filter_map(|(p, s)| match s {
                FaultSpec::Byzantine(b) => Some((*p, b.clone())),
                _ => None,
            })
            .collect()
    }
}
