//! Event-log analysis: the §5 measurements and the safety checks used by
//! tests and sweep runners.
//!
//! The functions here consume the uniform [`ProtocolEvent`] observation
//! log, so one measurement pass covers every hosted variant (SC, SCR,
//! BFT, CT). `sofb_core::analysis` re-exports this module under its
//! historical path.

use std::collections::{BTreeMap, HashMap};

use sofb_proto::ids::SeqNo;
use sofb_proto::request::{Digest, RequestId};
use sofb_sim::engine::TimedEvent;
use sofb_sim::metrics::Histogram;
use sofb_sim::time::SimTime;

use crate::event::ProtocolEvent;
use crate::shard::ShardRouter;

/// Order latency per sequence number: batch formation (`formed_at_ns`,
/// stamped by the coordinator) to the *first* process committing it —
/// exactly the paper's latency definition (§5).
pub fn order_latencies(events: &[TimedEvent<ProtocolEvent>]) -> BTreeMap<SeqNo, f64> {
    let mut first_commit: BTreeMap<SeqNo, (SimTime, u64)> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::Committed {
            o,
            formed_at_ns,
            requests,
            ..
        } = &ev.event
        {
            // Install Starts commit as empty batches; they carry no
            // client-visible ordering work and are excluded from latency.
            if *requests == 0 {
                continue;
            }
            first_commit
                .entry(*o)
                .and_modify(|(t, _)| {
                    if ev.time < *t {
                        *t = ev.time;
                    }
                })
                .or_insert((ev.time, *formed_at_ns));
        }
    }
    first_commit
        .into_iter()
        .map(|(o, (t, formed))| (o, (t.as_ns().saturating_sub(formed)) as f64 / 1e6))
        .collect()
}

/// Mean order latency (ms) for batches *formed* in `[from, to]` —
/// commits may land later (the harness runs a drain period so saturated
/// batches still report their latency, as the paper's log-scale figures
/// do).
pub fn mean_latency_between(
    events: &[TimedEvent<ProtocolEvent>],
    from: SimTime,
    to: SimTime,
) -> Option<f64> {
    let mut h = Histogram::new();
    let mut first_commit: BTreeMap<SeqNo, (SimTime, u64)> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::Committed {
            o, formed_at_ns, ..
        } = &ev.event
        {
            first_commit
                .entry(*o)
                .and_modify(|(t, _)| {
                    if ev.time < *t {
                        *t = ev.time;
                    }
                })
                .or_insert((ev.time, *formed_at_ns));
        }
    }
    for (t, formed) in first_commit.values() {
        if SimTime(*formed) >= from && SimTime(*formed) <= to {
            h.record((t.as_ns().saturating_sub(*formed)) as f64 / 1e6);
        }
    }
    (!h.is_empty()).then(|| h.mean())
}

/// Censored mean order latency (ms): every batch *proposed* with a
/// formation instant in `[from, to]` contributes either its true
/// first-commit latency or, if it never committed before `horizon`, the
/// lower bound `horizon − formed`. Deeply saturated sweep points thus
/// report finite (run-length-scaled) values instead of dropping out, the
/// way the paper's log-scale saturation points do.
pub fn mean_latency_censored(
    events: &[TimedEvent<ProtocolEvent>],
    from: SimTime,
    to: SimTime,
    horizon: SimTime,
) -> Option<f64> {
    let h = latency_histogram_censored(events, from, to, horizon);
    (!h.is_empty()).then(|| h.mean())
}

/// The full censored order-latency distribution (ms) for batches formed
/// in `[from, to]` — the same censoring rule as
/// [`mean_latency_censored`], but exposing the whole histogram so
/// harnesses can report medians and tail percentiles.
pub fn latency_histogram_censored(
    events: &[TimedEvent<ProtocolEvent>],
    from: SimTime,
    to: SimTime,
    horizon: SimTime,
) -> Histogram {
    let mut formed: BTreeMap<SeqNo, u64> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::OrderProposed {
            o, formed_at_ns, ..
        } = &ev.event
        {
            formed.entry(*o).or_insert(*formed_at_ns);
        }
    }
    let mut first_commit: BTreeMap<SeqNo, SimTime> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::Committed { o, .. } = &ev.event {
            let e = first_commit.entry(*o).or_insert(ev.time);
            if ev.time < *e {
                *e = ev.time;
            }
        }
    }
    let mut h = Histogram::new();
    for (o, f) in &formed {
        if SimTime(*f) < from || SimTime(*f) > to {
            continue;
        }
        let end = first_commit.get(o).copied().unwrap_or(horizon);
        h.record((end.as_ns().saturating_sub(*f)) as f64 / 1e6);
    }
    h
}

/// Mean order latency (ms) over commits in `[warmup, end]`, excluding the
/// warm-up transient.
pub fn mean_latency_ms(events: &[TimedEvent<ProtocolEvent>], warmup: SimTime) -> Option<f64> {
    let mut h = Histogram::new();
    let mut first_commit: BTreeMap<SeqNo, (SimTime, u64)> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::Committed {
            o, formed_at_ns, ..
        } = &ev.event
        {
            first_commit
                .entry(*o)
                .and_modify(|(t, _)| {
                    if ev.time < *t {
                        *t = ev.time;
                    }
                })
                .or_insert((ev.time, *formed_at_ns));
        }
    }
    for (t, formed) in first_commit.values() {
        if SimTime(*formed) >= warmup {
            h.record((t.as_ns().saturating_sub(*formed)) as f64 / 1e6);
        }
    }
    (!h.is_empty()).then(|| h.mean())
}

/// Committed requests per process (node → count), the basis of the
/// throughput metric ("messages committed by an order process per
/// second").
pub fn commits_per_node(events: &[TimedEvent<ProtocolEvent>]) -> HashMap<usize, usize> {
    let mut out: HashMap<usize, usize> = HashMap::new();
    for ev in events {
        if let ProtocolEvent::Committed { requests, .. } = &ev.event {
            *out.entry(ev.node).or_insert(0) += requests;
        }
    }
    out
}

/// Throughput in requests committed per process per second, averaged over
/// processes that committed anything, within `[warmup, end]`.
pub fn throughput_per_process(
    events: &[TimedEvent<ProtocolEvent>],
    warmup: SimTime,
    end: SimTime,
) -> f64 {
    let mut per_node: HashMap<usize, usize> = HashMap::new();
    for ev in events {
        if ev.time < warmup || ev.time > end {
            continue;
        }
        if let ProtocolEvent::Committed { requests, .. } = &ev.event {
            *per_node.entry(ev.node).or_insert(0) += requests;
        }
    }
    if per_node.is_empty() {
        return 0.0;
    }
    let window_s = (end - warmup).as_ns() as f64 / 1e9;
    let total: usize = per_node.values().sum();
    total as f64 / per_node.len() as f64 / window_s
}

/// Fail-over latency (ms): first fail-signal issuance to the first
/// Start-with-tuples issuance (§5's definition).
pub fn failover_latency_ms(events: &[TimedEvent<ProtocolEvent>]) -> Option<f64> {
    let fs_at = events.iter().find_map(|ev| {
        matches!(ev.event, ProtocolEvent::FailSignalIssued { .. }).then_some(ev.time)
    })?;
    let cert_at = events.iter().find_map(|ev| match ev.event {
        ProtocolEvent::StartCertIssued { .. } if ev.time >= fs_at => Some(ev.time),
        _ => None,
    })?;
    Some((cert_at - fs_at).as_ns() as f64 / 1e6)
}

/// Verifies total-order safety: no two processes commit different digests
/// at the same sequence number, and no process commits the same sequence
/// number twice.
pub fn check_total_order(events: &[TimedEvent<ProtocolEvent>]) -> Result<(), String> {
    let mut bindings: HashMap<SeqNo, Digest> = HashMap::new();
    let mut per_node_seen: HashMap<(usize, SeqNo), Digest> = HashMap::new();
    for ev in events {
        if let ProtocolEvent::Committed { o, digest, .. } = &ev.event {
            if let Some(prev) = per_node_seen.get(&(ev.node, *o)) {
                if prev != digest {
                    return Err(format!(
                        "node {} committed {o:?} twice with different digests",
                        ev.node
                    ));
                }
                continue;
            }
            per_node_seen.insert((ev.node, *o), *digest);
            match bindings.get(o) {
                None => {
                    bindings.insert(*o, *digest);
                }
                Some(prev) if prev == digest => {}
                Some(prev) => {
                    return Err(format!(
                        "divergent commit at {o:?}: {} vs {} (node {})",
                        prev.short_hex(),
                        digest.short_hex(),
                        ev.node
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Verifies exactly-once commit: every request id is bound to exactly one
/// `(shard, sequence number)` across the whole trace. Nodes of one shard
/// re-announcing the same binding is the normal replication echo; the
/// same request surfacing under a second sequence number or on a second
/// shard is a double commit. `nodes_per_shard` maps a global node index
/// to its ordering group (shard `= node / nodes_per_shard`; pass the
/// world size for a flat world).
pub fn check_exactly_once(
    events: &[TimedEvent<ProtocolEvent>],
    nodes_per_shard: usize,
) -> Result<(), String> {
    let mut bindings: HashMap<RequestId, (usize, SeqNo)> = HashMap::new();
    for ev in events {
        if let ProtocolEvent::Committed { o, request_ids, .. } = &ev.event {
            let shard = ev.node / nodes_per_shard;
            for rid in request_ids.iter() {
                match bindings.get(rid) {
                    None => {
                        bindings.insert(*rid, (shard, *o));
                    }
                    Some(&(s, seq)) if s == shard && seq == *o => {}
                    Some(&(s, seq)) => {
                        return Err(format!(
                            "request {rid:?} committed twice: shard {s} at {seq:?} \
                             vs shard {shard} at {o:?} (node {})",
                            ev.node
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Verifies shard isolation: every committed request landed on the shard
/// the router assigns it to. A commit elsewhere means client traffic
/// leaked across ordering-group boundaries.
pub fn check_no_cross_shard_leakage(
    events: &[TimedEvent<ProtocolEvent>],
    nodes_per_shard: usize,
    router: &ShardRouter,
) -> Result<(), String> {
    for ev in events {
        if let ProtocolEvent::Committed { o, request_ids, .. } = &ev.event {
            let shard = ev.node / nodes_per_shard;
            for rid in request_ids.iter() {
                let expected = router.route_request(rid.client, rid.seq);
                if expected != shard {
                    return Err(format!(
                        "request {rid:?} routed to shard {expected} but committed \
                         at {o:?} on shard {shard} (node {})",
                        ev.node
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The largest sequence number committed by every one of `nodes` (liveness
/// floor), if all of them committed anything.
pub fn common_committed_prefix(
    events: &[TimedEvent<ProtocolEvent>],
    nodes: &[usize],
) -> Option<SeqNo> {
    let mut max_per_node: HashMap<usize, SeqNo> = HashMap::new();
    for ev in events {
        if let ProtocolEvent::Committed { o, .. } = &ev.event {
            let e = max_per_node.entry(ev.node).or_insert(*o);
            if *o > *e {
                *e = *o;
            }
        }
    }
    nodes
        .iter()
        .map(|n| max_per_node.get(n).copied())
        .min()
        .flatten()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_proto::ids::{ClientId, Rank};

    fn committed(
        node: usize,
        t_ms: u64,
        o: u64,
        digest: u8,
        formed_ms: u64,
    ) -> TimedEvent<ProtocolEvent> {
        TimedEvent {
            time: SimTime::from_ms(t_ms),
            node,
            event: ProtocolEvent::Committed {
                c: Rank(1),
                o: SeqNo(o),
                digest: Digest::new(&[digest]),
                requests: 2,
                request_ids: Vec::new().into(),
                formed_at_ns: SimTime::from_ms(formed_ms).as_ns(),
            },
        }
    }

    #[test]
    fn latency_uses_first_commit() {
        let events = vec![
            committed(0, 30, 1, 1, 10),
            committed(1, 25, 1, 1, 10),
            committed(2, 40, 1, 1, 10),
        ];
        let lat = order_latencies(&events);
        assert_eq!(lat[&SeqNo(1)], 15.0);
    }

    #[test]
    fn mean_latency_respects_warmup() {
        let events = vec![committed(0, 20, 1, 1, 10), committed(0, 200, 2, 2, 150)];
        let m = mean_latency_ms(&events, SimTime::from_ms(100)).unwrap();
        assert_eq!(m, 50.0);
        assert!(mean_latency_ms(&events, SimTime::from_ms(1_000)).is_none());
    }

    #[test]
    fn throughput_counts_requests() {
        let events = vec![committed(0, 500, 1, 1, 400), committed(1, 600, 1, 1, 400)];
        // 2 requests per commit, one commit per node, over 1 s window.
        let tput = throughput_per_process(&events, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(tput, 2.0);
    }

    #[test]
    fn safety_checker_catches_divergence() {
        let ok = vec![committed(0, 10, 1, 7, 5), committed(1, 12, 1, 7, 5)];
        assert!(check_total_order(&ok).is_ok());
        let bad = vec![committed(0, 10, 1, 7, 5), committed(1, 12, 1, 8, 5)];
        assert!(check_total_order(&bad).is_err());
    }

    /// Commit of `rids` at `(node, o)` — the shape the fuzz-oracle
    /// mutation tests corrupt.
    fn committed_rids(node: usize, o: u64, rids: &[(u32, u64)]) -> TimedEvent<ProtocolEvent> {
        let ids: Vec<RequestId> = rids
            .iter()
            .map(|&(c, s)| RequestId {
                client: ClientId(c),
                seq: s,
            })
            .collect();
        TimedEvent {
            time: SimTime::from_ms(10),
            node,
            event: ProtocolEvent::Committed {
                c: Rank(1),
                o: SeqNo(o),
                digest: Digest::new(&[o as u8]),
                requests: ids.len(),
                request_ids: ids.into(),
                formed_at_ns: SimTime::from_ms(5).as_ns(),
            },
        }
    }

    // A checker that can't fail is not a fuzz oracle: each corrupted
    // trace below must trip exactly the invariant it violates.

    #[test]
    fn safety_checker_catches_per_node_double_commit() {
        let bad = vec![committed(0, 10, 1, 7, 5), committed(0, 12, 1, 8, 5)];
        let err = check_total_order(&bad).unwrap_err();
        assert!(err.contains("twice"), "unexpected message: {err}");
    }

    #[test]
    fn exactly_once_accepts_replication_echo() {
        // Both nodes of shard 0 announce the same binding: the normal
        // replicated-commit shape, not a violation.
        let ok = vec![
            committed_rids(0, 1, &[(0, 0), (0, 1)]),
            committed_rids(1, 1, &[(0, 0), (0, 1)]),
        ];
        assert!(check_exactly_once(&ok, 4).is_ok());
    }

    #[test]
    fn exactly_once_catches_double_commit() {
        // The same request surfaces again under a second sequence number.
        let bad = vec![
            committed_rids(0, 1, &[(0, 0)]),
            committed_rids(0, 2, &[(0, 0)]),
        ];
        let err = check_exactly_once(&bad, 4).unwrap_err();
        assert!(err.contains("committed twice"), "unexpected message: {err}");
        // … or on a second shard (nodes 0 and 4 with 4 nodes per shard).
        let bad = vec![
            committed_rids(0, 1, &[(0, 0)]),
            committed_rids(4, 1, &[(0, 0)]),
        ];
        assert!(check_exactly_once(&bad, 4).is_err());
    }

    #[test]
    fn leakage_checker_catches_wrong_shard_commit() {
        let router = ShardRouter::hash(2);
        // Route each request to its proper shard: a clean two-shard trace.
        let (mine, theirs): (Vec<_>, Vec<_>) = (0..8u64)
            .map(|s| (0u32, s))
            .partition(|&(c, s)| router.route_request(ClientId(c), s) == 0);
        let ok = vec![committed_rids(0, 1, &mine), committed_rids(4, 1, &theirs)];
        assert!(check_no_cross_shard_leakage(&ok, 4, &router).is_ok());
        // Swap the shards: every commit now sits on the wrong group.
        let bad = vec![committed_rids(0, 1, &theirs), committed_rids(4, 1, &mine)];
        let err = check_no_cross_shard_leakage(&bad, 4, &router).unwrap_err();
        assert!(err.contains("routed to shard"), "unexpected message: {err}");
    }

    #[test]
    fn failover_interval() {
        let events = vec![
            TimedEvent {
                time: SimTime::from_ms(100),
                node: 5,
                event: ProtocolEvent::FailSignalIssued {
                    pair: Rank(1),
                    value_domain: true,
                },
            },
            TimedEvent {
                time: SimTime::from_ms(130),
                node: 1,
                event: ProtocolEvent::StartCertIssued {
                    c: Rank(2),
                    start_o: SeqNo(4),
                },
            },
        ];
        assert_eq!(failover_latency_ms(&events), Some(30.0));
        assert_eq!(failover_latency_ms(&events[..1]), None);
    }

    #[test]
    fn common_prefix() {
        let events = vec![committed(0, 10, 3, 1, 5), committed(1, 10, 2, 1, 5)];
        assert_eq!(common_committed_prefix(&events, &[0, 1]), Some(SeqNo(2)));
        assert_eq!(common_committed_prefix(&events, &[0, 1, 2]), None);
    }
}
