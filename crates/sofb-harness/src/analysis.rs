//! Event-log analysis: the §5 measurements and the safety checks used by
//! tests and sweep runners.
//!
//! The functions here consume the uniform [`ProtocolEvent`] observation
//! log, so one measurement pass covers every hosted variant (SC, SCR,
//! BFT, CT). `sofb_core::analysis` re-exports this module under its
//! historical path.

use std::collections::{BTreeMap, HashMap};

use sofb_proto::ids::SeqNo;
use sofb_proto::request::Digest;
use sofb_sim::engine::TimedEvent;
use sofb_sim::metrics::Histogram;
use sofb_sim::time::SimTime;

use crate::event::ProtocolEvent;

/// Order latency per sequence number: batch formation (`formed_at_ns`,
/// stamped by the coordinator) to the *first* process committing it —
/// exactly the paper's latency definition (§5).
pub fn order_latencies(events: &[TimedEvent<ProtocolEvent>]) -> BTreeMap<SeqNo, f64> {
    let mut first_commit: BTreeMap<SeqNo, (SimTime, u64)> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::Committed {
            o,
            formed_at_ns,
            requests,
            ..
        } = &ev.event
        {
            // Install Starts commit as empty batches; they carry no
            // client-visible ordering work and are excluded from latency.
            if *requests == 0 {
                continue;
            }
            first_commit
                .entry(*o)
                .and_modify(|(t, _)| {
                    if ev.time < *t {
                        *t = ev.time;
                    }
                })
                .or_insert((ev.time, *formed_at_ns));
        }
    }
    first_commit
        .into_iter()
        .map(|(o, (t, formed))| (o, (t.as_ns().saturating_sub(formed)) as f64 / 1e6))
        .collect()
}

/// Mean order latency (ms) for batches *formed* in `[from, to]` —
/// commits may land later (the harness runs a drain period so saturated
/// batches still report their latency, as the paper's log-scale figures
/// do).
pub fn mean_latency_between(
    events: &[TimedEvent<ProtocolEvent>],
    from: SimTime,
    to: SimTime,
) -> Option<f64> {
    let mut h = Histogram::new();
    let mut first_commit: BTreeMap<SeqNo, (SimTime, u64)> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::Committed {
            o, formed_at_ns, ..
        } = &ev.event
        {
            first_commit
                .entry(*o)
                .and_modify(|(t, _)| {
                    if ev.time < *t {
                        *t = ev.time;
                    }
                })
                .or_insert((ev.time, *formed_at_ns));
        }
    }
    for (t, formed) in first_commit.values() {
        if SimTime(*formed) >= from && SimTime(*formed) <= to {
            h.record((t.as_ns().saturating_sub(*formed)) as f64 / 1e6);
        }
    }
    (!h.is_empty()).then(|| h.mean())
}

/// Censored mean order latency (ms): every batch *proposed* with a
/// formation instant in `[from, to]` contributes either its true
/// first-commit latency or, if it never committed before `horizon`, the
/// lower bound `horizon − formed`. Deeply saturated sweep points thus
/// report finite (run-length-scaled) values instead of dropping out, the
/// way the paper's log-scale saturation points do.
pub fn mean_latency_censored(
    events: &[TimedEvent<ProtocolEvent>],
    from: SimTime,
    to: SimTime,
    horizon: SimTime,
) -> Option<f64> {
    let h = latency_histogram_censored(events, from, to, horizon);
    (!h.is_empty()).then(|| h.mean())
}

/// The full censored order-latency distribution (ms) for batches formed
/// in `[from, to]` — the same censoring rule as
/// [`mean_latency_censored`], but exposing the whole histogram so
/// harnesses can report medians and tail percentiles.
pub fn latency_histogram_censored(
    events: &[TimedEvent<ProtocolEvent>],
    from: SimTime,
    to: SimTime,
    horizon: SimTime,
) -> Histogram {
    let mut formed: BTreeMap<SeqNo, u64> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::OrderProposed {
            o, formed_at_ns, ..
        } = &ev.event
        {
            formed.entry(*o).or_insert(*formed_at_ns);
        }
    }
    let mut first_commit: BTreeMap<SeqNo, SimTime> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::Committed { o, .. } = &ev.event {
            let e = first_commit.entry(*o).or_insert(ev.time);
            if ev.time < *e {
                *e = ev.time;
            }
        }
    }
    let mut h = Histogram::new();
    for (o, f) in &formed {
        if SimTime(*f) < from || SimTime(*f) > to {
            continue;
        }
        let end = first_commit.get(o).copied().unwrap_or(horizon);
        h.record((end.as_ns().saturating_sub(*f)) as f64 / 1e6);
    }
    h
}

/// Mean order latency (ms) over commits in `[warmup, end]`, excluding the
/// warm-up transient.
pub fn mean_latency_ms(events: &[TimedEvent<ProtocolEvent>], warmup: SimTime) -> Option<f64> {
    let mut h = Histogram::new();
    let mut first_commit: BTreeMap<SeqNo, (SimTime, u64)> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::Committed {
            o, formed_at_ns, ..
        } = &ev.event
        {
            first_commit
                .entry(*o)
                .and_modify(|(t, _)| {
                    if ev.time < *t {
                        *t = ev.time;
                    }
                })
                .or_insert((ev.time, *formed_at_ns));
        }
    }
    for (t, formed) in first_commit.values() {
        if SimTime(*formed) >= warmup {
            h.record((t.as_ns().saturating_sub(*formed)) as f64 / 1e6);
        }
    }
    (!h.is_empty()).then(|| h.mean())
}

/// Committed requests per process (node → count), the basis of the
/// throughput metric ("messages committed by an order process per
/// second").
pub fn commits_per_node(events: &[TimedEvent<ProtocolEvent>]) -> HashMap<usize, usize> {
    let mut out: HashMap<usize, usize> = HashMap::new();
    for ev in events {
        if let ProtocolEvent::Committed { requests, .. } = &ev.event {
            *out.entry(ev.node).or_insert(0) += requests;
        }
    }
    out
}

/// Throughput in requests committed per process per second, averaged over
/// processes that committed anything, within `[warmup, end]`.
pub fn throughput_per_process(
    events: &[TimedEvent<ProtocolEvent>],
    warmup: SimTime,
    end: SimTime,
) -> f64 {
    let mut per_node: HashMap<usize, usize> = HashMap::new();
    for ev in events {
        if ev.time < warmup || ev.time > end {
            continue;
        }
        if let ProtocolEvent::Committed { requests, .. } = &ev.event {
            *per_node.entry(ev.node).or_insert(0) += requests;
        }
    }
    if per_node.is_empty() {
        return 0.0;
    }
    let window_s = (end - warmup).as_ns() as f64 / 1e9;
    let total: usize = per_node.values().sum();
    total as f64 / per_node.len() as f64 / window_s
}

/// Fail-over latency (ms): first fail-signal issuance to the first
/// Start-with-tuples issuance (§5's definition).
pub fn failover_latency_ms(events: &[TimedEvent<ProtocolEvent>]) -> Option<f64> {
    let fs_at = events.iter().find_map(|ev| {
        matches!(ev.event, ProtocolEvent::FailSignalIssued { .. }).then_some(ev.time)
    })?;
    let cert_at = events.iter().find_map(|ev| match ev.event {
        ProtocolEvent::StartCertIssued { .. } if ev.time >= fs_at => Some(ev.time),
        _ => None,
    })?;
    Some((cert_at - fs_at).as_ns() as f64 / 1e6)
}

/// Verifies total-order safety: no two processes commit different digests
/// at the same sequence number, and no process commits the same sequence
/// number twice.
pub fn check_total_order(events: &[TimedEvent<ProtocolEvent>]) -> Result<(), String> {
    let mut bindings: HashMap<SeqNo, Digest> = HashMap::new();
    let mut per_node_seen: HashMap<(usize, SeqNo), Digest> = HashMap::new();
    for ev in events {
        if let ProtocolEvent::Committed { o, digest, .. } = &ev.event {
            if let Some(prev) = per_node_seen.get(&(ev.node, *o)) {
                if prev != digest {
                    return Err(format!(
                        "node {} committed {o:?} twice with different digests",
                        ev.node
                    ));
                }
                continue;
            }
            per_node_seen.insert((ev.node, *o), *digest);
            match bindings.get(o) {
                None => {
                    bindings.insert(*o, *digest);
                }
                Some(prev) if prev == digest => {}
                Some(prev) => {
                    return Err(format!(
                        "divergent commit at {o:?}: {} vs {} (node {})",
                        prev.short_hex(),
                        digest.short_hex(),
                        ev.node
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The largest sequence number committed by every one of `nodes` (liveness
/// floor), if all of them committed anything.
pub fn common_committed_prefix(
    events: &[TimedEvent<ProtocolEvent>],
    nodes: &[usize],
) -> Option<SeqNo> {
    let mut max_per_node: HashMap<usize, SeqNo> = HashMap::new();
    for ev in events {
        if let ProtocolEvent::Committed { o, .. } = &ev.event {
            let e = max_per_node.entry(ev.node).or_insert(*o);
            if *o > *e {
                *e = *o;
            }
        }
    }
    nodes
        .iter()
        .map(|n| max_per_node.get(n).copied())
        .min()
        .flatten()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_proto::ids::Rank;

    fn committed(
        node: usize,
        t_ms: u64,
        o: u64,
        digest: u8,
        formed_ms: u64,
    ) -> TimedEvent<ProtocolEvent> {
        TimedEvent {
            time: SimTime::from_ms(t_ms),
            node,
            event: ProtocolEvent::Committed {
                c: Rank(1),
                o: SeqNo(o),
                digest: Digest::new(&[digest]),
                requests: 2,
                request_ids: Vec::new().into(),
                formed_at_ns: SimTime::from_ms(formed_ms).as_ns(),
            },
        }
    }

    #[test]
    fn latency_uses_first_commit() {
        let events = vec![
            committed(0, 30, 1, 1, 10),
            committed(1, 25, 1, 1, 10),
            committed(2, 40, 1, 1, 10),
        ];
        let lat = order_latencies(&events);
        assert_eq!(lat[&SeqNo(1)], 15.0);
    }

    #[test]
    fn mean_latency_respects_warmup() {
        let events = vec![committed(0, 20, 1, 1, 10), committed(0, 200, 2, 2, 150)];
        let m = mean_latency_ms(&events, SimTime::from_ms(100)).unwrap();
        assert_eq!(m, 50.0);
        assert!(mean_latency_ms(&events, SimTime::from_ms(1_000)).is_none());
    }

    #[test]
    fn throughput_counts_requests() {
        let events = vec![committed(0, 500, 1, 1, 400), committed(1, 600, 1, 1, 400)];
        // 2 requests per commit, one commit per node, over 1 s window.
        let tput = throughput_per_process(&events, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(tput, 2.0);
    }

    #[test]
    fn safety_checker_catches_divergence() {
        let ok = vec![committed(0, 10, 1, 7, 5), committed(1, 12, 1, 7, 5)];
        assert!(check_total_order(&ok).is_ok());
        let bad = vec![committed(0, 10, 1, 7, 5), committed(1, 12, 1, 8, 5)];
        assert!(check_total_order(&bad).is_err());
    }

    #[test]
    fn failover_interval() {
        let events = vec![
            TimedEvent {
                time: SimTime::from_ms(100),
                node: 5,
                event: ProtocolEvent::FailSignalIssued {
                    pair: Rank(1),
                    value_domain: true,
                },
            },
            TimedEvent {
                time: SimTime::from_ms(130),
                node: 1,
                event: ProtocolEvent::StartCertIssued {
                    c: Rank(2),
                    start_o: SeqNo(4),
                },
            },
        ];
        assert_eq!(failover_latency_ms(&events), Some(30.0));
        assert_eq!(failover_latency_ms(&events[..1]), None);
    }

    #[test]
    fn common_prefix() {
        let events = vec![committed(0, 10, 3, 1, 5), committed(1, 10, 2, 1, 5)];
        assert_eq!(common_committed_prefix(&events, &[0, 1]), Some(SeqNo(2)));
        assert_eq!(common_committed_prefix(&events, &[0, 1, 2]), None);
    }
}
