//! Aggregated client populations: N open-loop clients as one actor.
//!
//! The per-actor client model tops out at tens of clients — every
//! simulated user is a node with its own timer stream. A
//! [`ClientPopulation`] collapses N homogeneous open-loop clients into a
//! single actor by the superposition property of Poisson processes: the
//! union of N independent Poisson streams of rate λ is *exactly* one
//! Poisson stream of rate N·λ, with each arrival belonging to a
//! uniformly chosen source. The population therefore runs one
//! exponential timer at the aggregate rate and synthesizes the emitting
//! client id per arrival from a deterministic SplitMix64 stream — a
//! shard carries 10⁵–10⁶ simulated users at O(1) actor cost and O(N)
//! memory (one sequence counter per client).
//!
//! Constant arrivals have no superposition (N deterministic combs at
//! rate λ are not one comb at N·λ); the population instead ticks at the
//! per-client interval and emits one request per member per tick, in
//! client-id order — exactly the union schedule of N individual
//! [`ClientActor`](crate::client::ClientActor)s, which the population
//! equivalence test pins.

use std::fmt;

use std::ops::Range;

use rand::Rng;

use bytes::Bytes;
use sofb_proto::ids::ClientId;
use sofb_proto::request::Request;
use sofb_sim::engine::{Actor, Ctx, WireSize};
use sofb_sim::time::{SimDuration, SimTime};

use crate::client::{Arrival, ClientSpec, Destinations};
use crate::event::ProtocolEvent;
use crate::shard::{splitmix64, ShardLoad, ShardRouter};

/// Timer tag used by the population actor.
const TIMER_POPULATION: u64 = 101;

/// N open-loop clients aggregated into one actor.
///
/// Members are clients `base_id .. base_id + count`; each keeps its own
/// sequence counter, so the emitted `(ClientId, SeqNo)` request-id
/// space is indistinguishable from `count` individual clients. Under
/// [`Arrival::Poisson`] the actor runs one exponential timer at the
/// aggregate rate `count × λ` and picks the emitting member per arrival
/// from a seeded SplitMix64 stream (superposition is exact); under
/// [`Arrival::Constant`] it ticks at the per-client interval and emits
/// one request per member per tick in id order (the union schedule of
/// `count` constant clients).
///
/// In a parallel world every shard engine hosts one replica of the
/// population in slice mode: the member-pick stream is a pure function
/// of `(seed, base_id, emission index)`, so all replicas walk the same
/// client/sequence/shard assignment and the emitted request-id sets
/// partition exactly across shards.
pub struct ClientPopulation<M> {
    base_id: u32,
    count: usize,
    dest: Destinations,
    /// Shared request payload prototype (refcount clone per send).
    payload: Bytes,
    /// Tick interval of the constant-arrival union schedule (the
    /// per-client interval; every tick emits `count` requests).
    tick_interval: SimDuration,
    /// Mean of the aggregate exponential inter-arrival time, ns
    /// (`per-client mean / count`), for Poisson arrivals.
    aggregate_mean_ns: f64,
    stop_at: SimTime,
    arrival: Arrival,
    /// Seed of the member-pick stream: `world seed ^ (base_id << 32)`,
    /// so co-deployed populations draw decorrelated streams while
    /// shard replicas of the *same* population agree.
    pick_seed: u64,
    /// Arrivals emitted so far (indexes the pick stream).
    emissions: u64,
    /// Per-member sequence counters, in member order.
    next_seq: Vec<u64>,
    wrap: fn(Request) -> M,
}

impl<M> ClientPopulation<M> {
    #[allow(clippy::too_many_arguments)] // one knob per population coordinate
    fn with_dest(
        base_id: ClientId,
        count: usize,
        dest: Destinations,
        rate_multiplier: f64,
        spec: &ClientSpec,
        arrival: Arrival,
        seed: u64,
        wrap: fn(Request) -> M,
    ) -> Self {
        assert!(count >= 1, "population must have at least 1 client");
        assert!(spec.rate_per_sec > 0.0, "client rate must be positive");
        let per_client_ns = 1e9 / (spec.rate_per_sec * rate_multiplier);
        ClientPopulation {
            base_id: base_id.0,
            count,
            dest,
            payload: Bytes::from(vec![0xabu8; spec.request_size]),
            // Round to the nearest ns: `as u64` truncation systematically
            // shortened every tick, drifting the aggregate schedule ahead
            // of the exact union of N actors by one emission per
            // ~2·10⁹/frac ticks (see the non-dividing-period regression
            // test). Must match `ClientActor`'s interval exactly or the
            // population/union equivalence breaks.
            tick_interval: SimDuration(per_client_ns.round() as u64),
            aggregate_mean_ns: per_client_ns / count as f64,
            stop_at: spec.stop_at,
            arrival,
            pick_seed: seed ^ (u64::from(base_id.0) << 32),
            emissions: 0,
            next_seq: vec![0; count],
            wrap,
        }
    }

    /// Creates a population of `count` clients for a flat world whose
    /// order processes are nodes `0..n`. `seed` is the world seed the
    /// member-pick stream derives from.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or the spec's rate is not positive.
    pub fn new(
        base_id: ClientId,
        count: usize,
        n: usize,
        spec: &ClientSpec,
        arrival: Arrival,
        seed: u64,
        wrap: fn(Request) -> M,
    ) -> Self {
        Self::with_dest(
            base_id,
            count,
            Destinations::Flat { n },
            1.0,
            spec,
            arrival,
            seed,
            wrap,
        )
    }

    /// Creates a multi-shard population: each request routes to one of
    /// the given shard node ranges, with the same rate semantics as
    /// [`ClientActor::new_sharded`](crate::client::ClientActor::new_sharded)
    /// (under [`ShardLoad::PerShard`] every member offers `rate` to
    /// *each* shard).
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0, the spec's rate is not positive,
    /// `ranges` is empty, or the router's shard count differs from
    /// `ranges.len()`.
    #[allow(clippy::too_many_arguments)]
    pub fn new_sharded(
        base_id: ClientId,
        count: usize,
        ranges: Vec<Range<usize>>,
        router: ShardRouter,
        load: ShardLoad,
        spec: &ClientSpec,
        arrival: Arrival,
        seed: u64,
        wrap: fn(Request) -> M,
    ) -> Self {
        assert!(
            !ranges.is_empty(),
            "sharded population needs at least 1 shard"
        );
        assert_eq!(
            router.shard_count(),
            ranges.len(),
            "router shard count must match the world's shard ranges"
        );
        let mult = match load {
            ShardLoad::Global => 1.0,
            ShardLoad::PerShard => ranges.len() as f64,
        };
        Self::with_dest(
            base_id,
            count,
            Destinations::Sharded {
                ranges,
                router,
                load,
            },
            mult,
            spec,
            arrival,
            seed,
            wrap,
        )
    }

    /// Creates one shard's replica of a multi-shard population for a
    /// parallel world: the full aggregate schedule is walked (the
    /// member-pick stream and sequence counters advance identically on
    /// every shard), but only requests routed to `shard` are multicast,
    /// to the local nodes `0..n` of that shard's engine.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0, the spec's rate is not positive, `shard`
    /// is out of range, or the router's shard count differs from
    /// `shards`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_slice(
        base_id: ClientId,
        count: usize,
        n: usize,
        shard: usize,
        shards: usize,
        router: ShardRouter,
        load: ShardLoad,
        spec: &ClientSpec,
        arrival: Arrival,
        seed: u64,
        wrap: fn(Request) -> M,
    ) -> Self {
        assert!(shard < shards, "slice shard index out of range");
        assert_eq!(
            router.shard_count(),
            shards,
            "router shard count must match the world's shard count"
        );
        let mult = match load {
            ShardLoad::Global => 1.0,
            ShardLoad::PerShard => shards as f64,
        };
        Self::with_dest(
            base_id,
            count,
            Destinations::Slice {
                n,
                shard,
                shards,
                router,
                load,
            },
            mult,
            spec,
            arrival,
            seed,
            wrap,
        )
    }

    /// Emits one request from member `member`: advance its sequence
    /// counter, route, and multicast — or skip the send (counter still
    /// advanced) when the request belongs to another shard's slice.
    fn emit(&mut self, member: usize, ctx: &mut Ctx<'_, M, ProtocolEvent>)
    where
        M: Clone,
    {
        self.emissions += 1;
        self.next_seq[member] += 1;
        let seq = self.next_seq[member];
        let id = ClientId(self.base_id + member as u32);
        if let Some(targets) = self.dest.targets(id, seq) {
            let req = Request::new(id, seq, self.payload.clone());
            ctx.multicast(targets, (self.wrap)(req));
        }
    }

    /// The member emitting arrival number `emissions`: uniform over the
    /// population, from a SplitMix64 stream independent of the world
    /// RNG (so shard replicas agree regardless of their engines' own
    /// RNG positions).
    fn pick_member(&self) -> usize {
        (splitmix64(self.pick_seed ^ self.emissions) % self.count as u64) as usize
    }

    fn next_interval(&self, ctx: &mut Ctx<'_, M, ProtocolEvent>) -> SimDuration {
        match self.arrival {
            Arrival::Constant => self.tick_interval,
            Arrival::Poisson => {
                // Same exact inverse-CDF sampling as `ClientActor`, at
                // the aggregate mean: superposition of N exponential
                // clocks of mean m is one exponential clock of mean m/N.
                let u: f64 = ctx.rng().gen_range(0.0..1.0);
                let ns = -(1.0 - u).ln() * self.aggregate_mean_ns;
                SimDuration((ns.round() as u64).max(1))
            }
        }
    }
}

impl<M> fmt::Debug for ClientPopulation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientPopulation")
            .field("base_id", &self.base_id)
            .field("count", &self.count)
            .field("dest", &self.dest)
            .field("arrival", &self.arrival)
            .finish()
    }
}

impl<M: Clone + WireSize + fmt::Debug> Actor for ClientPopulation<M> {
    type Msg = M;
    type Event = ProtocolEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, M, ProtocolEvent>) {
        let d = self.next_interval(ctx);
        ctx.set_timer(d, TIMER_POPULATION);
    }

    fn on_message(&mut self, _from: usize, _msg: M, _ctx: &mut Ctx<'_, M, ProtocolEvent>) {
        // Populations, like individual clients, observe commitment
        // through the processes' events, not replies.
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, M, ProtocolEvent>) {
        if tag != TIMER_POPULATION || ctx.now() >= self.stop_at {
            return;
        }
        match self.arrival {
            // The union of N constant combs at the same phase: every
            // tick, each member emits once, in id order.
            Arrival::Constant => {
                for member in 0..self.count {
                    self.emit(member, ctx);
                }
            }
            // One aggregate arrival; the pick stream names the member.
            Arrival::Poisson => {
                let member = self.pick_member();
                self.emit(member, ctx);
            }
        }
        let d = self.next_interval(ctx);
        ctx.set_timer(d, TIMER_POPULATION);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sofb_sim::engine::TimerRequest;

    #[derive(Clone, Debug)]
    struct Raw(Request);

    impl WireSize for Raw {
        fn wire_len(&self) -> usize {
            100
        }
    }

    /// Drives the population's timer loop standalone (no world) and
    /// returns every (ClientId, seq) it emitted.
    fn drive(pop: &mut ClientPopulation<Raw>, secs: u64, seed: u64) -> (Vec<(u32, u64)>, f64) {
        let stop = SimTime::from_secs(secs);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut now = SimTime::ZERO;
        let mut emitted = Vec::new();
        loop {
            let mut ctx = Ctx::standalone(now, 0, &mut rng, &mut events);
            if now == SimTime::ZERO {
                pop.on_start(&mut ctx);
            } else {
                pop.on_timer(TIMER_POPULATION, &mut ctx);
            }
            let out: sofb_sim::engine::CtxOutputs<Raw> = ctx.into_outputs();
            for (_, Raw(req)) in &out.sends {
                emitted.push((req.id.client.0, req.id.seq));
            }
            let Some(TimerRequest::Set(d, TIMER_POPULATION)) = out.timers.first() else {
                break;
            };
            now += *d;
            if now >= stop {
                break;
            }
        }
        (emitted, stop.as_secs_f64())
    }

    /// Superposition is exact in rate: a Poisson population of N
    /// clients at per-client rate λ offers N·λ in aggregate.
    #[test]
    fn poisson_population_aggregate_rate_matches_n_lambda() {
        let count = 50;
        let rate = 4.0; // per client → 200 req/s aggregate
        let secs = 200;
        let spec = ClientSpec::new(rate, 100, SimTime::from_secs(secs));
        let mut pop: ClientPopulation<Raw> =
            ClientPopulation::new(ClientId(0), count, 1, &spec, Arrival::Poisson, 7, Raw);
        let (emitted, elapsed) = drive(&mut pop, secs, 7);
        // Every send fans out to n=1 node, so sends == arrivals.
        let measured = emitted.len() as f64 / elapsed;
        let want = rate * count as f64;
        let err = (measured - want).abs() / want;
        assert!(
            err < 0.02,
            "measured {measured:.1} req/s vs N·λ = {want} (err {:.2}%)",
            err * 100.0
        );
    }

    /// The synthesized ids cover the member range uniformly, and each
    /// member's sequence numbers are gapless from 1.
    #[test]
    fn poisson_population_ids_are_uniform_and_seqs_gapless() {
        let count = 8u32;
        let spec = ClientSpec::new(25.0, 100, SimTime::from_secs(100));
        let mut pop: ClientPopulation<Raw> = ClientPopulation::new(
            ClientId(40),
            count as usize,
            1,
            &spec,
            Arrival::Poisson,
            11,
            Raw,
        );
        let (emitted, _) = drive(&mut pop, 100, 11);
        let mut last_seq = vec![0u64; count as usize];
        for &(id, seq) in &emitted {
            assert!((40..40 + count).contains(&id), "id {id} outside population");
            let m = (id - 40) as usize;
            assert_eq!(seq, last_seq[m] + 1, "member {m}: gap in sequence numbers");
            last_seq[m] = seq;
        }
        let total: u64 = last_seq.iter().sum();
        assert_eq!(total, emitted.len() as u64);
        // Uniform pick: every member within ±25% of the mean share.
        let mean = total as f64 / count as f64;
        for (m, &n) in last_seq.iter().enumerate() {
            let dev = (n as f64 - mean).abs() / mean;
            assert!(dev < 0.25, "member {m} got {n} of {total} (mean {mean:.0})");
        }
    }

    /// Constant arrivals: a population of N ticks at the per-client
    /// interval and emits N per tick — the union schedule of N combs.
    #[test]
    fn constant_population_emits_the_union_schedule() {
        let spec = ClientSpec::new(10.0, 100, SimTime::from_secs(2));
        let mut pop: ClientPopulation<Raw> =
            ClientPopulation::new(ClientId(0), 4, 1, &spec, Arrival::Constant, 1, Raw);
        let (emitted, _) = drive(&mut pop, 2, 1);
        // 10 req/s for 2 s = 19 ticks strictly inside (0, 2s) × 4 members.
        assert_eq!(emitted.len(), 19 * 4);
        // Each tick emits members 0,1,2,3 in order at the same instant.
        for (i, &(id, seq)) in emitted.iter().enumerate() {
            assert_eq!(id, (i % 4) as u32);
            assert_eq!(seq, (i / 4) as u64 + 1);
        }
    }

    /// Non-dividing period regression: at 1500 req/s the exact interval
    /// is 666 666.6̄ ns, which `as u64` truncation used to shorten to
    /// 666 666 ns — after 3000 ticks the comb ran ~2 ms early and the
    /// 2 s horizon gained a spurious 3000th tick (arrival 3000 belongs
    /// at exactly t = 2 s, which `stop_at` excludes). Nearest-ns
    /// rounding keeps the count exact, and the N=3 population still
    /// emits precisely the union schedule of 3 individual actors.
    #[test]
    fn constant_population_rounding_does_not_drift_the_schedule() {
        let count = 3;
        let spec = ClientSpec::new(1500.0, 100, SimTime::from_secs(2));
        let mut pop: ClientPopulation<Raw> =
            ClientPopulation::new(ClientId(0), count, 1, &spec, Arrival::Constant, 1, Raw);
        let (emitted, _) = drive(&mut pop, 2, 1);
        // Exactly 2999 ticks strictly inside (0, 2 s) × 3 members —
        // truncation produced 3000 × 3.
        assert_eq!(emitted.len(), 2999 * count);
        // Still bit-equivalent to the union of N individual actors.
        let mut union: Vec<(u32, u64)> = Vec::new();
        for member in 0..count {
            let mut actor: crate::client::ClientActor<Raw> = crate::client::ClientActor::new(
                ClientId(member as u32),
                1,
                &spec,
                Arrival::Constant,
                Raw,
            );
            let stop = SimTime::from_secs(2);
            let mut rng = StdRng::seed_from_u64(member as u64);
            let mut events = Vec::new();
            let mut now = SimTime::ZERO;
            loop {
                let mut ctx = Ctx::standalone(now, 0, &mut rng, &mut events);
                if now == SimTime::ZERO {
                    actor.on_start(&mut ctx);
                } else {
                    actor.on_timer(100, &mut ctx);
                }
                let out: sofb_sim::engine::CtxOutputs<Raw> = ctx.into_outputs();
                for (_, Raw(req)) in &out.sends {
                    union.push((req.id.client.0, req.id.seq));
                }
                let Some(TimerRequest::Set(d, 100)) = out.timers.first() else {
                    break;
                };
                now += *d;
                if now >= stop {
                    break;
                }
            }
        }
        let mut pop_sorted = emitted.clone();
        pop_sorted.sort_unstable();
        union.sort_unstable();
        assert_eq!(pop_sorted, union);
    }

    /// Shard replicas of one Poisson population partition the global
    /// request-id set exactly: same pick stream, disjoint slices.
    #[test]
    fn slice_replicas_partition_the_request_id_space() {
        let shards = 3;
        let spec = ClientSpec::new(30.0, 100, SimTime::from_secs(50));
        let mut all: Vec<Vec<(u32, u64)>> = Vec::new();
        for shard in 0..shards {
            let mut pop: ClientPopulation<Raw> = ClientPopulation::new_slice(
                ClientId(0),
                16,
                1,
                shard,
                shards,
                ShardRouter::hash(shards),
                ShardLoad::Global,
                &spec,
                Arrival::Poisson,
                5,
                Raw,
            );
            // Different driver seeds: replicas agree on the partition
            // even when their engines' RNGs (hence arrival times) differ.
            let (emitted, _) = drive(&mut pop, 50, 90 + shard as u64);
            all.push(emitted);
        }
        let router = ShardRouter::hash(shards);
        for (shard, emitted) in all.iter().enumerate() {
            assert!(!emitted.is_empty(), "shard {shard} emitted nothing");
            for &(id, seq) in emitted {
                assert_eq!(
                    router.route_request(ClientId(id), seq),
                    shard,
                    "request ({id},{seq}) emitted on the wrong shard"
                );
            }
        }
    }
}
