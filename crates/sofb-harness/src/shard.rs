//! The sharded world layer: many independent ordering groups in one
//! simulated world.
//!
//! [`ShardedWorldBuilder`] instantiates `S` copies of a protocol's
//! ordering group — each with its own coordinator set, dealer-seeded
//! crypto, link overrides and fault plan — side by side in a single
//! [`World`], at node-index bases `0, n, 2n, …`. The engine's index
//! namespaces (see [`World::add_node_at_base`]) let the unmodified
//! per-protocol actors run believing their world is `0..n`, so every
//! variant (SC, SCR, BFT, CT) inherits horizontal scaling without any
//! protocol-crate change.
//!
//! Client requests are spread over the groups by a key-based
//! [`ShardRouter`] (stable hashing or explicit key ranges) from inside
//! the one shared [`crate::client::ClientActor`]; cross-shard metric
//! rollups build on [`sofb_sim::metrics::GroupRollup`] and
//! [`NodeStats::absorb`].
//!
//! A 1-shard sharded world is bit-identical — same `(time, node, kind)`
//! event trace — to the flat [`crate::builder::WorldBuilder`] world:
//! base 0 makes every index translation the identity and the assembly
//! order matches, which the golden-equivalence tests pin.

use std::fmt;
use std::ops::Range;

use sofb_crypto::scheme::SchemeId;
use sofb_proto::ids::{ClientId, ProcessId};
use sofb_proto::topology::Variant;
use sofb_sim::cpu::CpuModel;
use sofb_sim::delay::{LinkModel, NetworkModel};
use sofb_sim::engine::{Actor, NodeStats, TimedEvent, World};
use sofb_sim::time::{SimDuration, SimTime};

use crate::client::{Arrival, ClientActor, ClientSpec};
use crate::event::ProtocolEvent;
use crate::fault::{apply_engine_fault, FaultSpec};
use crate::population::ClientPopulation;
use crate::protocol::{Knobs, Links, Protocol};

/// SplitMix64: a stable, seed-independent 64-bit mix. Routing must not
/// depend on `std`'s randomized hashers — the same key maps to the same
/// shard in every run, which the router stability tests pin. The
/// population actor reuses it to synthesize per-client ids (see
/// `ClientPopulation`).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The dealer/config seed of shard `s`: shard 0 keeps the base seed
/// (which is what makes a 1-shard world bit-identical to the flat
/// builder's), later shards decorrelate by the 64-bit golden ratio.
/// Shared with the parallel runner, which must seed each isolated
/// shard engine identically to the shared-world builder.
pub(crate) fn shard_seed(seed: u64, s: usize) -> u64 {
    seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A malformed explicit-range router configuration, rejected at build
/// time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterConfigError {
    /// No ranges were given.
    NoShards,
    /// A range's start exceeds its end.
    InvertedRange {
        /// The offending shard (input position).
        shard: usize,
    },
    /// A range overlaps its predecessor or leaves a gap after it
    /// (ranges must tile the key space in ascending shard order).
    OverlapOrGap {
        /// The offending shard (input position).
        shard: usize,
    },
    /// The ranges do not cover the full `u64` key space.
    NotCovering,
}

impl fmt::Display for RouterConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterConfigError::NoShards => write!(f, "explicit-range router needs ≥ 1 range"),
            RouterConfigError::InvertedRange { shard } => {
                write!(f, "shard {shard}: range start exceeds end")
            }
            RouterConfigError::OverlapOrGap { shard } => {
                write!(f, "shard {shard}: range overlaps or leaves a gap")
            }
            RouterConfigError::NotCovering => {
                write!(f, "ranges do not cover the full u64 key space")
            }
        }
    }
}

/// How the router maps keys to shards.
#[derive(Clone, Debug)]
enum RouterKind {
    /// `splitmix64(key) mod shards`.
    Hash,
    /// Shard `i` owns the inclusive key range `ranges[i]`; the ranges
    /// tile `0..=u64::MAX` in ascending shard order (validated at
    /// construction).
    Ranges(Vec<(u64, u64)>),
}

/// Key-based request-to-shard routing, stable across runs.
///
/// Requests are keyed by [`ShardRouter::request_key`] (a SplitMix64 mix
/// of client id and client-local sequence number, so keys are uniform
/// over `u64` even though clients count from 1); arbitrary
/// application-level keys can be routed directly with
/// [`ShardRouter::route`].
#[derive(Clone, Debug)]
pub struct ShardRouter {
    shards: usize,
    kind: RouterKind,
}

impl ShardRouter {
    /// A hash router over `shards` shards: `splitmix64(key) mod shards`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn hash(shards: usize) -> Self {
        assert!(shards > 0, "router needs at least 1 shard");
        ShardRouter {
            shards,
            kind: RouterKind::Hash,
        }
    }

    /// An explicit-range router: shard `i` owns the inclusive key range
    /// `ranges[i]`. The ranges must tile the whole `u64` key space in
    /// ascending shard order — overlapping, gapped, inverted or
    /// non-covering configurations are rejected here, at build time.
    pub fn ranges(ranges: Vec<(u64, u64)>) -> Result<Self, RouterConfigError> {
        if ranges.is_empty() {
            return Err(RouterConfigError::NoShards);
        }
        for (i, &(start, end)) in ranges.iter().enumerate() {
            if start > end {
                return Err(RouterConfigError::InvertedRange { shard: i });
            }
        }
        if ranges[0].0 != 0 {
            return Err(RouterConfigError::NotCovering);
        }
        for (i, &(start, _)) in ranges.iter().enumerate().skip(1) {
            // A non-final range ending at u64::MAX cannot have a
            // successor (checked explicitly: `MAX + 1` would wrap to 0
            // and falsely match a successor starting at 0).
            if ranges[i - 1].1 == u64::MAX || start != ranges[i - 1].1 + 1 {
                return Err(RouterConfigError::OverlapOrGap { shard: i });
            }
        }
        if ranges[ranges.len() - 1].1 != u64::MAX {
            return Err(RouterConfigError::NotCovering);
        }
        Ok(ShardRouter {
            shards: ranges.len(),
            kind: RouterKind::Ranges(ranges),
        })
    }

    /// `shards` equal slices of the key space (the balanced explicit-range
    /// configuration; useful as a range-policy default).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn even_ranges(shards: usize) -> Self {
        assert!(shards > 0, "router needs at least 1 shard");
        // Boundary i sits at ⌊2^64 · i / shards⌋, so slice sizes differ
        // by at most one key (u128 avoids the 2^64 overflow).
        let boundary = |i: usize| ((1u128 << 64) * i as u128 / shards as u128) as u64;
        let out = (0..shards)
            .map(|i| {
                let start = boundary(i);
                let end = if i == shards - 1 {
                    u64::MAX
                } else {
                    boundary(i + 1) - 1
                };
                (start, end)
            })
            .collect();
        ShardRouter::ranges(out).expect("even tiling is valid by construction")
    }

    /// Number of shards this router spreads keys over.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`.
    pub fn route(&self, key: u64) -> usize {
        match &self.kind {
            RouterKind::Hash => (splitmix64(key) % self.shards as u64) as usize,
            RouterKind::Ranges(ranges) => ranges.partition_point(|&(start, _)| start <= key) - 1,
        }
    }

    /// The routing key of a client request: a stable uniform mix of the
    /// issuing client and its client-local sequence number.
    pub fn request_key(client: ClientId, seq: u64) -> u64 {
        splitmix64((u64::from(client.0) << 40) ^ seq)
    }

    /// The shard a client request is routed to (what the sharded client
    /// actor uses, and what leakage tests recompute).
    pub fn route_request(&self, client: ClientId, seq: u64) -> usize {
        self.route(Self::request_key(client, seq))
    }
}

/// How a client spec's rate maps onto a sharded world.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardLoad {
    /// The spec's rate is the client's *total* offered load; requests are
    /// spread over shards by the router's key policy.
    #[default]
    Global,
    /// Every shard receives the spec's rate (the client issues at
    /// `rate × shards`, dealt round-robin) — the fixed-per-shard-load
    /// shape of horizontal-scaling sweeps.
    ///
    /// Round-robin dealing keeps per-shard arrivals constant-interval
    /// under [`crate::client::Arrival::Constant`]. Under
    /// [`crate::client::Arrival::Poisson`] the *aggregate* process is
    /// Poisson at `rate × S` but each shard then sees Erlang-`S`
    /// inter-arrivals (mean rate `rate`, lower variance than Poisson) —
    /// use [`ShardLoad::Global`], whose hash routing thins the Poisson
    /// stream and preserves per-shard Poisson arrivals, when the
    /// per-shard arrival law matters.
    PerShard,
}

/// One ordering group's node placement inside a sharded world.
#[derive(Clone, Copy, Debug)]
struct ShardInfo {
    /// First node index of the group (its index-namespace base).
    base: usize,
    /// Number of order processes in the group.
    n: usize,
}

/// Builder for a world of `S` independent ordering groups of protocol
/// `P`, plus multi-shard clients and a per-shard fault plan.
///
/// # Examples
///
/// ```ignore
/// let mut d = ShardedWorldBuilder::<ScProtocol>::new(4, 1)
///     .client(ClientSpec::new(400.0, 100, SimTime::from_secs(2)))
///     .build();
/// d.start();
/// d.run_until(SimTime::from_secs(4));
/// ```
#[derive(Debug)]
pub struct ShardedWorldBuilder<P: Protocol> {
    shards: usize,
    knobs: Knobs,
    links: Links,
    cpu: CpuModel,
    router: Option<ShardRouter>,
    clients: Vec<(ClientSpec, Arrival, ShardLoad, usize)>,
    faults: Vec<(usize, ProcessId, FaultSpec<P::Byz>)>,
}

impl<P: Protocol> ShardedWorldBuilder<P> {
    /// Starts a builder for `shards` ordering groups, each at resilience
    /// `f` with the paper's defaults.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, f: u32) -> Self {
        assert!(shards > 0, "a world needs at least 1 shard");
        ShardedWorldBuilder {
            shards,
            knobs: Knobs {
                f,
                ..Knobs::default()
            },
            links: Links::default(),
            cpu: CpuModel::default(),
            router: None,
            clients: Vec::new(),
            faults: Vec::new(),
        }
    }

    /// Replaces the full knob set (the per-shard dealer seed is still
    /// derived per shard at build time).
    pub fn knobs(mut self, knobs: Knobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// Sets the SC layout flavour (ignored by BFT/CT).
    pub fn variant(mut self, variant: Variant) -> Self {
        self.knobs.variant = variant;
        self
    }

    /// Sets the crypto scheme.
    pub fn scheme(mut self, scheme: SchemeId) -> Self {
        self.knobs.scheme = scheme;
        self
    }

    /// Sets the deterministic seed (shard 0 uses it verbatim; shard `s`
    /// derives `seed ⊕ s·φ64` so groups get independent dealer streams).
    pub fn seed(mut self, seed: u64) -> Self {
        self.knobs.seed = seed;
        self
    }

    /// Sets the batching interval for every group.
    pub fn batching_interval(mut self, d: SimDuration) -> Self {
        self.knobs.batching_interval = d;
        self
    }

    /// Sets the shadow's proposal-timeliness estimate (SC/SCR).
    pub fn order_timeout(mut self, d: SimDuration) -> Self {
        self.knobs.order_timeout = d;
        self
    }

    /// Enables/disables time-domain failure detection (SC/SCR).
    pub fn time_checks(mut self, on: bool) -> Self {
        self.knobs.time_checks = on;
        self
    }

    /// Enables BFT view changes with the given request timeout.
    pub fn request_timeout(mut self, d: SimDuration) -> Self {
        self.knobs.request_timeout = Some(d);
        self
    }

    /// Overrides the CPU model of every process node.
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Overrides the asynchronous-network link model joining everything.
    pub fn lan_link(mut self, link: LinkModel) -> Self {
        self.links.lan = link;
        self
    }

    /// Overrides the intra-pair link model (SC/SCR; applied inside every
    /// group).
    pub fn pair_link(mut self, link: LinkModel) -> Self {
        self.links.pair = link;
        self
    }

    /// Sets the request router. Defaults to [`ShardRouter::hash`] over
    /// the world's shard count.
    ///
    /// # Panics
    ///
    /// Panics if the router's shard count differs from the world's.
    pub fn router(mut self, router: ShardRouter) -> Self {
        assert_eq!(
            router.shard_count(),
            self.shards,
            "router shard count must match the world's"
        );
        self.router = Some(router);
        self
    }

    /// Adds a constant-rate client (total rate, router-spread).
    pub fn client(self, spec: ClientSpec) -> Self {
        self.client_with(spec, Arrival::Constant, ShardLoad::Global)
    }

    /// Adds an open-loop Poisson client (total rate, router-spread).
    pub fn poisson_client(self, spec: ClientSpec) -> Self {
        self.client_with(spec, Arrival::Poisson, ShardLoad::Global)
    }

    /// Adds a client with explicit arrival process and load mapping.
    pub fn client_with(self, spec: ClientSpec, arrival: Arrival, load: ShardLoad) -> Self {
        self.client_population_with(spec, arrival, load, 1)
    }

    /// Adds `population` open-loop clients sharing one spec. A
    /// population of 1 is an ordinary [`ClientActor`]; larger counts
    /// are aggregated into a single [`ClientPopulation`] actor, so a
    /// world carries 10⁵–10⁶ simulated users at O(1) actor cost.
    ///
    /// # Panics
    ///
    /// Panics if `population` is 0.
    pub fn client_population_with(
        mut self,
        spec: ClientSpec,
        arrival: Arrival,
        load: ShardLoad,
        population: usize,
    ) -> Self {
        assert!(population >= 1, "client population must be at least 1");
        self.clients.push((spec, arrival, load, population));
        self
    }

    /// Installs a fault on process `p` *of shard `shard`* (crash, mute
    /// and delay work on every variant; Byzantine entries are
    /// protocol-specific and consumed by that shard's node constructor).
    pub fn fault(mut self, shard: usize, p: ProcessId, spec: FaultSpec<P::Byz>) -> Self {
        self.faults.push((shard, p, spec));
        self
    }

    /// Assembles the world: `S` ordering groups at bases `0, n, 2n, …`,
    /// then the clients, then the fault plan — the same order as the
    /// flat builder, so a 1-shard world realizes the identical schedule.
    pub fn build(self) -> ShardedDeployment<P> {
        let n = P::node_count(&self.knobs);
        let router = self
            .router
            .unwrap_or_else(|| ShardRouter::hash(self.shards));

        let mut shard_knobs = Vec::with_capacity(self.shards);
        for s in 0..self.shards {
            let mut k = self.knobs.clone();
            k.seed = shard_seed(self.knobs.seed, s);
            shard_knobs.push(k);
        }

        // One world-wide network: the LAN joins everything (including
        // cross-shard pairs, which only client traffic crosses); each
        // group's special links (e.g. SC pair links) recur at its base.
        let mut net = NetworkModel::uniform(self.links.lan.clone());
        for (s, k) in shard_knobs.iter().enumerate() {
            net = net.merge_shifted(&P::network(k, &self.links), s * n);
        }
        let mut world: World<P::Msg, ProtocolEvent> = World::new(net, self.knobs.seed);

        let mut shards = Vec::with_capacity(self.shards);
        for (s, k) in shard_knobs.iter().enumerate() {
            let base = s * n;
            let byz: Vec<(ProcessId, P::Byz)> = self
                .faults
                .iter()
                .filter(|(fs, _, _)| *fs == s)
                .filter_map(|(_, p, spec)| match spec {
                    FaultSpec::Byzantine(b) => Some((*p, b.clone())),
                    _ => None,
                })
                .collect();
            let nodes = P::build_nodes(k, &byz);
            assert_eq!(
                nodes.len(),
                n,
                "{}: node_count/build_nodes mismatch",
                P::NAME
            );
            for actor in nodes {
                world.add_node_at_base(actor, self.cpu, base);
            }
            shards.push(ShardInfo { base, n });
        }

        let ranges: Vec<Range<usize>> = shards.iter().map(|i| i.base..i.base + i.n).collect();
        let mut client_nodes = Vec::with_capacity(self.clients.len());
        // Base ids advance by each entry's population, so entry k's
        // clients are `next_id..next_id+population` — identical to the
        // historical `ClientId(k)` numbering when every population is 1.
        let mut next_id = 0u32;
        for (spec, arrival, load, population) in &self.clients {
            let client: Box<dyn Actor<Msg = P::Msg, Event = ProtocolEvent>> = if *population > 1 {
                Box::new(ClientPopulation::new_sharded(
                    ClientId(next_id),
                    *population,
                    ranges.clone(),
                    router.clone(),
                    *load,
                    spec,
                    *arrival,
                    self.knobs.seed,
                    P::request_msg,
                ))
            } else {
                Box::new(ClientActor::new_sharded(
                    ClientId(next_id),
                    ranges.clone(),
                    router.clone(),
                    *load,
                    spec,
                    *arrival,
                    P::request_msg,
                ))
            };
            client_nodes.push(world.add_node(client, CpuModel::zero()));
            next_id += *population as u32;
        }

        for (s, p, spec) in &self.faults {
            let info = shards
                .get(*s)
                .unwrap_or_else(|| panic!("fault targets shard {s} outside the world"));
            assert!(
                (p.0 as usize) < info.n,
                "fault target {p} outside shard {s}'s process set"
            );
            apply_engine_fault(&mut world, info.base + p.0 as usize, spec);
        }

        ShardedDeployment {
            world,
            shards,
            client_nodes,
            knobs: self.knobs,
            router,
        }
    }
}

/// A built sharded deployment of protocol `P`.
pub struct ShardedDeployment<P: Protocol> {
    /// The simulator world (drive with [`ShardedDeployment::start`] /
    /// [`ShardedDeployment::run_until`], or directly).
    pub world: World<P::Msg, ProtocolEvent>,
    /// The ordering groups, in shard order.
    shards: Vec<ShardInfo>,
    /// Node indices of the synthetic clients.
    pub client_nodes: Vec<usize>,
    /// The (base) knob set the deployment was built with.
    pub knobs: Knobs,
    /// The request router the clients route with.
    router: ShardRouter,
}

impl<P: Protocol> ShardedDeployment<P> {
    /// Starts all nodes.
    pub fn start(&mut self) {
        self.world.start();
    }

    /// Runs until the given virtual time.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }

    /// Number of ordering groups.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The node-index range of shard `s`.
    pub fn shard_range(&self, s: usize) -> Range<usize> {
        let info = self.shards[s];
        info.base..info.base + info.n
    }

    /// The shard owning world node `node`, if it is an order process
    /// (clients belong to no shard).
    pub fn shard_of_node(&self, node: usize) -> Option<usize> {
        self.shards
            .iter()
            .position(|i| node >= i.base && node < i.base + i.n)
    }

    /// The router the clients route requests with (tests recompute
    /// expected shards through it).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Shard `s`'s aggregated node counters (callbacks and busy time
    /// sum; queue high-water marks take the shard maximum).
    pub fn shard_stats(&self, s: usize) -> NodeStats {
        let mut agg = NodeStats::default();
        for node in self.shard_range(s) {
            agg.absorb(&self.world.node_stats(node));
        }
        agg
    }

    /// Splits an observation log by emitting shard, dropping events from
    /// non-process nodes: `result[s]` holds shard `s`'s events in their
    /// original order, ready for the per-shard analysis pass.
    pub fn partition_events(
        &self,
        events: &[TimedEvent<ProtocolEvent>],
    ) -> Vec<Vec<TimedEvent<ProtocolEvent>>> {
        let mut out: Vec<Vec<TimedEvent<ProtocolEvent>>> = vec![Vec::new(); self.shards.len()];
        for ev in events {
            if let Some(s) = self.shard_of_node(ev.node) {
                out[s].push(ev.clone());
            }
        }
        out
    }
}

impl PartialEq for ShardRouter {
    fn eq(&self, other: &Self) -> bool {
        self.shards == other.shards
            && match (&self.kind, &other.kind) {
                (RouterKind::Hash, RouterKind::Hash) => true,
                (RouterKind::Ranges(a), RouterKind::Ranges(b)) => a == b,
                _ => false,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hash routing is a pure function of the key: two routers built the
    /// same way agree on every key, across runs (the mix has no
    /// process-random state).
    #[test]
    fn hash_router_is_stable() {
        let a = ShardRouter::hash(4);
        let b = ShardRouter::hash(4);
        for key in (0..10_000u64).map(|i| i.wrapping_mul(0x9E37_79B9)) {
            assert_eq!(a.route(key), b.route(key));
            assert!(a.route(key) < 4);
        }
        // Pin a few routes so an accidental mix change cannot slip by.
        assert_eq!(a.route(0), ShardRouter::hash(4).route(0));
        assert_eq!(
            ShardRouter::request_key(ClientId(3), 17),
            ShardRouter::request_key(ClientId(3), 17)
        );
    }

    /// Uniform keys spread within 10% of perfectly balanced over every
    /// policy (the ISSUE's balance bound).
    #[test]
    fn routers_balance_uniform_keys_within_10_percent() {
        for shards in [2usize, 4, 8] {
            for router in [ShardRouter::hash(shards), ShardRouter::even_ranges(shards)] {
                let mut counts = vec![0usize; shards];
                let total = 40_000u64;
                for i in 0..total {
                    // Uniform keys via the same stable mix.
                    counts[router.route(splitmix64(i))] += 1;
                }
                let ideal = total as f64 / shards as f64;
                for (s, c) in counts.iter().enumerate() {
                    let dev = (*c as f64 - ideal).abs() / ideal;
                    assert!(
                        dev < 0.10,
                        "{shards}-shard router unbalanced: shard {s} got {c} (ideal {ideal}, dev {:.1}%)",
                        dev * 100.0
                    );
                }
            }
        }
    }

    /// Client-request keys are themselves uniform enough to balance,
    /// even though clients count sequences from 1.
    #[test]
    fn request_keys_balance_within_10_percent() {
        let router = ShardRouter::hash(4);
        let mut counts = vec![0usize; 4];
        let per_client = 5_000u64;
        for c in 0..4u32 {
            for seq in 1..=per_client {
                counts[router.route_request(ClientId(c), seq)] += 1;
            }
        }
        let ideal = (per_client * 4) as f64 / 4.0;
        for c in &counts {
            assert!(
                (*c as f64 - ideal).abs() / ideal < 0.10,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    fn range_router_routes_by_range() {
        let r = ShardRouter::ranges(vec![(0, 99), (100, u64::MAX)]).unwrap();
        assert_eq!(r.shard_count(), 2);
        assert_eq!(r.route(0), 0);
        assert_eq!(r.route(99), 0);
        assert_eq!(r.route(100), 1);
        assert_eq!(r.route(u64::MAX), 1);
    }

    #[test]
    fn even_ranges_tile_the_key_space() {
        for shards in [1usize, 2, 3, 4, 8] {
            let r = ShardRouter::even_ranges(shards);
            assert_eq!(r.shard_count(), shards);
            assert_eq!(r.route(0), 0);
            assert_eq!(r.route(u64::MAX), shards - 1);
        }
    }

    /// Overlapping, gapped, inverted and non-covering configurations are
    /// all rejected at construction (build time), as the ISSUE requires.
    #[test]
    fn range_router_rejects_malformed_configs() {
        assert_eq!(
            ShardRouter::ranges(vec![]),
            err(RouterConfigError::NoShards)
        );
        // Not starting at 0.
        assert_eq!(
            ShardRouter::ranges(vec![(1, u64::MAX)]),
            err(RouterConfigError::NotCovering)
        );
        // Not reaching u64::MAX.
        assert_eq!(
            ShardRouter::ranges(vec![(0, 10)]),
            err(RouterConfigError::NotCovering)
        );
        // Overlap.
        assert_eq!(
            ShardRouter::ranges(vec![(0, 10), (10, u64::MAX)]),
            err(RouterConfigError::OverlapOrGap { shard: 1 })
        );
        // Gap.
        assert_eq!(
            ShardRouter::ranges(vec![(0, 10), (12, u64::MAX)]),
            err(RouterConfigError::OverlapOrGap { shard: 1 })
        );
        // Full-space overlap: a non-final range ending at u64::MAX must
        // not wrap into a "successor" starting at 0.
        assert_eq!(
            ShardRouter::ranges(vec![(0, u64::MAX), (0, u64::MAX)]),
            err(RouterConfigError::OverlapOrGap { shard: 1 })
        );
        assert_eq!(
            ShardRouter::ranges(vec![(0, u64::MAX), (0, 3), (4, u64::MAX)]),
            err(RouterConfigError::OverlapOrGap { shard: 1 })
        );
        // Inverted.
        assert_eq!(
            ShardRouter::ranges(vec![(10, 0), (11, u64::MAX)]),
            err(RouterConfigError::InvertedRange { shard: 0 })
        );
    }

    fn err(e: RouterConfigError) -> Result<ShardRouter, RouterConfigError> {
        Err(e)
    }
}
