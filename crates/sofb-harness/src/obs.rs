//! Protocol phase spans derived from the observation log.
//!
//! The engine's trace sink sees dispatches and deliveries; the protocol
//! layer's phases (order formation, commit, view change, checkpoint) are
//! visible only in [`ProtocolEvent`]s. This module derives phase-level
//! [`TraceRecord`]s *post hoc* from the event log, which keeps the event
//! vocabulary itself untouched (golden-trace tests compare it bit for
//! bit) and makes the phase trace automatically deterministic: the
//! merged event log is bit-identical across `world_workers` counts, and
//! these records are a pure function of it.
//!
//! Span model per committed sequence number:
//!
//! * an **`order` span** on the proposing replica, from the batch's
//!   formation instant (`formed_at_ns`, the request-lifecycle origin —
//!   client requests enter the trace at batch granularity) to the
//!   proposal's emission;
//! * a **`commit` span** on every committing replica, from the same
//!   formation instant to that replica's commit, causally parented on
//!   the proposer's `order` span — in Perfetto the parent link renders
//!   as a flow arrow fanning out from the proposer's track.
//!
//! The remaining protocol milestones (fail-signals, Start certificates,
//! installs, view changes, recoveries, checkpoints) become instant
//! events on the emitting replica's track.

use std::collections::BTreeMap;

use sofb_obs::{SpanRef, TraceConfig, TraceKind, TraceRecord};
use sofb_sim::engine::TimedEvent;

use crate::event::ProtocolEvent;

/// Derives phase records from an observation log whose node indices are
/// world-global with `nodes_per_shard` processes per shard (shard =
/// `node / nodes_per_shard`, so proposer lookups never cross shards).
/// Records come out in event-log order, commit spans parented on their
/// shard's `order` span.
pub fn phase_records(
    events: &[TimedEvent<ProtocolEvent>],
    nodes_per_shard: usize,
) -> Vec<TraceRecord> {
    // Pass 1: the proposer's span ref per (shard, o) — commit spans in a
    // shard parent on their own shard's proposal.
    let mut proposed: BTreeMap<(usize, u64), SpanRef> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::OrderProposed {
            o, formed_at_ns, ..
        } = &ev.event
        {
            let shard = ev.node / nodes_per_shard;
            proposed.entry((shard, o.0)).or_insert(SpanRef {
                time_ns: *formed_at_ns,
                seq: o.0,
                node: ev.node,
            });
        }
    }

    let mut out = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let time_ns = ev.time.as_ns();
        let instant = |name: &str| TraceRecord {
            time_ns,
            dur_ns: 0,
            seq: i as u64,
            node: ev.node,
            kind: TraceKind::Milestone,
            name: name.to_string(),
            parent: None,
        };
        match &ev.event {
            ProtocolEvent::OrderProposed {
                o, formed_at_ns, ..
            } => {
                out.push(TraceRecord {
                    time_ns: *formed_at_ns,
                    dur_ns: time_ns.saturating_sub(*formed_at_ns),
                    // The proposal's seq is the sequence number itself —
                    // it must equal the `SpanRef` commits parent on.
                    seq: o.0,
                    node: ev.node,
                    kind: TraceKind::Phase,
                    name: "order".to_string(),
                    parent: None,
                });
            }
            ProtocolEvent::Committed {
                o, formed_at_ns, ..
            } => {
                let shard = ev.node / nodes_per_shard;
                out.push(TraceRecord {
                    time_ns: *formed_at_ns,
                    dur_ns: time_ns.saturating_sub(*formed_at_ns),
                    seq: i as u64,
                    node: ev.node,
                    kind: TraceKind::Phase,
                    name: "commit".to_string(),
                    parent: proposed.get(&(shard, o.0)).copied(),
                });
            }
            ProtocolEvent::FailSignalIssued { .. } => out.push(instant("fail_signal")),
            ProtocolEvent::StartCertIssued { .. } => out.push(instant("start_cert")),
            ProtocolEvent::Installed { .. } => out.push(instant("installed")),
            ProtocolEvent::ViewChanged { .. } => out.push(instant("view_change")),
            ProtocolEvent::UnwillingSent { .. } => out.push(instant("unwilling")),
            ProtocolEvent::PairRecovered { .. } => out.push(instant("pair_recovered")),
            ProtocolEvent::CheckpointStable { .. } => out.push(instant("checkpoint")),
        }
    }
    out
}

/// Appends the phase records of `events` to `out`, filtered by `cfg`
/// (the same filter the engine sink applies — node and name filters
/// apply; phases are never sampled out).
pub(crate) fn push_phase_records(
    out: &mut Vec<TraceRecord>,
    events: &[TimedEvent<ProtocolEvent>],
    nodes_per_shard: usize,
    cfg: &TraceConfig,
) {
    for rec in phase_records(events, nodes_per_shard) {
        if cfg.keep(&rec) {
            out.push(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofb_proto::ids::{Rank, SeqNo};
    use sofb_proto::request::Digest;
    use sofb_sim::time::SimTime;
    use std::sync::Arc;

    fn at(ns: u64, node: usize, event: ProtocolEvent) -> TimedEvent<ProtocolEvent> {
        TimedEvent {
            time: SimTime(ns),
            node,
            event,
        }
    }

    fn committed(o: u64, formed_at_ns: u64) -> ProtocolEvent {
        ProtocolEvent::Committed {
            c: Rank(0),
            o: SeqNo(o),
            digest: Digest::default(),
            requests: 1,
            request_ids: Arc::from(Vec::new().into_boxed_slice()),
            formed_at_ns,
        }
    }

    #[test]
    fn commit_spans_parent_on_their_shards_proposal() {
        let events = vec![
            at(
                1_000,
                0,
                ProtocolEvent::OrderProposed {
                    o: SeqNo(1),
                    batch_len: 1,
                    formed_at_ns: 400,
                },
            ),
            at(2_000, 1, committed(1, 400)),
            // Same sequence number in another shard (4 nodes per shard).
            at(
                1_500,
                4,
                ProtocolEvent::OrderProposed {
                    o: SeqNo(1),
                    batch_len: 1,
                    formed_at_ns: 700,
                },
            ),
            at(2_500, 5, committed(1, 700)),
        ];
        let recs = phase_records(&events, 4);
        assert_eq!(recs.len(), 4);
        let order0 = &recs[0];
        assert_eq!(order0.name, "order");
        assert_eq!((order0.time_ns, order0.dur_ns, order0.node), (400, 600, 0));
        let commit0 = &recs[1];
        assert_eq!(commit0.name, "commit");
        assert_eq!(commit0.parent, Some(order0.self_ref()));
        let commit1 = &recs[3];
        assert_eq!(
            commit1.parent,
            Some(recs[2].self_ref()),
            "shard 1's commit must parent on shard 1's proposal"
        );
    }

    #[test]
    fn milestones_become_instants() {
        let events = vec![
            at(10, 2, ProtocolEvent::CheckpointStable { o: SeqNo(8) }),
            at(
                20,
                3,
                ProtocolEvent::FailSignalIssued {
                    pair: Rank(1),
                    value_domain: true,
                },
            ),
        ];
        let recs = phase_records(&events, 4);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "checkpoint");
        assert_eq!(recs[0].dur_ns, 0);
        assert_eq!(recs[0].kind, TraceKind::Milestone);
        assert_eq!(recs[1].name, "fail_signal");
    }
}
